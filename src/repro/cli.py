"""Command-line interface.

Subcommands::

    repro-quantiles list                       # list experiments
    repro-quantiles run E1 [--scale default]   # run one experiment
    repro-quantiles report [--out FILE]        # run all, emit markdown
    repro-quantiles sketch FILE [--q 0.5 ...]  # sketch a numbers file
    repro-quantiles sketch FILE --shards 8     # ... through the sharded plane
    repro-quantiles bounds --eps 0.01 --n 1e9  # print the space-bound table
    repro-quantiles serve --data-dir ./qdata   # run the quantile service
    repro-quantiles serve --node-id a          # ... as a named cluster node
    repro-quantiles serve --window-resolutions 1s,1m  # windowed rings per key
    repro-quantiles query KEY --q 0.5 0.99     # query a running service
    repro-quantiles query KEY --last 5m        # merge-on-query time horizon
    repro-quantiles query K1 K2 --rank 1.5     # ranks, many keys, one frame
    repro-quantiles ingest KEY FILE            # stream a numbers file in
    repro-quantiles watch KEY --q 0.5 0.99     # follow closed window buckets
    repro-quantiles cluster-status ring.json   # per-node health of a cluster
    repro-quantiles cluster-status ring.json --key lat --repair
    repro-quantiles cluster-reshard ring.json --add d=127.0.0.1:7403
    repro-quantiles cluster-reshard ring.json --remove b
    repro-quantiles version                    # print the package version

(Installed as ``repro-quantiles``; also runnable as ``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.core import ReqSketch
from repro.errors import ReproError
from repro.fast import FastReqSketch
from repro.evaluation import Table
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.run_all import render_report

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-quantiles",
        description="Relative Error Streaming Quantiles (PODS 2021) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and their paper claims")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id, e.g. E1")
    run_parser.add_argument("--scale", default="default", choices=("smoke", "default", "full"))

    report_parser = sub.add_parser("report", help="run all experiments, emit markdown")
    report_parser.add_argument("--scale", default="default", choices=("smoke", "default", "full"))
    report_parser.add_argument("--out", default=None)

    sketch_parser = sub.add_parser("sketch", help="sketch a whitespace-separated numbers file")
    sketch_parser.add_argument("file", help="path, or '-' for stdin")
    sketch_parser.add_argument("--k", type=int, default=32, help="section size (even)")
    sketch_parser.add_argument("--hra", action="store_true", help="high-rank-accuracy mode")
    sketch_parser.add_argument(
        "--q",
        type=float,
        nargs="*",
        default=[0.5, 0.9, 0.99, 0.999],
        help="quantile fractions to report",
    )
    sketch_parser.add_argument("--seed", type=int, default=0)
    sketch_parser.add_argument(
        "--engine",
        default="fast",
        choices=("fast", "reference"),
        help="fast = numpy/C-accelerated float64 engine (default); "
        "reference = pure-Python generic engine",
    )
    sketch_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="ingest through N parallel shards and query their merge_many "
        "union (fast engine only; accuracy is unchanged by Theorem 3)",
    )
    sketch_parser.add_argument(
        "--backend",
        default="local",
        choices=("local", "process"),
        help="shard backend: local = same-process shards; process = a "
        "worker pool shipping wire-format partial sketches (needs --shards > 1)",
    )

    bounds_parser = sub.add_parser("bounds", help="print the Section 1.1 space-bound table")
    bounds_parser.add_argument("--eps", type=float, default=0.01)
    bounds_parser.add_argument("--n", type=float, default=1e9)
    bounds_parser.add_argument("--delta", type=float, default=0.05)
    bounds_parser.add_argument("--universe", type=float, default=2**64)

    serve_parser = sub.add_parser(
        "serve", help="run the asyncio quantile service (multi-tenant keyed store)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7379)
    serve_parser.add_argument(
        "--data-dir",
        default=None,
        help="durability root (WAL + snapshots); omit for a pure in-memory service",
    )
    serve_parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        help="retained-item cap across resident sketches; LRU keys past it "
        "spill to the snapshot files (requires --data-dir)",
    )
    serve_parser.add_argument("--k", type=int, default=32, help="section size (even)")
    serve_parser.add_argument("--hra", action="store_true", help="high-rank-accuracy mode")
    serve_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base RNG seed; per-key seeds derive from it, making WAL replay "
        "bit-exact (pass a negative value for fresh randomness)",
    )
    serve_parser.add_argument(
        "--snapshot-interval",
        type=float,
        default=30.0,
        help="seconds between periodic checkpoints (0 disables)",
    )
    serve_parser.add_argument(
        "--hot-key-items",
        type=int,
        default=None,
        help="promote keys past this ingest count to a sharded backing plane",
    )
    serve_parser.add_argument("--hot-shards", type=int, default=4)
    serve_parser.add_argument(
        "--fsync",
        action="store_true",
        help="fsync WAL commits and snapshots (power-loss durability; with "
        "group commit the fsync is amortized across each commit batch)",
    )
    serve_parser.add_argument(
        "--no-group-commit",
        action="store_true",
        help="write + fsync the WAL synchronously per request instead of "
        "batching appends on the background group-commit writer "
        "(lower single-request latency, much lower ingest throughput)",
    )
    serve_parser.add_argument(
        "--no-uvloop",
        action="store_true",
        help="stick to the stock asyncio event loop even when uvloop is "
        "installed (uvloop is auto-detected and silently skipped when absent)",
    )
    serve_parser.add_argument(
        "--max-connections",
        type=int,
        default=None,
        help="refuse connections past this count with RETRY_LATER "
        "(default: unlimited)",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds a SIGTERM graceful drain waits for in-flight acks "
        "to flush before closing connections",
    )
    serve_parser.add_argument(
        "--node-id",
        default=None,
        help="this node's identity in a cluster topology; echoed in the "
        "READY line, HEALTH and STATS so operators and the cluster "
        "client can tell replicas apart",
    )
    serve_parser.add_argument(
        "--window-resolutions",
        default="60",
        metavar="DURATIONS",
        help="comma-separated bucket widths for the windowed quantile "
        "plane (e.g. '1s,1m,1h'; bare numbers are seconds); every key "
        "gets one time-bucketed sketch ring per resolution",
    )
    serve_parser.add_argument(
        "--window-retention",
        type=int,
        default=64,
        help="buckets retained per ring (TTL = retention x resolution); "
        "older buckets expire and leave the horizon",
    )
    serve_parser.add_argument(
        "--window-lateness",
        default="0",
        metavar="DURATION",
        help="out-of-order tolerance: values timestamped earlier than "
        "(batch watermark - lateness) are dropped as late (default 0)",
    )
    serve_parser.add_argument(
        "--scrub-interval",
        type=float,
        default=300.0,
        help="seconds between background integrity scrub passes over "
        "retained snapshots and the WAL; corrupt files are quarantined "
        "under data_dir/quarantine (0 disables; needs --data-dir)",
    )
    serve_parser.add_argument(
        "--min-free-bytes",
        type=int,
        default=8 << 20,
        help="free-space floor for leaving read-only degraded mode after "
        "an ENOSPC (default 8 MiB)",
    )

    status_parser = sub.add_parser(
        "cluster-status",
        help="per-node health and per-key replica agreement of a cluster",
    )
    status_parser.add_argument(
        "topology", help="cluster topology JSON file (see repro.cluster.ClusterMap)"
    )
    status_parser.add_argument(
        "--key",
        action="append",
        default=None,
        metavar="KEY",
        help="also report per-replica n for this key (repeatable); "
        "disagreement means a replica needs repair",
    )
    status_parser.add_argument(
        "--repair",
        action="store_true",
        help="run an anti-entropy repair pass over the given --key keys",
    )
    status_parser.add_argument(
        "--digest",
        action="store_true",
        help="with --repair: deep-check replicas whose n agree by "
        "comparing FRQ1 payload digests (catches silent divergence "
        "that equal counts hide; costs one FETCH per replica per key)",
    )
    status_parser.add_argument("--timeout", type=float, default=3.0)

    reshard_parser = sub.add_parser(
        "cluster-reshard",
        help="live topology change: add or remove a node while writes keep "
        "flowing, with zero acked-write loss",
    )
    reshard_parser.add_argument(
        "topology",
        help="cluster topology JSON file; rewritten to the new map on success",
    )
    reshard_group = reshard_parser.add_mutually_exclusive_group(required=True)
    reshard_group.add_argument(
        "--add",
        metavar="NODE",
        help="node to add, as node-id=host:port (start it with "
        "'serve --node-id' first so it can receive pushed state)",
    )
    reshard_group.add_argument(
        "--remove", metavar="NODE-ID", help="node id to decommission"
    )
    reshard_parser.add_argument(
        "--plan",
        action="store_true",
        help="print the per-key moves without touching any state",
    )
    reshard_parser.add_argument(
        "--drain-rounds",
        type=int,
        default=4,
        metavar="N",
        help="convergence rounds per key before freezing anyway (default 4)",
    )
    reshard_parser.add_argument("--timeout", type=float, default=3.0)

    query_parser = sub.add_parser("query", help="query a running quantile service")
    query_parser.add_argument(
        "keys",
        nargs="*",
        default=[],
        help="tenant/metric keys (several ride one MULTI_QUERY frame; "
        "omit with --stats)",
    )
    query_parser.add_argument("--host", default="127.0.0.1")
    query_parser.add_argument("--port", type=int, default=7379)
    query_parser.add_argument(
        "--q",
        type=float,
        nargs="*",
        default=[0.5, 0.9, 0.99, 0.999],
        help="quantile fractions to report",
    )
    query_parser.add_argument(
        "--rank",
        type=float,
        nargs="*",
        default=None,
        metavar="VALUE",
        help="report estimated ranks of these values instead of quantiles",
    )
    query_parser.add_argument(
        "--last",
        default=None,
        metavar="DURATION",
        help="answer from the windowed plane: merge every bucket in the "
        "trailing DURATION (e.g. '5m', '1h30m') instead of the key's "
        "lifetime sketch",
    )
    query_parser.add_argument(
        "--resolution",
        default="0",
        metavar="DURATION",
        help="with --last: which ring to answer from ('0' = finest)",
    )
    query_parser.add_argument(
        "--stats",
        action="store_true",
        help="print server (or per-key) stats JSON instead of quantiles",
    )
    query_parser.add_argument(
        "--snapshot", action="store_true", help="force a checkpoint before anything else"
    )
    _add_retry_arguments(query_parser)

    ingest_parser = sub.add_parser(
        "ingest", help="stream a whitespace-separated numbers file into a key"
    )
    ingest_parser.add_argument("key", help="tenant/metric key")
    ingest_parser.add_argument("file", help="path, or '-' for stdin")
    ingest_parser.add_argument("--host", default="127.0.0.1")
    ingest_parser.add_argument("--port", type=int, default=7379)
    _add_retry_arguments(ingest_parser)

    watch_parser = sub.add_parser(
        "watch", help="follow a key's closed window buckets as a live stream"
    )
    watch_parser.add_argument("key", help="tenant/metric key")
    watch_parser.add_argument("--host", default="127.0.0.1")
    watch_parser.add_argument("--port", type=int, default=7379)
    watch_parser.add_argument(
        "--q",
        type=float,
        nargs="*",
        default=[0.5, 0.99],
        help="quantile fractions reported per closed bucket",
    )
    watch_parser.add_argument(
        "--resolution",
        default="0",
        metavar="DURATION",
        help="which ring to watch ('0' = finest)",
    )
    watch_parser.add_argument(
        "--resume-from",
        type=int,
        default=0,
        metavar="INDEX",
        help="replay retained closed buckets from this bucket index before "
        "going live (a previous watch prints the index to resume from)",
    )
    _add_retry_arguments(watch_parser)

    sub.add_parser("version", help="print the package version")
    return parser


def _parse_resolution_list(text: str):
    """'1s,1m,1h' (bare numbers = seconds) -> tuple of widths in seconds."""
    from repro.windowed import parse_duration

    tokens = [token.strip() for token in text.split(",") if token.strip()]
    return tuple(parse_duration(token) for token in tokens)


def _parse_optional_duration(text: str) -> float:
    """A duration that may be '0' (parse_duration itself rejects zero)."""
    from repro.windowed import parse_duration

    stripped = text.strip()
    if stripped in ("0", "0s", "0ms"):
        return 0.0
    return parse_duration(stripped)


def _add_retry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-operation socket timeout in seconds",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="reconnect-and-retry attempts on transport errors or "
        "RETRY_LATER overload answers; ingest retries negotiate an "
        "exactly-once session so a replayed frame is never double-counted "
        "(0 = fail fast)",
    )


def _client_retry(args):
    """The retry policy (or None) implied by --timeout/--retries."""
    from repro.service import RetryPolicy

    if args.retries <= 0:
        return None
    return RetryPolicy(timeout=args.timeout, retries=args.retries)


def _cmd_list() -> int:
    table = Table("Experiments", ["id", "title", "paper claim"])
    for module in EXPERIMENTS.values():
        table.add_row(module.META.experiment_id, module.META.title, module.META.paper_claim)
    table.print()
    return 0


def _cmd_run(experiment: str, scale: str) -> int:
    for table in run_experiment(experiment, scale=scale):
        table.print()
    return 0


def _cmd_report(scale: str, out: Optional[str]) -> int:
    report = render_report(scale)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {out}")
    else:
        sys.stdout.write(report)
    return 0


def _cmd_sketch(
    path: str,
    k: int,
    hra: bool,
    fractions: List[float],
    seed: int,
    engine: str = "fast",
    shards: int = 1,
    backend: str = "local",
) -> int:
    from repro.errors import InvalidParameterError

    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    values = [float(token) for token in text.split()]
    if not values:
        print("no numbers found", file=sys.stderr)
        return 1
    if backend != "local" and shards <= 1:
        raise InvalidParameterError(
            "--backend process does nothing without --shards > 1"
        )
    if shards > 1:
        if engine != "fast":
            raise InvalidParameterError(
                "--shards requires the fast engine (the sharded plane ships "
                "FRQ1 wire payloads of FastReqSketch)"
            )
        from repro.shard import ShardedReqSketch

        with ShardedReqSketch(
            shards, k=k, hra=hra, seed=seed, backend=backend
        ) as sharded:
            sharded.update_many(values)
            sketch = sharded.collect()
        label = f"engine=fast, shards={shards}/{backend}"
    else:
        if engine == "fast":
            sketch = FastReqSketch(k, hra=hra, seed=seed)
        else:
            sketch = ReqSketch(k, hra=hra, seed=seed)
        sketch.update_many(values)
        label = f"engine={engine}"
    table = Table(
        f"quantiles of {path} (n={sketch.n}, retained={sketch.num_retained}, "
        f"{'HRA' if hra else 'LRA'}, k={k}, {label})",
        ["fraction", "quantile", "rank_lower", "rank_upper"],
    )
    for q in fractions:
        value = sketch.quantile(q)
        lower, upper = sketch.rank_bounds(value)
        table.add_row(q, value, lower, upper)
    table.print()
    return 0


def _cmd_bounds(eps: float, n: float, delta: float, universe: float) -> int:
    from repro.theory import (
        cormode05_items,
        gk_items,
        kll_items,
        lower_bound_deterministic_items,
        lower_bound_randomized_items,
        mrl_items,
        req_theorem1_items,
        req_theorem2_items,
        zhang2006_items,
        zhang_wang_items,
    )

    table = Table(
        f"asymptotic items at eps={eps}, n={n:g}, delta={delta} (unit constants)",
        ["algorithm", "guarantee", "items"],
    )
    table.add_row("REQ (Thm 1)", "relative, randomized", req_theorem1_items(eps, n, delta))
    table.add_row("REQ (Thm 2)", "relative, randomized", req_theorem2_items(eps, n, delta))
    table.add_row("Zhang et al. [22]", "relative, randomized", zhang2006_items(eps, n))
    table.add_row("Zhang-Wang [21]", "relative, deterministic", zhang_wang_items(eps, n))
    table.add_row("Cormode+ [5]", "relative, needs universe", cormode05_items(eps, n, universe))
    table.add_row("GK [10]", "additive, deterministic", gk_items(eps, n))
    table.add_row("MRL [13]", "additive, deterministic", mrl_items(eps, n))
    table.add_row("KLL [12]", "additive, randomized", kll_items(eps, delta))
    table.add_row("lower bound (rand.)", "relative", lower_bound_randomized_items(eps, n))
    table.add_row(
        "lower bound (det., comparison)", "relative", lower_bound_deterministic_items(eps, n)
    )
    table.print()
    return 0


def _cmd_serve(args) -> int:
    from repro.service import run_server

    return run_server(
        args.data_dir,
        host=args.host,
        port=args.port,
        k=args.k,
        hra=args.hra,
        seed=None if args.seed < 0 else args.seed,
        memory_budget=args.memory_budget,
        hot_key_items=args.hot_key_items,
        hot_shards=args.hot_shards,
        snapshot_interval=args.snapshot_interval or None,
        fsync=args.fsync,
        group_commit=not args.no_group_commit,
        use_uvloop=not args.no_uvloop,
        max_connections=args.max_connections,
        drain_timeout=args.drain_timeout,
        node_id=args.node_id,
        window_resolutions=_parse_resolution_list(args.window_resolutions),
        window_retention=args.window_retention,
        window_lateness=_parse_optional_duration(args.window_lateness),
        scrub_interval=args.scrub_interval or None,
        min_free_bytes=args.min_free_bytes,
    )


def _cmd_cluster_status(args) -> int:
    from repro.cluster import ClusterClient, ClusterMap, repair
    from repro.service import RetryPolicy

    cluster_map = ClusterMap.load(args.topology)
    retry = RetryPolicy(timeout=args.timeout, retries=1)
    exit_code = 0
    with ClusterClient(cluster_map, retry=retry) as client:
        table = Table(
            f"cluster topology v{cluster_map.version} "
            f"(R={cluster_map.replication}, vnodes={cluster_map.vnodes})",
            ["node", "address", "state", "topology", "connections", "wal_queue",
             "sessions", "win_keys", "subs", "hints", "disk_free", "scrubbed"],
        )
        health = client.health()
        # Queued-hint depth is a property of the writer client doing the
        # probing (hinted handoff is client-side); for this status pass
        # it reflects hints generated while probing/repairing just now.
        hints = client.hint_depths()
        for node_id, detail in health.items():
            node = cluster_map.node(node_id)
            if detail is None:
                table.add_row(node_id, node.address, "DOWN", "-", "-", "-", "-",
                              "-", "-", hints.get(node_id, 0), "-", "-")
                exit_code = 2
                continue
            version = detail.get("topology_version")
            state = detail.get("state", "?")
            if state == "degraded" and detail.get("degraded_reason"):
                # Surface WHY the node refuses writes right in the table.
                state = f"degraded ({detail['degraded_reason']})"
            free = detail.get("disk_free_bytes")
            scrub = detail.get("scrub") or {}
            table.add_row(
                node_id,
                node.address,
                state,
                "none" if version is None else f"v{version}",
                detail.get("open_connections", "?"),
                detail.get("wal_queue_depth", "?"),
                detail.get("sessions", "?"),
                detail.get("windowed_keys", "?"),
                detail.get("active_subscriptions", "?"),
                hints.get(node_id, 0),
                "-" if free is None else f"{free / (1 << 20):.0f}M",
                "-" if not scrub else
                f"{scrub.get('passes', 0)}x/{scrub.get('corrupt_found', 0)}bad",
            )
        table.print()
        for key in args.key or []:
            counts = client.key_counts(key)
            agree = len({n for n in counts.values() if n is not None}) <= 1
            placement = ", ".join(
                f"{node_id}={'unreachable' if n is None else n}"
                for node_id, n in counts.items()
            )
            verdict = "consistent" if agree else "DIVERGED"
            print(f"key {key!r}: {placement} — {verdict}")
            if not agree:
                exit_code = 2
        if args.repair:
            if not args.key:
                print("error: --repair needs at least one --key", file=sys.stderr)
                return 2
            report = repair(client, args.key, digest=args.digest)
            print(
                f"repair: examined={report.examined} consistent={report.consistent} "
                f"healed={report.healed} unhealed={report.unhealed} "
                f"skipped_down={report.skipped_down}"
                + (" [digest-checked]" if args.digest else "")
            )
            for entry in report.keys:
                if entry.unhealed:
                    nodes = ", ".join(sorted(entry.unhealed))
                    print(
                        f"  key {entry.key!r}: divergent on {nodes} "
                        "(no exact heal; see cluster-status docs)"
                    )
            if report.clean:
                exit_code = 0
        elif args.digest:
            print("error: --digest needs --repair", file=sys.stderr)
            return 2
    return exit_code


def _cmd_cluster_reshard(args) -> int:
    from repro.cluster import ClusterMap, Rebalancer
    from repro.service import RetryPolicy

    old_map = ClusterMap.load(args.topology)
    if args.add is not None:
        node_id, sep, address = args.add.partition("=")
        host, colon, port = address.rpartition(":")
        if not sep or not colon or not node_id or not host:
            print(
                f"error: --add wants node-id=host:port, got {args.add!r}",
                file=sys.stderr,
            )
            return 2
        new_map = old_map.add_node((node_id, host, int(port)))
    else:
        new_map = old_map.without_node(args.remove)
    retry = RetryPolicy(timeout=args.timeout, retries=1)
    with Rebalancer(
        old_map, new_map, retry=retry, drain_rounds=args.drain_rounds
    ) as rebalancer:
        if args.plan:
            moves = rebalancer.plan()
            for move in moves:
                print(
                    f"key {move.key!r}: {move.source} -> "
                    f"{', '.join(move.destinations)}"
                    + (f" (freezing {', '.join(move.frozen)})" if move.frozen else "")
                )
            print(
                f"plan: {len(moves)} keys would move for topology "
                f"v{old_map.version} -> v{new_map.version} (nothing executed)"
            )
            return 0
        report = rebalancer.execute()
    # Only a committed cutover rewrites the operator's topology file —
    # a failed run leaves both the file and the cluster on the old map.
    new_map.save(args.topology)
    print(report.summary())
    for move in report.moves:
        print(f"  moved {move.key!r}: {move.source} -> {', '.join(move.destinations)}")
    return 0


def _cmd_query(args) -> int:
    import json

    from repro.errors import InvalidParameterError, ServiceError
    from repro.service import QuantileClient

    if not args.keys and not args.stats:
        raise InvalidParameterError("pass a key to query, or --stats for server stats")
    kind = "quantiles" if args.rank is None else "ranks"
    points = args.q if args.rank is None else args.rank
    columns = ["fraction", "quantile"] if args.rank is None else ["value", "rank"]
    with QuantileClient(
        args.host, args.port, timeout=args.timeout, retry=_client_retry(args)
    ) as client:
        if args.snapshot:
            written = client.snapshot()
            print(f"checkpointed {written} keys")
        if args.stats:
            print(json.dumps(client.stats(args.keys[0] if args.keys else None),
                             indent=2, sort_keys=True))
            return 0
        if args.last is not None:
            # Windowed horizon reads: one WINDOW_QUERY per key (merge of
            # every retained bucket overlapping the trailing window).
            resolution = _parse_optional_duration(args.resolution)
            failed = False
            for key in args.keys:
                try:
                    result = client.query_horizon(
                        key, points, last=args.last, kind=kind, resolution=resolution
                    )
                except ServiceError as exc:
                    print(f"error: {key!r}: {exc}", file=sys.stderr)
                    failed = True
                    continue
                table = Table(
                    f"{kind} of {key!r} over the last {args.last} "
                    f"(n={result.n:,}, eps={result.error_bound:.4f}, "
                    f"retained={result.num_retained})",
                    columns,
                )
                for point, value in zip(points, result.quantiles):
                    table.add_row(point, float(value))
                table.print()
            return 2 if failed else 0
        # All keys ride one MULTI_QUERY frame; a missing key reports its
        # error but never fails its neighbours (per-request statuses).
        results = client.query_many([(key, kind, points) for key in args.keys])
        failed = False
        for key, result in zip(args.keys, results):
            if isinstance(result, ServiceError):
                print(f"error: {key!r}: {result}", file=sys.stderr)
                failed = True
                continue
            table = Table(
                f"{kind} of {key!r} at {args.host}:{args.port} "
                f"(n={result.n:,}, eps={result.error_bound:.4f}, "
                f"retained={result.num_retained})",
                columns,
            )
            for point, value in zip(points, result.quantiles):
                table.add_row(point, float(value))
            table.print()
    return 2 if failed else 0


def _cmd_ingest(args) -> int:
    from repro.service import QuantileClient

    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
    values = [float(token) for token in text.split()]
    if not values:
        print("no numbers found", file=sys.stderr)
        return 1
    with QuantileClient(
        args.host, args.port, timeout=args.timeout, retry=_client_retry(args)
    ) as client:
        total = client.ingest_stream(args.key, values)
        guarantee = "exactly-once" if client.exactly_once else "at-most-once"
        print(f"ingested {len(values):,} values into {args.key!r} "
              f"(key total n={total:,}, {guarantee})")
    return 0


def _cmd_watch(args) -> int:
    from repro.service import QuantileClient

    resolution = _parse_optional_duration(args.resolution)
    with QuantileClient(
        args.host, args.port, timeout=args.timeout, retry=_client_retry(args)
    ) as client:
        print(
            f"watching {args.key!r} at {args.host}:{args.port} "
            f"(fractions {args.q}; ctrl-c to stop)",
            flush=True,
        )
        try:
            for event in client.subscribe(
                args.key, args.q, resolution=resolution, resume_from=args.resume_from
            ):
                values = " ".join(
                    f"q{frac:g}={float(value):.6g}"
                    for frac, value in zip(args.q, event.values)
                )
                print(
                    f"bucket {event.index} [{event.start:.3f}, {event.end:.3f}) "
                    f"n={event.n} eps={event.error_bound:.4f} {values}",
                    flush=True,
                )
        except KeyboardInterrupt:
            pass
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "version":
            print(f"repro-quantiles {__version__}")
            return 0
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "ingest":
            return _cmd_ingest(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "cluster-status":
            return _cmd_cluster_status(args)
        if args.command == "cluster-reshard":
            return _cmd_cluster_reshard(args)
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args.experiment, args.scale)
        if args.command == "report":
            return _cmd_report(args.scale, args.out)
        if args.command == "sketch":
            return _cmd_sketch(
                args.file,
                args.k,
                args.hra,
                args.q,
                args.seed,
                args.engine,
                args.shards,
                args.backend,
            )
        if args.command == "bounds":
            return _cmd_bounds(args.eps, args.n, args.delta, args.universe)
    except ConnectionRefusedError:
        host = getattr(args, "host", "127.0.0.1")
        port = getattr(args, "port", None)
        where = f"{host}:{port}" if port else host
        print(
            f"error: could not connect to the quantile service at {where} — "
            f"is it running? (start one with: repro-quantiles serve)",
            file=sys.stderr,
        )
        return 2
    except (ReproError, OSError) as exc:
        # OSError covers the service commands' other transport failures:
        # connection reset, EADDRINUSE from serve, DNS errors.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""repro — a reproduction of "Relative Error Streaming Quantiles" (PODS 2021).

The package implements the REQ sketch of Cormode, Karnin, Liberty, Thaler
and Vesely (arXiv:2004.01668) together with every substrate the paper's
claims rest on: the additive-error and multiplicative-error comparators of
its Section 1.1, synthetic stream workloads, an evaluation harness, the
theory-side constructions of its appendices, and an experiment suite that
empirically validates each theorem.

Quick start::

    from repro import ReqSketch

    sketch = ReqSketch(eps=0.05, hra=True)   # sharp at high ranks (p99, ...)
    for latency in latencies:
        sketch.update(latency)
    p999 = sketch.quantile(0.999)

Performance
===========

Two engines implement the same compactor stack:

* :class:`ReqSketch` — the reference engine: pure Python, works for any
  totally ordered items (floats, ints, strings, tuples, ...), and is the
  fully parameterized implementation every experiment validates against.
* :class:`FastReqSketch` — the ingestion engine for float64 streams:
  levels are sorted numpy runs merged lazily, batches ingest through one
  vectorized path, and scalar updates are staged in a preallocated block
  (a small C extension compiled on first import when a compiler is
  available; a pure-Python fallback otherwise — set ``REPRO_NO_NATIVE=1``
  to force the fallback).  Throughput is tracked in
  ``BENCH_throughput.json`` (regenerate with
  ``python benchmarks/bench_throughput.py``).

Choosing and using them:

* Pick :class:`FastReqSketch` whenever items are plain numbers and update
  rate matters (hot paths, monitors, services); pick :class:`ReqSketch`
  for generic item types or the ``theory`` parameter scheme.  Both engines
  serialize through ``repro.serialize``/``repro.deserialize``.
* **Batch when you can**: ``update_many(array)`` is an order of magnitude
  faster than per-item ``update`` even on the fast engine.
* **Staging and visibility**: ``FastReqSketch.update`` stages items in a
  block.  ``sketch.n`` counts them immediately, but they reach the level
  structure only when the block fills, on ``flush()``, or implicitly on
  any query — so there is no need to call ``flush()`` before querying;
  call it only to bound staging latency externally (e.g. before
  serializing a snapshot elsewhere).
* Batches smaller than the staging block are appended to the staging
  buffer; batches at least as large are sorted once and ingested as a
  single sorted run.

Sharded aggregation
===================

The paper's full-mergeability theorem (Theorem 3) says REQ sketches can be
combined in *arbitrary* merge trees with no accuracy loss — the union of
any partition of a stream carries the same ``(1 +/- eps)`` guarantee as a
single sketch fed the whole stream.  The package exposes that at three
levels:

* ``FastReqSketch.merge_many(sketches)`` — k-way aggregation: every
  input is snapshotted once (inputs are never mutated, not even their
  staging buffers), same-height buffers are concatenated, schedule states
  are OR-ed, and ONE compression pass runs over the combined structure —
  several times faster than a sequential pairwise-``merge`` fold.
* ``to_bytes()`` / ``from_bytes()`` — the compact ``FRQ1`` wire format
  (:mod:`repro.fast.wire`): versioned little-endian header, level runs as
  raw float64 buffers, zero-copy ``np.frombuffer`` decode.  The layout is
  versioned and stable: payloads written by this release decode in later
  ones.  ``repro.serialize``/``repro.deserialize`` dispatch on the sketch
  type / payload magic and convert across engines on request
  (``deserialize(data, engine="fast"|"reference")``).
* :class:`~repro.shard.ShardedReqSketch` — routes ``update_many`` batches
  across ``S`` independent shards (round-robin or value-hash), with a
  same-process backend for cheap deployments and a ``ProcessPoolExecutor``
  backend that ships batches to workers and returns wire payloads; queries
  run against a cached ``merge_many`` union coreset.

**When to shard:** one ``FastReqSketch`` sustains tens of millions of
updates/s, so shard for *cores* (the process backend, when one core
saturates), for *isolation* (per-tenant/per-window shards merged on
demand — see :class:`~repro.monitor.TumblingWindowMonitor`), or for
*distribution* (sketch at the edge, ship ``FRQ1`` payloads, union at the
aggregator).  Never for accuracy — the merged union is in the same error
class either way, which is exactly the paper's mergeability theorem.

The service plane
=================

:mod:`repro.service` turns the library into a runnable system: a
multi-tenant keyed store of fast-engine sketches with LRU spill-to-disk,
durable state (per-key ``FRQ1`` snapshots plus an append-only batch WAL
with replay-on-recovery), and an asyncio TCP server speaking a compact
length-prefixed binary protocol, with matching sync and async clients::

    repro-quantiles serve --port 7379 --data-dir ./qdata

    from repro.service import QuantileClient
    with QuantileClient(port=7379) as client:
        client.ingest("tenant-a/latency", latencies)   # one update_many
        p50, p99 = client.query("tenant-a/latency", [0.5, 0.99]).quantiles

Ingest batches append to the WAL before touching the store, so a killed
server replays to the exact same sketches; cold keys spill to snapshot
files and reload transparently; hot keys can be promoted onto a sharded
backing plane.  The service imports lazily — ``import repro`` does not pay
for it.

Reads scale the same way writes do: :class:`FastReqSketch` caches a
*version-stamped query index* (sorted coreset + cumulative weights,
rebuilt only when the coreset version changes; ``error_bound`` memoized
on the same stamp), and the service's ``MULTI_QUERY`` opcode ships many
read requests per frame with per-request statuses — uniform batches are
vectorized end to end (client ``query_many`` / ``query_stream``), with
answers bit-identical to in-process queries even across spill/reload
and WAL recovery.  See :mod:`repro.fast.engine` for the index
invariants and :mod:`repro.service` for the wire surface.

See README.md for the architecture overview and DESIGN.md for the paper-to-
module map.
"""

from repro._version import __version__
from repro.core import (
    CloseOutReqSketch,
    DeterministicReqSketch,
    RelativeCompactor,
    ReqSketch,
    check_invariants,
    deserialize,
    serialize,
)
from repro.fast import FastReqSketch
from repro.monitor import TumblingWindowMonitor
from repro.shard import ShardedReqSketch
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchesError,
    InvalidParameterError,
    ReproError,
    SerializationError,
    ServiceError,
    StreamLengthExceededError,
)

__all__ = [
    "CloseOutReqSketch",
    "DeterministicReqSketch",
    "EmptySketchError",
    "FastReqSketch",
    "IncompatibleSketchesError",
    "InvalidParameterError",
    "RelativeCompactor",
    "ReproError",
    "ReqSketch",
    "SerializationError",
    "ServiceError",
    "ShardedReqSketch",
    "StreamLengthExceededError",
    "TumblingWindowMonitor",
    "__version__",
    "check_invariants",
    "deserialize",
    "serialize",
]

"""repro — a reproduction of "Relative Error Streaming Quantiles" (PODS 2021).

The package implements the REQ sketch of Cormode, Karnin, Liberty, Thaler
and Vesely (arXiv:2004.01668) together with every substrate the paper's
claims rest on: the additive-error and multiplicative-error comparators of
its Section 1.1, synthetic stream workloads, an evaluation harness, the
theory-side constructions of its appendices, and an experiment suite that
empirically validates each theorem.

Quick start::

    from repro import ReqSketch

    sketch = ReqSketch(eps=0.05, hra=True)   # sharp at high ranks (p99, ...)
    for latency in latencies:
        sketch.update(latency)
    p999 = sketch.quantile(0.999)

Performance
===========

Two engines implement the same compactor stack:

* :class:`ReqSketch` — the reference engine: pure Python, works for any
  totally ordered items (floats, ints, strings, tuples, ...), and is the
  fully parameterized implementation every experiment validates against.
* :class:`FastReqSketch` — the ingestion engine for float64 streams:
  levels are sorted numpy runs merged lazily, batches ingest through one
  vectorized path, and scalar updates are staged in a preallocated block
  (a small C extension compiled on first import when a compiler is
  available; a pure-Python fallback otherwise — set ``REPRO_NO_NATIVE=1``
  to force the fallback).  Throughput is tracked in
  ``BENCH_throughput.json`` (regenerate with
  ``python benchmarks/bench_throughput.py``).

Choosing and using them:

* Pick :class:`FastReqSketch` whenever items are plain numbers and update
  rate matters (hot paths, monitors, services); pick :class:`ReqSketch`
  for generic item types, the ``fixed``/``theory`` parameter schemes, or
  serialization.
* **Batch when you can**: ``update_many(array)`` is an order of magnitude
  faster than per-item ``update`` even on the fast engine.
* **Staging and visibility**: ``FastReqSketch.update`` stages items in a
  block.  ``sketch.n`` counts them immediately, but they reach the level
  structure only when the block fills, on ``flush()``, or implicitly on
  any query — so there is no need to call ``flush()`` before querying;
  call it only to bound staging latency externally (e.g. before
  serializing a snapshot elsewhere).
* Batches smaller than the staging block are appended to the staging
  buffer; batches at least as large are sorted once and ingested as a
  single sorted run.

See README.md for the architecture overview and DESIGN.md for the paper-to-
module map.
"""

from repro.core import (
    CloseOutReqSketch,
    DeterministicReqSketch,
    RelativeCompactor,
    ReqSketch,
    check_invariants,
    deserialize,
    serialize,
)
from repro.fast import FastReqSketch
from repro.monitor import TumblingWindowMonitor
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchesError,
    InvalidParameterError,
    ReproError,
    SerializationError,
    StreamLengthExceededError,
)

__version__ = "1.0.0"

__all__ = [
    "CloseOutReqSketch",
    "DeterministicReqSketch",
    "EmptySketchError",
    "FastReqSketch",
    "IncompatibleSketchesError",
    "InvalidParameterError",
    "RelativeCompactor",
    "ReproError",
    "ReqSketch",
    "SerializationError",
    "StreamLengthExceededError",
    "TumblingWindowMonitor",
    "__version__",
    "check_invariants",
    "deserialize",
    "serialize",
]

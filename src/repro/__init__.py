"""repro — a reproduction of "Relative Error Streaming Quantiles" (PODS 2021).

The package implements the REQ sketch of Cormode, Karnin, Liberty, Thaler
and Vesely (arXiv:2004.01668) together with every substrate the paper's
claims rest on: the additive-error and multiplicative-error comparators of
its Section 1.1, synthetic stream workloads, an evaluation harness, the
theory-side constructions of its appendices, and an experiment suite that
empirically validates each theorem.

Quick start::

    from repro import ReqSketch

    sketch = ReqSketch(eps=0.05, hra=True)   # sharp at high ranks (p99, ...)
    for latency in latencies:
        sketch.update(latency)
    p999 = sketch.quantile(0.999)

See README.md for the architecture overview and DESIGN.md for the paper-to-
module map.
"""

from repro.core import (
    CloseOutReqSketch,
    DeterministicReqSketch,
    RelativeCompactor,
    ReqSketch,
    check_invariants,
    deserialize,
    serialize,
)
from repro.fast import FastReqSketch
from repro.monitor import TumblingWindowMonitor
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchesError,
    InvalidParameterError,
    ReproError,
    SerializationError,
    StreamLengthExceededError,
)

__version__ = "1.0.0"

__all__ = [
    "CloseOutReqSketch",
    "DeterministicReqSketch",
    "EmptySketchError",
    "FastReqSketch",
    "IncompatibleSketchesError",
    "InvalidParameterError",
    "RelativeCompactor",
    "ReproError",
    "ReqSketch",
    "SerializationError",
    "StreamLengthExceededError",
    "TumblingWindowMonitor",
    "__version__",
    "check_invariants",
    "deserialize",
    "serialize",
]

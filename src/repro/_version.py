"""Single source of truth for the package version.

Read by ``repro/__init__.py`` (as ``repro.__version__``), by ``setup.py``
(via a regex, so packaging needs no import), and by the CLI's ``version``
command.  Bump it here and nowhere else.
"""

__version__ = "1.1.0"

"""Closed-form space bounds for every algorithm in the paper's Section 1.1.

These are the *asymptotic* item counts with unit constants; they exist so
the space experiments (E2/E3) can overlay measured retention against the
claimed growth shapes, and so the README can print the comparison table the
paper's introduction walks through.

All functions return floats (items, not bytes) and treat logarithms the way
the paper writes them: ``log2`` where the paper writes ``log`` of stream
quantities, natural log for ``log(1/delta)`` Chernoff terms.  Arguments are
clamped so the formulas stay meaningful for small inputs
(``log`` terms never drop below 1).
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError

__all__ = [
    "req_theorem1_items",
    "req_theorem2_items",
    "req_all_quantiles_items",
    "kll_items",
    "gk_items",
    "mrl_items",
    "agarwal_items",
    "felber_ostrovsky_items",
    "zhang2006_items",
    "zhang_wang_items",
    "cormode05_items",
    "gupta_zane_items",
    "lower_bound_randomized_items",
    "lower_bound_deterministic_items",
    "theorem15_bits",
    "log_growth_exponent",
]


def _check(eps: float, n: float) -> None:
    if not 0.0 < eps <= 1.0:
        raise InvalidParameterError(f"eps must be in (0, 1], got {eps}")
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")


def _log2eps(eps: float, n: float) -> float:
    """``log2(eps * n)`` clamped to >= 1."""
    return max(1.0, math.log2(max(2.0, eps * n)))


def req_theorem1_items(eps: float, n: float, delta: float = 0.05) -> float:
    """Theorem 1: ``eps^-1 * log^1.5(eps n) * sqrt(ln 1/delta)`` items."""
    _check(eps, n)
    return (1.0 / eps) * _log2eps(eps, n) ** 1.5 * math.sqrt(math.log(1.0 / delta))


def req_theorem2_items(eps: float, n: float, delta: float = 0.05) -> float:
    """Theorem 2 (Appendix C): ``eps^-1 * log^2(eps n) * log2 ln(1/delta)``."""
    _check(eps, n)
    loglog = max(1.0, math.log2(max(2.0, math.log(1.0 / delta))))
    return (1.0 / eps) * _log2eps(eps, n) ** 2 * loglog


def req_all_quantiles_items(eps: float, n: float, delta: float = 0.05) -> float:
    """Corollary 1: all-quantiles via the union bound over the eps-cover."""
    _check(eps, n)
    inflated = math.log(max(math.e, _log2eps(eps, n) / (eps * delta)))
    return (1.0 / eps) * _log2eps(eps, n) ** 1.5 * math.sqrt(inflated)


def kll_items(eps: float, delta: float = 0.05) -> float:
    """KLL [12]: ``eps^-1 * log2 ln(1/delta)`` — independent of n."""
    if not 0.0 < eps <= 1.0:
        raise InvalidParameterError(f"eps must be in (0, 1], got {eps}")
    loglog = max(1.0, math.log2(max(2.0, math.log(1.0 / delta))))
    return (1.0 / eps) * loglog


def gk_items(eps: float, n: float) -> float:
    """Greenwald-Khanna [10]: ``eps^-1 * log2(eps n)`` (deterministic)."""
    _check(eps, n)
    return (1.0 / eps) * _log2eps(eps, n)


def mrl_items(eps: float, n: float) -> float:
    """Manku-Rajagopalan-Lindsay [13]: ``eps^-1 * log^2(eps n)``."""
    _check(eps, n)
    return (1.0 / eps) * _log2eps(eps, n) ** 2


def agarwal_items(eps: float) -> float:
    """Agarwal et al. [1]: ``eps^-1 * log^1.5(1/eps)`` (mergeable, additive)."""
    if not 0.0 < eps <= 1.0:
        raise InvalidParameterError(f"eps must be in (0, 1], got {eps}")
    return (1.0 / eps) * max(1.0, math.log2(1.0 / eps)) ** 1.5


def felber_ostrovsky_items(eps: float) -> float:
    """Felber-Ostrovsky [8]: ``eps^-1 * log(1/eps)`` (additive)."""
    if not 0.0 < eps <= 1.0:
        raise InvalidParameterError(f"eps must be in (0, 1], got {eps}")
    return (1.0 / eps) * max(1.0, math.log2(1.0 / eps))


def zhang2006_items(eps: float, n: float) -> float:
    """Zhang et al. [22]: ``eps^-2 * log2(eps^2 n)`` (randomized, relative)."""
    _check(eps, n)
    return (1.0 / eps**2) * max(1.0, math.log2(max(2.0, eps * eps * n)))


def zhang_wang_items(eps: float, n: float) -> float:
    """Zhang-Wang [21]: ``eps^-1 * log^3(eps n)`` (deterministic, relative)."""
    _check(eps, n)
    return (1.0 / eps) * _log2eps(eps, n) ** 3


def cormode05_items(eps: float, n: float, universe: float) -> float:
    """Cormode et al. [5]: ``eps^-1 * log2(eps n) * log2 |U|``.

    Requires prior knowledge of a bounded universe ``U`` — the reason the
    paper rules it out for real-valued data; included formula-only.
    """
    _check(eps, n)
    if universe < 2:
        raise InvalidParameterError(f"universe must be >= 2, got {universe}")
    return (1.0 / eps) * _log2eps(eps, n) * math.log2(universe)


def gupta_zane_items(eps: float, n: float) -> float:
    """Gupta-Zane [11]: ``eps^-3 * log^2(eps n)`` (relative; needs n known)."""
    _check(eps, n)
    return (1.0 / eps**3) * _log2eps(eps, n) ** 2


def lower_bound_randomized_items(eps: float, n: float) -> float:
    """The ``Omega(eps^-1 log(eps n))`` randomized lower bound ([4], Thm 2)."""
    _check(eps, n)
    return (1.0 / eps) * _log2eps(eps, n)


def lower_bound_deterministic_items(eps: float, n: float) -> float:
    """Cormode-Vesely [6]: ``Omega(eps^-1 log^2(eps n))``, comparison-based."""
    _check(eps, n)
    return (1.0 / eps) * _log2eps(eps, n) ** 2


def theorem15_bits(eps: float, n: float, universe: float) -> float:
    """Theorem 15 (Appendix A): ``Omega(eps^-1 log(eps n) log(eps |U|))`` bits."""
    _check(eps, n)
    if universe < 2:
        raise InvalidParameterError(f"universe must be >= 2, got {universe}")
    return (1.0 / eps) * _log2eps(eps, n) * max(1.0, math.log2(max(2.0, eps * universe)))


def log_growth_exponent(ns: list, sizes: list) -> float:
    """Fit ``size ~ c * log2(n)^p`` and return ``p`` by least squares.

    Used by experiment E2 to check the measured space growth exponent:
    REQ should fit ``p ~ 1.5``, the deterministic variant ``p ~ 3``, GK
    ``p ~ 1``.

    Args:
        ns: Stream lengths (>= 2 entries, all > 1).
        sizes: Measured retained items at each length.
    """
    if len(ns) != len(sizes) or len(ns) < 2:
        raise InvalidParameterError("need >= 2 paired (n, size) observations")
    xs = [math.log(math.log2(max(2.0, float(n)))) for n in ns]
    ys = [math.log(max(1.0, float(s))) for s in sizes]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise InvalidParameterError("stream lengths are too close to fit a growth exponent")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return sxy / sxx

"""The offline-optimal relative-error coreset (Appendix A remark).

Below Theorem 15 the paper sketches the matching upper bound: offline, an
optimal summary of ``O(eps^-1 * log(eps n))`` items keeps

* every item of rank ``1 .. 2*l`` at weight 1,
* every other item of rank ``2*l + 1 .. 4*l`` at weight 2,
* every fourth item of rank ``4*l + 1 .. 8*l`` at weight 4, ...

with ``l = ceil(1/eps)``.  A rank ``r`` in phase ``i`` (ranks
``(2^i*l, 2^{i+1}*l]``) is answered with error at most ``2^i < r/l <=
eps*r``: the multiplicative guarantee, deterministically.

This object serves three roles in the reproduction:

1. the "offline optimal" row of the space experiments — the gold standard
   any streaming algorithm is compared against;
2. the eps-cover used in Corollary 1's proof (the coreset's items form a
   set such that any query has a nearby covered query), powering the
   all-quantiles experiment E11;
3. a deterministic reference decoder for the Appendix A reconstruction
   experiment E12.
"""

from __future__ import annotations

import bisect
import itertools
import math
from typing import Any, List, Sequence, Tuple

from repro.errors import EmptySketchError, InvalidParameterError

__all__ = ["OfflineCoreset", "coreset_size_bound"]


def coreset_size_bound(eps: float, n: int) -> int:
    """Upper bound on the coreset size: ``2*l*(log2(n/l)+2)`` items."""
    if not 0.0 < eps <= 1.0:
        raise InvalidParameterError(f"eps must be in (0, 1], got {eps}")
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    ell = math.ceil(1.0 / eps)
    phases = max(1, math.ceil(math.log2(max(2.0, n / ell))))
    return 2 * ell * (phases + 2)


class OfflineCoreset:
    """Deterministic offline summary with multiplicative error ``eps``.

    Args:
        items: The *entire* dataset (any comparable items).  Sorted here.
        eps: Target relative error; sets ``l = ceil(1/eps)``.
        hra: If ``True``, build the summary from the top (sharp at high
            ranks), mirroring the sketches' HRA mode.
    """

    def __init__(self, items: Sequence[Any], eps: float, *, hra: bool = False) -> None:
        if len(items) == 0:
            raise EmptySketchError("OfflineCoreset needs a non-empty dataset")
        if not 0.0 < eps <= 1.0:
            raise InvalidParameterError(f"eps must be in (0, 1], got {eps}")
        self.eps = eps
        self.hra = hra
        self.n = len(items)
        self.ell = math.ceil(1.0 / eps)
        ordered = sorted(items)
        pairs = self._build(ordered, self.ell)
        if hra:
            # Mirror: apply the construction to the reversed order, then
            # restore ascending item order.
            mirrored = self._build(ordered[::-1], self.ell)
            pairs = [(item, weight) for item, weight in mirrored][::-1]
        self._items: List[Any] = [item for item, _ in pairs]
        self._weights: List[int] = [weight for _, weight in pairs]
        self._cumulative: List[int] = list(itertools.accumulate(self._weights))

    @staticmethod
    def _build(ordered: Sequence[Any], ell: int) -> List[Tuple[Any, int]]:
        """Phase construction over a sorted sequence (ascending ranks)."""
        pairs: List[Tuple[Any, int]] = []
        n = len(ordered)
        # Phase 0: ranks 1..2*ell, stride 1, weight 1.
        limit = min(n, 2 * ell)
        for index in range(limit):
            pairs.append((ordered[index], 1))
        start = limit  # 0-based rank of the next uncovered item
        stride = 2
        while start < n:
            end = min(n, 2 * stride * ell)
            # Within (start, end], keep every `stride`-th item; each stored
            # item represents the `stride` ranks ending at it.
            index = start + stride - 1
            while index < end:
                pairs.append((ordered[index], stride))
                index += stride
            leftover = end - (index - stride + 1)
            if 0 < leftover:
                # Tail of the phase shorter than one stride: keep the last
                # item with the leftover weight so total weight == n.
                pairs.append((ordered[end - 1], leftover))
            start = end
            stride *= 2
        return pairs

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_retained(self) -> int:
        return len(self._items)

    @property
    def total_weight(self) -> int:
        return self._cumulative[-1] if self._cumulative else 0

    def items(self) -> List[Any]:
        """Stored items, ascending — this is also Corollary 1's eps-cover."""
        return list(self._items)

    def pairs(self) -> List[Tuple[Any, int]]:
        """``(item, weight)`` pairs, ascending."""
        return list(zip(self._items, self._weights))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def rank(self, item: Any, *, inclusive: bool = True) -> int:
        """Estimated rank; deterministically within ``eps * R`` of truth."""
        if inclusive:
            index = bisect.bisect_right(self._items, item)
        else:
            index = bisect.bisect_left(self._items, item)
        return self._cumulative[index - 1] if index else 0

    def quantile(self, q: float) -> Any:
        """Stored item at normalized rank ``q``."""
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"fraction must be in [0, 1], got {q}")
        target = max(1, math.ceil(q * self.total_weight))
        index = min(bisect.bisect_left(self._cumulative, target), len(self._items) - 1)
        return self._items[index]

"""Empirical verification of the paper's internal lemmas.

The headline theorems rest on a chain of structural lemmas about what
happens *inside* the sketch.  This module instruments the sketch so each
link of the chain can be measured directly on concrete streams:

* **Lemma 6** — for any threshold item ``y``, the number of *important*
  compaction steps at a level (those that change ``y``'s error) is at most
  ``R_h(y) / k``, where ``R_h(y)`` is ``y``'s rank in the level's input.
* **Observation 8 / Lemma 10** — ``y``'s rank roughly halves per level:
  ``R_{h+1}(y) <= max(0, R_h(y) - B/2)`` deterministically, and
  ``R_h(y) <= 2^{-h+1} R(y)`` with high probability.
* **Lemma 11** — no important item reaches level ``H(y)``.
* **Eq. (5) decomposition** — the end-to-end error is exactly
  ``sum_h 2^h * Err_h(y)`` with
  ``Err_h(y) = R_h(y) - 2 R_{h+1}(y) - R(y; B_h)``; this is an algebraic
  identity and must hold *exactly* on every run.

These are used by `tests/test_lemmas.py` and make the reproduction
falsifiable at the granularity the proofs actually operate at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.compactor import RelativeCompactor
from repro.core.req import ReqSketch

__all__ = [
    "LevelTrace",
    "InstrumentedReqSketch",
    "lemma6_report",
    "error_decomposition",
    "rank_halving_profile",
]


@dataclass
class LevelTrace:
    """Everything observed about one compactor level during a run.

    Attributes:
        inputs: Every item ever fed to this level (stream + promotions).
        compaction_slices: The sorted slice compacted at each compaction.
    """

    inputs: List[Any] = field(default_factory=list)
    compaction_slices: List[List[Any]] = field(default_factory=list)

    def rank_of(self, y: Any) -> int:
        """``R_h(y)``: the number of level inputs <= y."""
        return sum(1 for item in self.inputs if item <= y)

    def important_steps(self, y: Any) -> int:
        """Compactions whose slice held an odd number of items <= y.

        By Observation 4 these are exactly the compactions that add +/-1
        to ``y``'s error; even counts contribute zero.
        """
        count = 0
        for slice_ in self.compaction_slices:
            important = sum(1 for item in slice_ if item <= y)
            if important % 2 == 1:
                count += 1
        return count


class _TracingCompactor(RelativeCompactor):
    """A relative-compactor that reports its compaction slices."""

    def __init__(self, *args, trace: LevelTrace, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._trace = trace

    def append(self, item: Any) -> None:
        self._trace.inputs.append(item)
        super().append(item)

    def extend(self, items) -> None:
        items = list(items)
        self._trace.inputs.extend(items)
        super().extend(items)

    def compact(self, protect: int) -> List[Any]:
        before = sorted(self._buffer)
        promoted = super().compact(protect)
        if promoted or len(self._buffer) != len(before):
            after = sorted(self._buffer)
            # The compacted slice = multiset difference before - after.
            slice_: List[Any] = []
            remaining = list(after)
            for item in before:
                if remaining and remaining[0] == item:
                    remaining.pop(0)
                else:
                    slice_.append(item)
            self._trace.compaction_slices.append(slice_)
        return promoted


class InstrumentedReqSketch(ReqSketch):
    """A ReqSketch recording per-level input streams and compactions.

    Only meaningful for streaming runs (updates, not merges); intended for
    lemma verification on moderate stream sizes.
    """

    def __init__(self, *args, **kwargs) -> None:
        self.traces: List[LevelTrace] = []
        super().__init__(*args, **kwargs)

    def _new_compactor(self) -> RelativeCompactor:
        trace = LevelTrace()
        self.traces.append(trace)
        return _TracingCompactor(
            self._k,
            hra=self.hra,
            rng=self._rng,
            coin_mode=self._coin_mode,
            trace=trace,
        )

    def level_rank(self, level: int, y: Any) -> int:
        """``R_h(y)`` for this run."""
        if not 0 <= level < len(self.traces):
            return 0
        return self.traces[level].rank_of(y)


def lemma6_report(
    stream: Sequence[Any],
    y: Any,
    *,
    k: int = 8,
    seed: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Measure Lemma 6's bound on every level of a streaming run.

    Returns one record per level with ``rank`` (``R_h(y)``),
    ``important_steps``, and ``bound`` (``R_h(y) / k``).  Lemma 6 asserts
    ``important_steps <= bound`` always (it is a deterministic counting
    argument, not a probabilistic one).
    """
    sketch = InstrumentedReqSketch(k, seed=seed)
    sketch.update_many(stream)
    report = []
    for level, trace in enumerate(sketch.traces):
        rank = trace.rank_of(y)
        report.append(
            {
                "level": level,
                "rank": rank,
                "important_steps": trace.important_steps(y),
                "bound": rank / k,
            }
        )
    return report


def error_decomposition(
    stream: Sequence[Any],
    y: Any,
    *,
    k: int = 8,
    seed: Optional[int] = None,
) -> Dict[str, float]:
    """Check the Eq. (5) error decomposition exactly.

    Computes per-level ``Err_h(y) = R_h(y) - 2 R_{h+1}(y) - R(y; B_h)``
    and verifies that ``sum_h 2^h Err_h(y)`` equals the sketch's actual
    end-to-end error ``rank_estimate - R(y)``.

    Returns a dict with both sides of the identity and the per-level terms.
    """
    sketch = InstrumentedReqSketch(k, seed=seed)
    sketch.update_many(stream)
    true_rank = sum(1 for item in stream if item <= y)

    per_level: List[int] = []
    for level, trace in enumerate(sketch.traces):
        rank_here = trace.rank_of(y)
        rank_next = (
            sketch.traces[level + 1].rank_of(y) if level + 1 < len(sketch.traces) else 0
        )
        in_buffer = sum(1 for item in sketch.compactors()[level].items() if item <= y)
        per_level.append(rank_here - 2 * rank_next - in_buffer)

    decomposed = sum((1 << level) * err for level, err in enumerate(per_level))
    actual = sketch.rank(y) - true_rank if sketch.n else 0
    return {
        "true_rank": true_rank,
        "estimate": sketch.rank(y),
        "actual_error": actual,
        "decomposed_error": -decomposed,
        "per_level": per_level,
    }


def rank_halving_profile(
    stream: Sequence[Any],
    y: Any,
    *,
    k: int = 8,
    seed: Optional[int] = None,
) -> List[int]:
    """``[R_0(y), R_1(y), ...]`` for one streaming run (Lemma 10's subject)."""
    sketch = InstrumentedReqSketch(k, seed=seed)
    sketch.update_many(stream)
    return [trace.rank_of(y) for trace in sketch.traces]

"""The Appendix A lower-bound construction, as executable code.

Theorem 15 shows any sketch solving all-quantiles approximation with
multiplicative error ``eps`` can *losslessly encode* an arbitrary subset
``S`` of the universe with ``|S| = l * k`` where ``l = 1/(8 eps)`` and
``k = log2(eps n)`` — hence needs ``Omega(eps^-1 log(eps n) log(eps |U|))``
bits.  The encoding:

* list ``S``'s elements ascending as ``y_1 < y_2 < ... < y_s``;
* build the stream where items ``y_{i*l+1} .. y_{(i+1)*l}`` ("phase i"
  items) each appear ``2**i`` times;
* the decoder recovers ``y_{i*l+j}`` as the smallest universe item whose
  estimated rank strictly exceeds ``(2**i - 1)*l + 2**i * j - 2**(i-1)``.

Experiment E12 runs this pipeline end to end against both the offline
coreset (always succeeds — the deterministic guarantee) and the REQ sketch
(succeeds whenever its all-quantiles guarantee holds), demonstrating *why*
the space lower bound is what it is: the sketch really does carry
``|S| * log|U|`` bits of recoverable information.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Sequence

from repro.errors import InvalidParameterError

__all__ = [
    "phase_parameters",
    "encode_stream",
    "decode_subset",
    "reconstruction_roundtrip",
]


def phase_parameters(eps: float, n: int) -> tuple:
    """The construction's ``(l, k)``: ``l = ceil(1/(8 eps))``, ``k = floor(log2(eps n))``.

    Returns:
        ``(l, k)`` with both at least 1; the encodable subset size is
        ``l * k`` and the stream length is ``l * (2**k - 1) <= n``.
    """
    if not 0.0 < eps <= 1.0:
        raise InvalidParameterError(f"eps must be in (0, 1], got {eps}")
    if n < 2:
        raise InvalidParameterError(f"n must be >= 2, got {n}")
    ell = max(1, math.ceil(1.0 / (8.0 * eps)))
    k = max(1, math.floor(math.log2(max(2.0, eps * n))))
    # Shrink k until the stream fits in n.
    while k > 1 and ell * (2**k - 1) > n:
        k -= 1
    return ell, k


def encode_stream(subset: Sequence[Any], ell: int) -> List[Any]:
    """Build the phase stream for a sorted subset.

    Phase ``i`` (0-based) consists of subset elements with indices
    ``i*ell .. (i+1)*ell - 1``, each repeated ``2**i`` times.  The subset
    length must be a multiple of ``ell``.
    """
    if ell < 1:
        raise InvalidParameterError(f"ell must be >= 1, got {ell}")
    if len(subset) % ell != 0:
        raise InvalidParameterError(
            f"subset size {len(subset)} must be a multiple of ell={ell}"
        )
    ordered = sorted(subset)
    if any(not a < b for a, b in zip(ordered, ordered[1:])):
        raise InvalidParameterError("subset elements must be distinct")
    stream: List[Any] = []
    phases = len(ordered) // ell
    for i in range(phases):
        multiplicity = 2**i
        for element in ordered[i * ell : (i + 1) * ell]:
            stream.extend([element] * multiplicity)
    return stream


def decode_subset(
    rank_estimator: Callable[[Any], float],
    universe: Sequence[Any],
    ell: int,
    phases: int,
) -> List[Any]:
    """Recover the subset from any all-quantiles rank estimator.

    Args:
        rank_estimator: Estimated rank function over the universe (for
            example ``sketch.rank``); must satisfy the multiplicative
            guarantee for the decoding to be exact.
        universe: The full ordered universe the subset was drawn from.
        ell: Phase width ``l``.
        phases: Number of phases ``k``.

    Returns:
        The decoded subset (ascending), of size ``ell * phases``.
    """
    decoded: List[Any] = []
    cursor = 0  # universe index to resume scanning from (decoded is sorted)
    for i in range(phases):
        base = (2**i - 1) * ell
        for j in range(1, ell + 1):
            threshold = base + (2**i) * j - (2 ** (i - 1) if i >= 1 else 0.5)
            while cursor < len(universe) and rank_estimator(universe[cursor]) <= threshold:
                cursor += 1
            if cursor >= len(universe):
                raise InvalidParameterError(
                    "decoder ran off the universe; the rank estimator violated "
                    "its accuracy guarantee"
                )
            decoded.append(universe[cursor])
    return decoded


def reconstruction_roundtrip(
    subset: Sequence[Any],
    universe: Sequence[Any],
    ell: int,
    sketch_factory: Callable[[], Any],
) -> dict:
    """Encode ``subset`` as a stream, sketch it, decode, and compare.

    Returns:
        A dict with ``stream_length``, ``decoded``, ``exact`` (whether the
        decoded set equals the subset) and ``hamming`` (count of positions
        decoded incorrectly).
    """
    ordered = sorted(subset)
    stream = encode_stream(ordered, ell)
    sketch = sketch_factory()
    sketch.update_many(stream)
    phases = len(ordered) // ell
    try:
        decoded = decode_subset(sketch.rank, universe, ell, phases)
    except InvalidParameterError:
        decoded = []
    hamming = sum(1 for a, b in zip(decoded, ordered) if a != b) + abs(
        len(decoded) - len(ordered)
    )
    return {
        "stream_length": len(stream),
        "decoded": decoded,
        "exact": decoded == ordered,
        "hamming": hamming,
    }

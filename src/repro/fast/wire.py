"""The ``FRQ1`` binary wire format for :class:`~repro.fast.FastReqSketch`.

This is the transport that lets fast-engine sketches cross process
boundaries — the sharded aggregation plane (:mod:`repro.shard`) ships
per-shard partial sketches back to the aggregator as these payloads and
unions them with ``merge_many``.  Design goals, in order: decode must be
near-free (level arrays are zero-copy ``np.frombuffer`` views into the
payload), the layout must be stable across versions (versioned header,
explicit little-endian), and corruption must fail loudly
(:class:`~repro.errors.SerializationError`, never a silently-wrong sketch).

Layout (all little-endian; the header is 48 bytes and every level block is
``24 + 8 * count`` bytes, so item arrays always start 8-byte aligned)::

    magic      4s   b"FRQ1"
    version    B    1
    flags      B    bit0: hra
    reserved   H    0
    k          I    section size
    n          Q    items summarized
    n_bound    Q    fixed-capacity stream bound (0 = auto growth)
    min, max   dd   extremes (meaningful only when n > 0)
    levels     I    number of compactor levels
    per level:
        state      Q   compaction-schedule state C
        inserted   Q   items ever inserted at this height
        count      Q   retained items
        items      count * d   sorted ascending

Decode validates the magic, version, ``k``, exact payload length, NaN-free
items and extremes, per-level sort order, and exact weight conservation
(``sum(count_h * 2**h) == n``) — a corrupted or truncated payload cannot
produce a quietly-wrong sketch.
"""

from __future__ import annotations

import struct
from typing import NamedTuple, Optional

import numpy as np

from repro.core.schedule import CompactionSchedule
from repro.errors import InvalidParameterError, SerializationError

__all__ = [
    "MAGIC_FAST",
    "WIRE_VERSION",
    "WireSummary",
    "to_bytes",
    "from_bytes",
    "peek_header",
    "retained_in_payload",
]

MAGIC_FAST = b"FRQ1"
WIRE_VERSION = 1

_FLAG_HRA = 1

_HEADER = struct.Struct("<4sBBHIQQddI")
_LEVEL_HEAD = struct.Struct("<QQQ")

#: Decoded-but-unvalidated wire doubles; "<f8" pins the byte order so the
#: format (not the host) defines endianness.
_WIRE_DTYPE = np.dtype("<f8")


class WireSummary(NamedTuple):
    """The ``FRQ1`` header fields, decoded without touching the level data.

    ``min_item``/``max_item`` are meaningful only when ``n > 0`` (the
    encoder writes zeros for an empty sketch).
    """

    k: int
    hra: bool
    n: int
    n_bound: int
    min_item: float
    max_item: float
    num_levels: int


def peek_header(data) -> WireSummary:
    """Read an ``FRQ1`` payload's header without decoding its levels.

    The service plane's snapshot/spill files hold these payloads; stats and
    memory accounting over keys that are not resident need ``n`` and the
    sketch geometry but must not pay the full decode (or pin the payload's
    level memory).  Validates only the magic and version — a payload that
    passes here can still fail :func:`from_bytes`'s deep checks.

    Raises:
        SerializationError: On a bad magic, unknown version, or a payload
            shorter than the fixed header.
    """
    if bytes(data[:4]) != MAGIC_FAST:
        raise SerializationError(f"bad magic {bytes(data[:4])!r}; expected {MAGIC_FAST!r}")
    try:
        (
            _magic,
            version,
            flags,
            _reserved,
            k,
            n,
            n_bound,
            minimum,
            maximum,
            num_levels,
        ) = _HEADER.unpack_from(data, 0)
    except struct.error as exc:
        raise SerializationError(f"truncated header: {exc}") from exc
    if version != WIRE_VERSION:
        raise SerializationError(f"unsupported wire version {version}")
    return WireSummary(k, bool(flags & _FLAG_HRA), n, n_bound, minimum, maximum, num_levels)


def retained_in_payload(data, header: Optional[WireSummary] = None) -> int:
    """Retained-item count of an ``FRQ1`` payload, from its size alone.

    The layout is fixed-overhead (header + one level head per level +
    8 bytes per item), so the count needs no level decode.  Lives here so
    the arithmetic tracks the struct definitions it depends on.
    """
    if header is None:
        header = peek_header(data)
    items_bytes = len(data) - _HEADER.size - _LEVEL_HEAD.size * header.num_levels
    return max(0, items_bytes // _WIRE_DTYPE.itemsize)


def to_bytes(sketch) -> bytes:
    """Encode a :class:`~repro.fast.FastReqSketch` into ``FRQ1`` bytes.

    Flushes the staging block first (queries do the same), then writes each
    level's consolidated run directly out of its numpy buffer — the only
    copies are numpy-internal consolidation and the final join.
    """
    sketch.flush()
    flags = _FLAG_HRA if sketch.hra else 0
    n = sketch._n
    minimum = sketch._min if n else 0.0
    maximum = sketch._max if n else 0.0
    parts = [
        _HEADER.pack(
            MAGIC_FAST,
            WIRE_VERSION,
            flags,
            0,
            sketch.k,
            n,
            sketch.n_bound or 0,
            minimum,
            maximum,
            len(sketch._levels),
        )
    ]
    for level in sketch._levels:
        items = np.ascontiguousarray(level.consolidate(), dtype=_WIRE_DTYPE)
        parts.append(_LEVEL_HEAD.pack(level.schedule.state, level.inserted, items.size))
        parts.append(items.data)
    return b"".join(parts)


def from_bytes(data, sketch_cls=None):
    """Decode ``FRQ1`` bytes into a :class:`~repro.fast.FastReqSketch`.

    Level arrays are read-only zero-copy views into ``data`` (the payload
    stays pinned while the sketch retains them; the engine never writes
    level arrays in place, so read-only views are safe).  The RNG is
    reinitialized unseeded.

    Raises:
        SerializationError: On a bad magic, unknown version, truncated or
            trailing bytes, NaN items/extremes, unsorted level runs, or a
            payload whose level weights do not sum to ``n``.
    """
    if sketch_cls is None:
        from repro.fast.engine import FastReqSketch as sketch_cls
    from repro.fast.engine import _FastLevel

    # Copy audit: `bytes` (and read-only views of it) decode fully
    # zero-copy — the header/level offsets are 8-byte aligned by layout,
    # so every `np.frombuffer` below is a view, and the isinstance fast
    # path skips even the memoryview probe on the dominant input type.
    # Only writable buffers (bytearray, recv_into pools) pay one snapshot
    # copy, because retaining views into a buffer the caller may reuse
    # would go silently wrong.
    if not isinstance(data, bytes) and memoryview(data).readonly is False:
        data = bytes(data)
    if bytes(data[:4]) != MAGIC_FAST:
        raise SerializationError(f"bad magic {bytes(data[:4])!r}; expected {MAGIC_FAST!r}")
    try:
        (
            _magic,
            version,
            flags,
            _reserved,
            k,
            n,
            n_bound,
            minimum,
            maximum,
            num_levels,
        ) = _HEADER.unpack_from(data, 0)
    except struct.error as exc:
        raise SerializationError(f"truncated header: {exc}") from exc
    if version != WIRE_VERSION:
        raise SerializationError(f"unsupported wire version {version}")
    try:
        sketch = sketch_cls(k, hra=bool(flags & _FLAG_HRA), n_bound=n_bound or None)
    except InvalidParameterError as exc:
        raise SerializationError(f"invalid parameters in payload: {exc}") from exc

    offset = _HEADER.size
    weight = 0
    for height in range(num_levels):
        try:
            state, inserted, count = _LEVEL_HEAD.unpack_from(data, offset)
        except struct.error as exc:
            raise SerializationError(f"truncated level {height} header: {exc}") from exc
        offset += _LEVEL_HEAD.size
        end = offset + 8 * count
        if end > len(data):
            raise SerializationError(
                f"truncated payload: level {height} declares {count} items "
                f"but only {len(data) - offset} bytes remain"
            )
        items = np.frombuffer(data, dtype=_WIRE_DTYPE, count=count, offset=offset)
        offset = end
        if count:
            if np.isnan(items).any():
                raise SerializationError(f"NaN item in level {height}")
            if count > 1 and (np.diff(items) < 0).any():
                raise SerializationError(f"level {height} items are not sorted")
        level = _FastLevel()
        level.items = items
        level.schedule = CompactionSchedule(state)
        level.inserted = int(inserted)
        sketch._levels.append(level)
        weight += count << height
    if offset != len(data):
        raise SerializationError(f"{len(data) - offset} trailing bytes after sketch payload")
    if weight != n:
        raise SerializationError(
            f"weight conservation violated: levels sum to {weight}, header says n={n}"
        )
    sketch._n = n
    if n:
        if minimum != minimum or maximum != maximum:
            raise SerializationError("NaN min/max in payload")
        if not minimum <= maximum:
            raise SerializationError(f"min {minimum} > max {maximum} in payload")
        sketch._min = float(minimum)
        sketch._max = float(maximum)
    return sketch

/* StageBuffer — a preallocated C staging block for scalar sketch updates.
 *
 * The pure-Python scalar path of FastReqSketch is bounded by CPython's
 * per-call bytecode overhead (~250 ns/item for the seed engine).  This
 * module moves the per-item work — float conversion, NaN rejection, store,
 * full-check — into a single METH_O C call, so `sketch.update` (bound to
 * `StageBuffer.push` on instances) costs one C function dispatch per item.
 * When the block fills, a Python callback drains it into the level
 * structure; everything amortized stays vectorized numpy on the Python
 * side.
 *
 * Compiled at import time by repro.fast._native (gcc, cached under
 * _build/); repro.fast.engine falls back to a pure-Python mirror of this
 * API when no compiler or headers are available.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include "structmember.h"
#include <string.h>

typedef struct {
    PyObject_HEAD
    double *buf;           /* preallocated block of `capacity` doubles */
    Py_ssize_t capacity;
    Py_ssize_t count;      /* filled prefix length */
    PyObject *flush_cb;    /* no-arg callable fired when the block fills */
    PyObject *nan_exc;     /* exception type raised for NaN items */
} StageBuffer;

/* Fire the flush callback; it must drain the buffer (count -> 0). */
static int
stage_fire_flush(StageBuffer *self)
{
    PyObject *result;
    if (self->flush_cb == NULL || self->flush_cb == Py_None) {
        PyErr_SetString(PyExc_RuntimeError,
                        "StageBuffer is full and no flush callback is set");
        return -1;
    }
    result = PyObject_CallNoArgs(self->flush_cb);
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    if (self->count >= self->capacity) {
        PyErr_SetString(PyExc_RuntimeError,
                        "StageBuffer flush callback did not drain the buffer");
        return -1;
    }
    return 0;
}

static PyObject *
stage_push(StageBuffer *self, PyObject *item)
{
    double value = PyFloat_AsDouble(item);
    if (value == -1.0 && PyErr_Occurred())
        return NULL;
    if (value != value) {
        PyErr_SetString(self->nan_exc ? self->nan_exc : PyExc_ValueError,
                        "cannot insert NaN: items must form a total order");
        return NULL;
    }
    /* A failed flush (callback raised) can leave the buffer full; retry
     * the flush before storing so the write below never goes past the
     * end of the block. */
    if (self->count >= self->capacity && stage_fire_flush(self) < 0)
        return NULL;
    self->buf[self->count++] = value;
    if (self->count == self->capacity && stage_fire_flush(self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* Bulk-append from any C-contiguous buffer of float64 (no NaN check here —
 * callers vet batches with numpy before staging). */
static PyObject *
stage_extend(StageBuffer *self, PyObject *arg)
{
    Py_buffer view;
    const double *src;
    Py_ssize_t remaining;

    if (PyObject_GetBuffer(arg, &view, PyBUF_CONTIG_RO) < 0)
        return NULL;
    if (view.itemsize != (Py_ssize_t)sizeof(double) ||
        view.len % (Py_ssize_t)sizeof(double) != 0) {
        PyBuffer_Release(&view);
        PyErr_SetString(PyExc_TypeError,
                        "StageBuffer.extend needs a contiguous float64 buffer");
        return NULL;
    }
    src = (const double *)view.buf;
    remaining = view.len / (Py_ssize_t)sizeof(double);
    while (remaining > 0) {
        Py_ssize_t space = self->capacity - self->count;
        Py_ssize_t take = remaining < space ? remaining : space;
        memcpy(self->buf + self->count, src, (size_t)take * sizeof(double));
        self->count += take;
        src += take;
        remaining -= take;
        if (self->count == self->capacity && stage_fire_flush(self) < 0) {
            PyBuffer_Release(&view);
            return NULL;
        }
    }
    PyBuffer_Release(&view);
    Py_RETURN_NONE;
}

/* Return the staged items as bytes (copy) and reset the buffer. */
static PyObject *
stage_drain(StageBuffer *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *bytes = PyBytes_FromStringAndSize(
        (const char *)self->buf, self->count * (Py_ssize_t)sizeof(double));
    if (bytes == NULL)
        return NULL;
    self->count = 0;
    return bytes;
}

/* Return the staged items as bytes without resetting the buffer.  Lets a
 * merge snapshot a donor sketch's staged items without mutating it. */
static PyObject *
stage_peek(StageBuffer *self, PyObject *Py_UNUSED(ignored))
{
    return PyBytes_FromStringAndSize(
        (const char *)self->buf, self->count * (Py_ssize_t)sizeof(double));
}

static PyObject *
stage_set_flush(StageBuffer *self, PyObject *cb)
{
    PyObject *old = self->flush_cb;
    Py_INCREF(cb);
    self->flush_cb = cb;
    Py_XDECREF(old);
    Py_RETURN_NONE;
}

static PyObject *
stage_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"capacity", "nan_exc", NULL};
    Py_ssize_t capacity;
    PyObject *nan_exc = NULL;
    StageBuffer *self;

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "n|O", kwlist,
                                     &capacity, &nan_exc))
        return NULL;
    if (capacity < 1) {
        PyErr_SetString(PyExc_ValueError, "capacity must be >= 1");
        return NULL;
    }
    self = (StageBuffer *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->buf = (double *)PyMem_Malloc((size_t)capacity * sizeof(double));
    if (self->buf == NULL) {
        Py_DECREF(self);
        return PyErr_NoMemory();
    }
    self->capacity = capacity;
    self->count = 0;
    self->flush_cb = NULL;
    if (nan_exc != NULL && nan_exc != Py_None) {
        Py_INCREF(nan_exc);
        self->nan_exc = nan_exc;
    } else {
        self->nan_exc = NULL;
    }
    return (PyObject *)self;
}

static int
stage_traverse(StageBuffer *self, visitproc visit, void *arg)
{
    Py_VISIT(self->flush_cb);
    Py_VISIT(self->nan_exc);
    return 0;
}

static int
stage_clear(StageBuffer *self)
{
    Py_CLEAR(self->flush_cb);
    Py_CLEAR(self->nan_exc);
    return 0;
}

static void
stage_dealloc(StageBuffer *self)
{
    PyObject_GC_UnTrack(self);
    stage_clear(self);
    PyMem_Free(self->buf);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMemberDef stage_members[] = {
    {"count", T_PYSSIZET, offsetof(StageBuffer, count), READONLY,
     "number of staged items"},
    {"capacity", T_PYSSIZET, offsetof(StageBuffer, capacity), READONLY,
     "block size that triggers the flush callback"},
    {NULL}
};

static PyMethodDef stage_methods[] = {
    {"push", (PyCFunction)stage_push, METH_O,
     "push(item) — stage one float (NaN rejected); flushes when full"},
    {"extend", (PyCFunction)stage_extend, METH_O,
     "extend(buffer) — stage a contiguous float64 buffer (caller vets NaN)"},
    {"drain", (PyCFunction)stage_drain, METH_NOARGS,
     "drain() -> bytes — copy out the staged float64 block and reset"},
    {"peek", (PyCFunction)stage_peek, METH_NOARGS,
     "peek() -> bytes — copy out the staged float64 block without reset"},
    {"set_flush", (PyCFunction)stage_set_flush, METH_O,
     "set_flush(callable) — no-arg callback fired when the block fills"},
    {NULL}
};

static PyTypeObject StageBufferType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_stagebuf.StageBuffer",
    .tp_basicsize = sizeof(StageBuffer),
    .tp_dealloc = (destructor)stage_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Preallocated float64 staging block with a flush callback.",
    .tp_traverse = (traverseproc)stage_traverse,
    .tp_clear = (inquiry)stage_clear,
    .tp_methods = stage_methods,
    .tp_members = stage_members,
    .tp_new = stage_new,
};

static PyModuleDef stagebuf_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_stagebuf",
    .m_doc = "C staging block for FastReqSketch scalar updates.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__stagebuf(void)
{
    PyObject *module;
    if (PyType_Ready(&StageBufferType) < 0)
        return NULL;
    module = PyModule_Create(&stagebuf_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&StageBufferType);
    if (PyModule_AddObject(module, "StageBuffer",
                           (PyObject *)&StageBufferType) < 0) {
        Py_DECREF(&StageBufferType);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}

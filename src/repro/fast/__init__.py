"""Numpy-accelerated float64 engine, cross-validated against the reference."""

from repro.fast.engine import FastReqSketch

__all__ = ["FastReqSketch"]

"""Build-on-first-import machinery for the C staging buffer.

The repo ships :mod:`repro.fast._stagebuf` as C source and compiles it
lazily with the system compiler the first time the fast engine is
imported.  The build is cached under ``_build/<fingerprint>/`` next to the
source (fingerprint = SHA-256 of the source + the interpreter tag), so the
compiler runs once per source revision per interpreter.

Everything degrades gracefully: no compiler, no ``Python.h``, a failed
compile, or ``REPRO_NO_NATIVE=1`` in the environment all yield ``None``
from :func:`load_stage_buffer`, and the engine falls back to the
pure-Python staging buffer (identical semantics, ~6x slower per item).
No third-party packaging machinery is involved — just ``cc -O2 -shared``.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path
from typing import Optional

__all__ = ["load_stage_buffer", "native_build_error"]

_SOURCE = Path(__file__).resolve().parent / "_stagebuf.c"
_BUILD_ROOT = _SOURCE.parent / "_build"

#: Diagnostic from the most recent failed build attempt (for debugging /
#: the test suite); ``None`` when the native path loaded or was skipped.
_build_error: Optional[str] = None


def native_build_error() -> Optional[str]:
    """Why the native staging buffer is unavailable (``None`` if it isn't)."""
    return _build_error


def _fingerprint() -> str:
    digest = hashlib.sha256()
    digest.update(_SOURCE.read_bytes())
    digest.update(sys.implementation.cache_tag.encode())
    return digest.hexdigest()[:16]


def _compiler() -> Optional[str]:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _compile(out_dir: Path) -> Path:
    """Compile _stagebuf.c into ``out_dir``; returns the extension path."""
    include = sysconfig.get_paths()["include"]
    if not (Path(include) / "Python.h").exists():
        raise RuntimeError(f"Python.h not found under {include}")
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler on PATH")
    out_dir.mkdir(parents=True, exist_ok=True)
    target = out_dir / "_stagebuf.so"
    tmp = out_dir / f"_stagebuf.so.{os.getpid()}.tmp"  # per-process: no tmp races
    cmd = [cc, "-O2", "-fPIC", "-shared", f"-I{include}", str(_SOURCE), "-o", str(tmp)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    if proc.returncode != 0:
        raise RuntimeError(f"{' '.join(cmd)} failed:\n{proc.stderr.strip()}")
    os.replace(tmp, target)  # atomic vs concurrent builders
    return target


def _load_extension(path: Path):
    spec = importlib.util.spec_from_file_location("repro.fast._stagebuf", path)
    if spec is None or spec.loader is None:
        raise RuntimeError(f"cannot load extension from {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def load_stage_buffer():
    """The compiled ``StageBuffer`` type, or ``None`` if unavailable."""
    global _build_error
    if os.environ.get("REPRO_NO_NATIVE", "") not in ("", "0"):
        _build_error = "disabled by REPRO_NO_NATIVE"
        return None
    try:
        out_dir = _BUILD_ROOT / _fingerprint()
        target = out_dir / "_stagebuf.so"
        if not target.exists():
            _compile(out_dir)
        module = _load_extension(target)
        _build_error = None
        return module.StageBuffer
    except Exception as exc:  # pragma: no cover - depends on toolchain
        _build_error = f"{type(exc).__name__}: {exc}"
        return None

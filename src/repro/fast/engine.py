"""A numpy-accelerated REQ sketch for float64 streams.

:class:`FastReqSketch` implements the same relative-compactor stack as
:class:`repro.core.req.ReqSketch` but stores each level as a numpy array
and ingests data in *batches*: a batch append followed by merge-style
compactions is exactly a merge with a pre-sorted single-level sketch, so
the Appendix D guarantee framework covers it (batching changes which
compactions fire, not the guarantee class).

Differences from the reference engine, all deliberate:

* float64 items only (NaN rejected);
* the ``auto`` parameter scheme only (constant ``k``, buffers grow with
  the level's observed throughput — footnote 9);
* scalar :meth:`update` is buffered and flushed in blocks, so single-item
  ingestion is amortized but an explicit :meth:`flush` (implicit on any
  query) controls visibility.

The test suite cross-validates this engine against the reference
implementation on the same seeded streams (same error class, identical
weight conservation, identical extremes).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.schedule import CompactionSchedule
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchesError,
    InvalidParameterError,
)

__all__ = ["FastReqSketch"]

#: Scalar updates are staged in a list and flushed in blocks of this size.
_PENDING_BLOCK = 4096


class _FastLevel:
    """One compactor level backed by a sorted numpy array."""

    __slots__ = ("items", "schedule", "inserted")

    def __init__(self) -> None:
        self.items = np.empty(0, dtype=np.float64)
        self.schedule = CompactionSchedule()
        self.inserted = 0

    def absorb(self, values: np.ndarray) -> None:
        """Append a batch (keeps the array sorted via merge)."""
        if values.size == 0:
            return
        values = np.sort(values)
        if self.items.size == 0:
            self.items = values.copy()
        else:
            merged = np.empty(self.items.size + values.size, dtype=np.float64)
            # np.searchsorted-based merge of two sorted runs.
            positions = np.searchsorted(self.items, values, side="right")
            positions += np.arange(values.size)
            mask = np.ones(merged.size, dtype=bool)
            mask[positions] = False
            merged[positions] = values
            merged[mask] = self.items
            self.items = merged
        self.inserted += int(values.size)


class FastReqSketch:
    """Relative-error quantiles over float64 streams, numpy-backed.

    Args:
        k: Section size (even integer >= 2); same accuracy role as in
            :class:`~repro.core.req.ReqSketch`.
        hra: High-rank-accuracy mode.
        seed: Seed for the numpy RNG driving the compaction coins.
        n_bound: Optional known stream-length bound; when given the buffer
            capacity is the fixed ``B = 2 k ceil(log2(n/k))`` of Theorem 14
            instead of the per-level growth rule (used by the large-n space
            experiments; unlike the reference engine, exceeding the bound
            is not policed here).
    """

    def __init__(
        self,
        k: int = 32,
        *,
        hra: bool = False,
        seed: Optional[int] = None,
        n_bound: Optional[int] = None,
    ) -> None:
        if not isinstance(k, int) or k < 2 or k % 2 != 0:
            raise InvalidParameterError(f"k must be an even integer >= 2, got {k!r}")
        self.k = k
        self.n_bound = n_bound
        self._fixed_capacity: Optional[int] = None
        if n_bound is not None:
            if n_bound < 1:
                raise InvalidParameterError(f"n_bound must be >= 1, got {n_bound}")
            sections = max(1, math.ceil(math.log2(max(2.0, n_bound / k))))
            self._fixed_capacity = 2 * k * sections
        self.hra = bool(hra)
        self._rng = np.random.default_rng(seed)
        self._levels: List[_FastLevel] = []
        self._pending: List[float] = []
        self._n = 0
        self._min = math.inf
        self._max = -math.inf
        self._coreset: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of stream items summarized (including pending scalars)."""
        return self._n

    @property
    def is_empty(self) -> bool:
        return self._n == 0

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    @property
    def num_retained(self) -> int:
        """Stored items across levels plus the pending scalar block."""
        return sum(level.items.size for level in self._levels) + len(self._pending)

    @property
    def min_item(self) -> float:
        if self._n == 0:
            raise EmptySketchError("min_item on an empty sketch")
        return self._min

    @property
    def max_item(self) -> float:
        if self._n == 0:
            raise EmptySketchError("max_item on an empty sketch")
        return self._max

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "HRA" if self.hra else "LRA"
        return (
            f"FastReqSketch(k={self.k}, {mode}, n={self._n}, "
            f"levels={self.num_levels}, retained={self.num_retained})"
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, item: float) -> None:
        """Insert one item (staged; flushed in blocks or on queries)."""
        value = float(item)
        if math.isnan(value):
            raise InvalidParameterError("cannot insert NaN: items must form a total order")
        self._pending.append(value)
        self._n += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._coreset = None
        if len(self._pending) >= _PENDING_BLOCK:
            self.flush()

    def update_many(self, items: Sequence[float]) -> None:
        """Insert a batch; numpy arrays take the vectorized path directly."""
        values = np.asarray(items, dtype=np.float64)
        if values.ndim != 1:
            values = values.reshape(-1)
        if values.size == 0:
            return
        if np.isnan(values).any():
            raise InvalidParameterError("cannot insert NaN: items must form a total order")
        self.flush()
        self._ingest(values, count=True)

    def flush(self) -> None:
        """Push staged scalar updates into the level structure.

        Pending items were already counted by :meth:`update`, so the flush
        ingests without recounting.
        """
        if self._pending:
            values = np.asarray(self._pending, dtype=np.float64)
            self._pending = []
            self._ingest(values, count=False)

    def _ingest(self, values: np.ndarray, *, count: bool) -> None:
        if not self._levels:
            self._levels.append(_FastLevel())
        self._levels[0].absorb(values)
        if count:
            self._n += int(values.size)
        vmin = float(values.min())
        vmax = float(values.max())
        if vmin < self._min:
            self._min = vmin
        if vmax > self._max:
            self._max = vmax
        self._coreset = None
        self._compress()

    # ------------------------------------------------------------------
    # Compaction (merge-style: batch semantics)
    # ------------------------------------------------------------------

    def _capacity(self, level: int) -> int:
        if self._fixed_capacity is not None:
            return self._fixed_capacity
        inserted = max(1, self._levels[level].inserted)
        sections = max(1, math.ceil(math.log2(max(2.0, inserted / self.k))))
        return 2 * self.k * sections

    def _compress(self) -> None:
        level = 0
        while level < len(self._levels):
            current = self._levels[level]
            capacity = self._capacity(level)
            while current.items.size >= capacity:
                promoted = self._compact_level(current, capacity)
                if promoted.size == 0:
                    break
                if level + 1 == len(self._levels):
                    self._levels.append(_FastLevel())
                self._levels[level + 1].absorb(promoted)
                capacity = self._capacity(level)
            level += 1

    def _compact_level(self, level: _FastLevel, capacity: int) -> np.ndarray:
        sections = level.schedule.sections_to_compact()
        protect = max(capacity // 2, capacity - sections * self.k)
        size = level.items.size
        if (size - protect) % 2 != 0:
            protect += 1
        if size <= protect:
            return np.empty(0, dtype=np.float64)
        if self.hra:
            cut = size - protect
            slice_ = level.items[:cut]
            level.items = level.items[cut:]
        else:
            slice_ = level.items[protect:]
            level.items = level.items[:protect]
        offset = 1 if self._rng.random() < 0.5 else 0
        level.schedule.advance()
        return slice_[offset::2].copy()

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def merge(self, other: "FastReqSketch") -> "FastReqSketch":
        """Merge another FastReqSketch (same k/hra); other is unchanged."""
        if not isinstance(other, FastReqSketch):
            raise IncompatibleSketchesError(
                f"cannot merge FastReqSketch with {type(other).__name__}"
            )
        if other.k != self.k or other.hra != self.hra or other.n_bound != self.n_bound:
            raise IncompatibleSketchesError("k/hra/n_bound parameters differ")
        self.flush()
        snapshot = other._snapshot_levels()
        while len(self._levels) < len(snapshot):
            self._levels.append(_FastLevel())
        for level, (items, state, inserted) in enumerate(snapshot):
            ours = self._levels[level]
            ours.absorb(items)
            ours.inserted += inserted - items.size  # absorb already added items.size
            ours.schedule.merge(CompactionSchedule(state))
        self._n += other._n
        if other._n:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        self._coreset = None
        self._compress()
        return self

    def _snapshot_levels(self) -> List[Tuple[np.ndarray, int, int]]:
        self.flush()
        return [
            (level.items.copy(), level.schedule.state, level.inserted)
            for level in self._levels
        ]

    # ------------------------------------------------------------------
    # Queries (vectorized)
    # ------------------------------------------------------------------

    def _ensure_coreset(self) -> Tuple[np.ndarray, np.ndarray]:
        self.flush()
        if self._coreset is None:
            parts = []
            weights = []
            for level, data in enumerate(self._levels):
                if data.items.size:
                    parts.append(data.items)
                    weights.append(np.full(data.items.size, 1 << level, dtype=np.int64))
            if not parts:
                self._coreset = (
                    np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.int64),
                )
            else:
                items = np.concatenate(parts)
                weight = np.concatenate(weights)
                order = np.argsort(items, kind="mergesort")
                self._coreset = (items[order], np.cumsum(weight[order]))
        return self._coreset

    def rank(self, item: float, *, inclusive: bool = True) -> int:
        """Estimated rank of one query point."""
        return int(self.ranks(np.asarray([item]), inclusive=inclusive)[0])

    def ranks(self, items: Sequence[float], *, inclusive: bool = True) -> np.ndarray:
        """Vectorized rank estimates for an array of query points."""
        if self._n == 0:
            raise EmptySketchError("ranks on an empty sketch")
        sorted_items, cumweights = self._ensure_coreset()
        side = "right" if inclusive else "left"
        positions = np.searchsorted(sorted_items, np.asarray(items, dtype=np.float64), side=side)
        padded = np.concatenate(([0], cumweights))
        return padded[positions]

    def normalized_rank(self, item: float, *, inclusive: bool = True) -> float:
        """Rank scaled into [0, 1]."""
        return self.rank(item, inclusive=inclusive) / self._n

    def quantile(self, q: float) -> float:
        """Item at normalized rank ``q`` (exact min/max at the endpoints)."""
        return float(self.quantiles(np.asarray([q]))[0])

    def quantiles(self, fractions: Sequence[float]) -> np.ndarray:
        """Vectorized quantile queries."""
        if self._n == 0:
            raise EmptySketchError("quantiles on an empty sketch")
        qs = np.asarray(fractions, dtype=np.float64)
        if ((qs < 0.0) | (qs > 1.0)).any():
            raise InvalidParameterError("quantile fractions must be in [0, 1]")
        sorted_items, cumweights = self._ensure_coreset()
        total = int(cumweights[-1])
        targets = np.maximum(1, np.ceil(qs * total)).astype(np.int64)
        positions = np.searchsorted(cumweights, targets, side="left")
        positions = np.minimum(positions, sorted_items.size - 1)
        result = sorted_items[positions]
        result = np.where(qs <= 0.0, self._min, result)
        result = np.where(qs >= 1.0, self._max, result)
        return result

    def cdf(self, split_points: Sequence[float], *, inclusive: bool = True) -> np.ndarray:
        """Estimated CDF at the split points, final element 1.0."""
        points = np.asarray(split_points, dtype=np.float64)
        if points.size == 0:
            raise InvalidParameterError("split_points must be non-empty")
        if (np.diff(points) <= 0).any():
            raise InvalidParameterError("split_points must be strictly increasing")
        masses = self.ranks(points, inclusive=inclusive) / self._n
        return np.concatenate([masses, [1.0]])

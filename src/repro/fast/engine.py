"""A numpy-accelerated REQ sketch for float64 streams.

:class:`FastReqSketch` implements the same relative-compactor stack as
:class:`repro.core.req.ReqSketch` but is built around three
throughput-first structures:

* **Sorted-run levels** — each compactor level keeps a consolidated sorted
  array plus a list of *pending sorted runs* (appended batches and
  promotions).  Appending a batch is O(1); runs are only merged (one
  concatenate + one near-linear sort over already-sorted runs) when a
  compaction or query actually needs the level in sorted order.  A batch
  append followed by merge-style compactions is exactly a merge with a
  pre-sorted single-level sketch, so the Appendix D guarantee framework
  covers it (batching changes which compactions fire, not the guarantee
  class).
* **A preallocated staging block** — scalar :meth:`update` writes into a
  fixed float64 block (a C extension compiled on first import, with a
  pure-Python fallback) and the block is drained into the level structure
  only when full, so single-item ingestion costs one C call per item.
  An explicit :meth:`flush` (implicit on any query) controls visibility.
* **A version-stamped query index** — per-level sorted arrays are cached
  and version-stamped; a query rebuilds only levels dirtied since the
  last query instead of re-sorting every retained item.  The rebuilt
  index (sorted items, cumulative weights, and the zero-padded inverse
  rank index) is itself cached and reused for every ``quantiles`` /
  ``ranks`` / ``cdf`` call until the coreset version changes, so a pure
  read workload is a single ``np.searchsorted`` per batch with no
  per-query rebuild.  ``error_bound`` is memoized on the same stamp.

Query-index invariants (the service plane leans on these):

* The index is a pure function of the retained multiset: rebuilding it
  from scratch (or from a deserialized ``FRQ1`` payload of the same
  state) yields bit-identical arrays, so cached answers are always
  bit-identical to a freshly built coreset's.
* Every content mutation (``update``/``update_many``/``merge``) bumps a
  level version, which invalidates the index on the *next* query; a
  stale index is never served.
* :attr:`~FastReqSketch.query_index_hits` /
  :attr:`~FastReqSketch.query_index_rebuilds` count served-from-cache
  queries vs rebuilds (misses == rebuilds), and
  :attr:`~FastReqSketch.query_index_version` stamps the current build.

Differences from the reference engine, all deliberate: float64 items only
(NaN rejected); the ``auto`` parameter scheme only (constant ``k``,
buffers grow with the level's observed throughput — footnote 9).

The test suite cross-validates this engine against the reference
implementation on the same seeded streams (same error class, identical
weight conservation, identical extremes).
"""

from __future__ import annotations

import math
import weakref
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.params import eps_for_streaming_k
from repro.core.req import ReqSketch
from repro.core.schedule import CompactionSchedule
from repro.errors import (
    EmptySketchError,
    IncompatibleSketchesError,
    InvalidParameterError,
)
from repro.fast._native import load_stage_buffer

__all__ = ["FastReqSketch"]

#: Scalar updates are staged in a preallocated block of this many float64s
#: and drained into the level structure when it fills (or on any query).
_PENDING_BLOCK = 8192

_EMPTY_ITEMS = np.empty(0, dtype=np.float64)
_EMPTY_WEIGHTS = np.empty(0, dtype=np.int64)

#: Views into bases at or below this size are kept as views instead of
#: materialized: a copy() call costs more ingest time than pinning a
#: few-KiB base array costs memory (the anti-pinning guards below only
#: bother copying out of bases larger than this).
_PIN_EXEMPT_BYTES = 16384

#: The C staging-buffer type, or None when no toolchain is available.
_NativeStageBuffer = load_stage_buffer()


class _QueryIndex:
    """One immutable build of a sketch's query index.

    ``items`` is the weighted coreset sorted ascending, ``cumweights`` the
    inclusive cumulative item weights (the *inverse rank index*: a
    ``searchsorted`` over it maps a target rank to its item position), and
    ``padded`` the zero-padded cumulative weights (the *rank index*: a
    ``searchsorted`` of query values over ``items`` indexes into it to
    read estimated ranks).  ``version`` is the sketch's monotonically
    increasing rebuild stamp for this build.
    """

    __slots__ = ("items", "cumweights", "padded", "total", "version")

    def __init__(
        self,
        items: np.ndarray,
        cumweights: np.ndarray,
        padded: np.ndarray,
        version: int,
    ) -> None:
        self.items = items
        self.cumweights = cumweights
        self.padded = padded
        self.total = int(cumweights[-1]) if cumweights.size else 0
        self.version = version


def _sketch_from_wire(cls, payload: bytes):
    """Unpickle helper: rebuild a sketch from its FRQ1 wire payload."""
    return cls.from_bytes(payload)


class _PyStageBuffer:
    """Pure-Python mirror of the C ``StageBuffer`` (same API, slower push)."""

    __slots__ = ("_buf", "capacity", "count", "_flush_cb", "_nan_exc")

    def __init__(self, capacity: int, nan_exc=ValueError) -> None:
        self._buf = np.empty(capacity, dtype=np.float64)
        self.capacity = capacity
        self.count = 0
        self._flush_cb = None
        self._nan_exc = nan_exc

    def set_flush(self, callback) -> None:
        self._flush_cb = callback

    def push(self, item) -> None:
        value = float(item)
        if value != value:
            raise self._nan_exc("cannot insert NaN: items must form a total order")
        if self.count >= self.capacity:  # a failed flush left the block full
            self._flush_cb()
        index = self.count
        self._buf[index] = value
        self.count = index + 1
        if self.count == self.capacity:
            self._flush_cb()

    def extend(self, values) -> None:
        values = np.frombuffer(values, dtype=np.float64) if isinstance(values, bytes) else values
        offset = 0
        remaining = len(values)
        while remaining > 0:
            space = self.capacity - self.count
            take = min(space, remaining)
            self._buf[self.count : self.count + take] = values[offset : offset + take]
            self.count += take
            offset += take
            remaining -= take
            if self.count == self.capacity:
                self._flush_cb()

    def drain(self) -> bytes:
        block = self._buf[: self.count].tobytes()
        self.count = 0
        return block

    def peek(self) -> bytes:
        return self._buf[: self.count].tobytes()


class _FastLevel:
    """One compactor level: a consolidated sorted array + pending sorted runs.

    ``version`` stamps every content mutation (run append, compaction,
    merge absorption) so the sketch's coreset cache can tell which levels
    are dirty.  Consolidation itself does not bump the version — it changes
    the representation, not the multiset.
    """

    __slots__ = (
        "items",
        "runs",
        "run_size",
        "schedule",
        "inserted",
        "version",
        "cap_cache",
        "cap_valid",
    )

    def __init__(self) -> None:
        self.items = _EMPTY_ITEMS
        self.runs: List[np.ndarray] = []
        self.run_size = 0
        self.schedule = CompactionSchedule()
        self.inserted = 0
        self.version = 0
        #: Memoized capacity + the ``inserted`` bound it stays valid for
        #: (the growth rule only changes when ``inserted`` crosses
        #: ``k * 2^sections``; the compression loop asks far more often).
        self.cap_cache = 0
        self.cap_valid = -1

    @property
    def size(self) -> int:
        """Retained items (consolidated + pending runs)."""
        return self.items.size + self.run_size

    def add_run(self, run: np.ndarray) -> None:
        """Append a sorted batch without merging (O(1) until needed).

        Runs may arrive as (strided) views into a larger base array — the
        promotion cascade exploits that to stay allocation-free.  A view
        much smaller than its base would pin the base's memory, so those
        are materialized; the 16x threshold keeps total pinned memory
        within 16x of the retained items while skipping the expensive
        strided gathers for the large mid-cascade promotions.  Bases under
        ``_PIN_EXEMPT_BYTES`` are never worth a copy call: pinning them
        costs less memory than the copy costs time on the ingest path.
        """
        base = run.base
        if (
            base is not None
            and base.nbytes > _PIN_EXEMPT_BYTES
            and run.nbytes * 16 < base.nbytes
        ):
            run = run.copy()
        self.runs.append(run)
        self.run_size += run.size
        self.inserted += int(run.size)
        self.version += 1

    def consolidate(self) -> np.ndarray:
        """Merge pending runs into the sorted array (lazy, idempotent).

        numpy's introsort is near-linear on the concatenation of a few
        sorted runs, and SIMD-accelerated — measurably faster here than an
        explicit k-way merge in Python.
        """
        if self.runs:
            arrays = self.runs if not self.items.size else [self.items, *self.runs]
            if len(arrays) == 1:
                self.items = arrays[0]
            else:
                merged = np.concatenate(arrays)
                merged.sort()
                self.items = merged
            self.runs = []
            self.run_size = 0
        return self.items


class FastReqSketch:
    """Relative-error quantiles over float64 streams, numpy-backed.

    Args:
        k: Section size (even integer >= 2); same accuracy role as in
            :class:`~repro.core.req.ReqSketch`.
        hra: High-rank-accuracy mode.
        seed: Seed for the numpy RNG driving the compaction coins.
        n_bound: Optional known stream-length bound; when given the buffer
            capacity is the fixed ``B = 2 k ceil(log2(n/k))`` of Theorem 14
            instead of the per-level growth rule (used by the large-n space
            experiments; unlike the reference engine, exceeding the bound
            is not policed here).
    """

    def __init__(
        self,
        k: int = 32,
        *,
        hra: bool = False,
        seed: Optional[int] = None,
        n_bound: Optional[int] = None,
    ) -> None:
        if not isinstance(k, int) or k < 2 or k % 2 != 0:
            raise InvalidParameterError(f"k must be an even integer >= 2, got {k!r}")
        self.k = k
        self.n_bound = n_bound
        self._fixed_capacity: Optional[int] = None
        if n_bound is not None:
            if n_bound < 1:
                raise InvalidParameterError(f"n_bound must be >= 1, got {n_bound}")
            sections = max(1, math.ceil(math.log2(max(2.0, n_bound / k))))
            self._fixed_capacity = 2 * k * sections
        self.hra = bool(hra)
        if isinstance(seed, int) and seed < 0:
            # random.Random accepts negative seeds; numpy does not.  Map to
            # the two's-complement value so callers can derive seeds freely.
            seed = seed & (2**64 - 1)
        self._rng = np.random.default_rng(seed)
        self._levels: List[_FastLevel] = []
        self._n = 0
        self._min = math.inf
        self._max = -math.inf
        self._index: Optional[_QueryIndex] = None
        self._index_key: Optional[List[int]] = None
        self._eps_memo: Optional[Tuple[int, float, float]] = None
        #: Queries answered from the cached index without a rebuild.
        self.query_index_hits = 0
        #: Index rebuilds (== cache misses: every miss rebuilds).
        self.query_index_rebuilds = 0

        stage_type = _NativeStageBuffer or _PyStageBuffer
        self._stage = stage_type(_PENDING_BLOCK, InvalidParameterError)
        # The flush hook must not strongly reference self (the stage buffer
        # lives in self.__dict__; a bound method would close a cycle).
        ref = weakref.ref(self)
        def _flush_hook() -> None:
            sketch = ref()
            if sketch is not None:
                sketch._drain_stage()
        self._stage.set_flush(_flush_hook)
        #: Per-instance binding: ``update`` IS the staging buffer's C push,
        #: so the scalar hot path is one C call per item (no Python frame).
        self.update = self._stage.push

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of stream items summarized (including staged scalars)."""
        return self._n + self._stage.count

    @property
    def is_empty(self) -> bool:
        return self.n == 0

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    @property
    def num_retained(self) -> int:
        """Stored items across levels plus the staged scalar block."""
        return sum(level.size for level in self._levels) + self._stage.count

    @property
    def min_item(self) -> float:
        if self.n == 0:
            raise EmptySketchError("min_item on an empty sketch")
        self.flush()
        return self._min

    @property
    def max_item(self) -> float:
        if self.n == 0:
            raise EmptySketchError("max_item on an empty sketch")
        self.flush()
        return self._max

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "HRA" if self.hra else "LRA"
        return (
            f"FastReqSketch(k={self.k}, {mode}, n={self.n}, "
            f"levels={self.num_levels}, retained={self.num_retained})"
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, item: float) -> None:
        """Insert one item (staged; drained in blocks or on queries).

        Note: on instances this name is bound directly to the staging
        buffer's C ``push`` — this method body only runs if that per-
        instance binding has been removed.
        """
        self._stage.push(item)

    def update_many(self, items: Sequence[float]) -> None:
        """Insert a batch; numpy arrays take the vectorized path directly.

        Batches smaller than the staging block are appended to the staging
        buffer (no flush, no level churn); larger batches are sorted once
        and ingested as a single run.
        """
        values = np.asarray(items, dtype=np.float64)
        if values.ndim != 1:
            values = values.reshape(-1)
        if values.size == 0:
            return
        if values.size < self._stage.capacity:
            if np.isnan(values).any():
                raise InvalidParameterError("cannot insert NaN: items must form a total order")
            # The C staging buffer requires a C-contiguous block (strided
            # views, reversed slices, ... are copied here).
            self._stage.extend(np.ascontiguousarray(values))
            return
        run = np.sort(values)
        if np.isnan(run[-1]):  # numpy sorts NaN to the end
            raise InvalidParameterError("cannot insert NaN: items must form a total order")
        self.flush()
        self._ingest_run(run)

    def flush(self) -> None:
        """Push staged scalar updates into the level structure."""
        if self._stage.count:
            self._drain_stage()

    def _drain_stage(self) -> None:
        block = np.frombuffer(self._stage.drain(), dtype=np.float64)
        self._ingest_run(np.sort(block))

    def _ingest_run(self, run: np.ndarray) -> None:
        """Ingest one sorted, NaN-free run (ownership transfers)."""
        self._n += int(run.size)
        first = run[0]
        last = run[-1]
        if first < self._min:
            self._min = float(first)
        if last > self._max:
            self._max = float(last)
        if not self._levels:
            self._levels.append(_FastLevel())
        self._levels[0].add_run(run)
        self._compress()

    # ------------------------------------------------------------------
    # Compaction (merge-style: batch semantics)
    # ------------------------------------------------------------------

    def _capacity(self, level: int) -> int:
        if self._fixed_capacity is not None:
            return self._fixed_capacity
        state = self._levels[level]
        inserted = max(1, state.inserted)
        if inserted <= state.cap_valid:
            return state.cap_cache
        sections = max(1, math.ceil(math.log2(max(2.0, inserted / self.k))))
        state.cap_cache = 2 * self.k * sections
        # ceil(log2(inserted / k)) is flat until inserted crosses the next
        # power-of-two multiple of k, so the memo holds up to that bound.
        state.cap_valid = self.k << sections
        return state.cap_cache

    def _compress(self) -> None:
        level = 0
        while level < len(self._levels):
            current = self._levels[level]
            capacity = self._capacity(level)
            while current.size >= capacity:
                promoted = self._compact_level(current, capacity)
                if promoted.size == 0:
                    break
                if level + 1 == len(self._levels):
                    self._levels.append(_FastLevel())
                self._levels[level + 1].add_run(promoted)
                capacity = self._capacity(level)
            level += 1

    def _compact_level(self, level: _FastLevel, capacity: int) -> np.ndarray:
        items = level.consolidate()
        sections = level.schedule.sections_to_compact()
        protect = max(capacity // 2, capacity - sections * self.k)
        size = items.size
        if (size - protect) % 2 != 0:
            protect += 1
        if size <= protect:
            return _EMPTY_ITEMS
        if self.hra:
            cut = size - protect
            slice_ = items[:cut]
            level.items = items[cut:]
        else:
            slice_ = items[protect:]
            level.items = items[:protect]
        base = level.items.base
        if (
            base is not None
            and base.nbytes > _PIN_EXEMPT_BYTES
            and level.items.nbytes * 4 < base.nbytes
        ):
            level.items = level.items.copy()
        level.version += 1
        offset = 1 if self._rng.random() < 0.5 else 0
        level.schedule.advance()
        # Strided view, not a copy: the next level's add_run decides whether
        # materializing is worth it (it usually is not — the cascade keeps
        # halving this view until it is consumed).
        return slice_[offset::2]

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def merge(self, other) -> "FastReqSketch":
        """Merge one sketch into this one; ``other`` is left unchanged.

        Accepts another :class:`FastReqSketch` or a float-item reference
        :class:`~repro.core.req.ReqSketch` with the same ``k``/``hra``
        (mixed fleets aggregate through the same path).
        """
        return self.merge_many((other,))

    def merge_many(self, sketches) -> "FastReqSketch":
        """K-way merge: absorb every input with ONE compression pass.

        Equivalent in guarantee class to a sequential pairwise fold (the
        Appendix D merge analysis covers arbitrary merge trees, and
        concatenating same-height buffers before compacting is exactly the
        flat tree), but much faster: each input's level runs are appended
        O(1), schedule states are OR-ed, and ``_compress`` runs once over
        the combined structure instead of once per input.

        The inputs are snapshotted first and never mutated — not even their
        staging buffers are drained.  Returns ``self`` for chaining.

        Raises:
            IncompatibleSketchesError: If any input's compaction geometry
                (``k``, ``hra``, ``n_bound``) differs, or a reference sketch
                holds non-numeric items.
        """
        states = [self._donor_state(other) for other in sketches]
        self.flush()
        total = 0
        for levels, staged, other_n, other_min, other_max in states:
            if other_n == 0:
                continue
            while len(self._levels) < len(levels):
                self._levels.append(_FastLevel())
            for height, (items, state, inserted) in enumerate(levels):
                ours = self._levels[height]
                if items.size:
                    ours.add_run(items)  # already counts items.size into inserted
                ours.inserted += inserted - items.size
                ours.schedule.merge(CompactionSchedule(state))
                ours.version += 1
            if staged is not None and staged.size:
                if not self._levels:
                    self._levels.append(_FastLevel())
                self._levels[0].add_run(staged)
            total += other_n
            self._min = min(self._min, other_min)
            self._max = max(self._max, other_max)
        self._n += total
        if total:
            self._compress()
        return self

    def _donor_state(self, other):
        """Validate one merge input and snapshot it without mutating it.

        Returns ``(levels, staged_run, n, min, max)`` where ``levels`` is a
        list of ``(sorted items, schedule state, inserted)`` per height and
        ``staged_run`` is the donor's staged-but-unflushed scalars as a
        sorted run (or ``None``).
        """
        if isinstance(other, FastReqSketch):
            if other.k != self.k or other.hra != self.hra or other.n_bound != self.n_bound:
                raise IncompatibleSketchesError("k/hra/n_bound parameters differ")
            return other._merge_state()
        if isinstance(other, ReqSketch):
            if other.scheme == "theory":
                raise IncompatibleSketchesError(
                    "cannot merge a theory-scheme reference sketch into the "
                    "fast engine (it has no Appendix D parameter ladder); "
                    "convert the fast sketch to the reference engine instead"
                )
            if other.k != self.k or other.hra != self.hra:
                raise IncompatibleSketchesError("k/hra parameters differ")
            if other.n_bound != self.n_bound:
                raise IncompatibleSketchesError("n_bound parameters differ")
            levels = []
            for compactor in other.compactors():
                try:
                    items = np.asarray(compactor.items(), dtype=np.float64)
                except (TypeError, ValueError) as exc:
                    raise IncompatibleSketchesError(
                        "cannot merge a reference sketch holding non-numeric items "
                        "into the float64 fast engine"
                    ) from exc
                levels.append((items, compactor.state, compactor.inserted))
            if other.is_empty:
                return levels, None, 0, math.inf, -math.inf
            return levels, None, other.n, float(other.min_item), float(other.max_item)
        raise IncompatibleSketchesError(
            f"cannot merge FastReqSketch with {type(other).__name__}"
        )

    def _merge_state(self):
        """Read-only snapshot for merging: levels + staged run + n/min/max.

        Unlike a flush-then-copy, this leaves the sketch byte-for-byte
        untouched: pending runs are consolidated (a representation change,
        not a content change) and the staging block is *peeked*, not
        drained, so the donor's future compaction trajectory is unchanged.
        """
        levels = [
            (level.consolidate().copy(), level.schedule.state, level.inserted)
            for level in self._levels
        ]
        staged = None
        minimum, maximum = self._min, self._max
        if self._stage.count:
            staged = np.sort(np.frombuffer(self._stage.peek(), dtype=np.float64))
            minimum = min(minimum, float(staged[0]))
            maximum = max(maximum, float(staged[-1]))
        return levels, staged, self.n, minimum, maximum

    # ------------------------------------------------------------------
    # Serialization (wire format; see repro.fast.wire)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Encode into the compact ``FRQ1`` wire format.

        Staged scalars are flushed first (same visibility rule as a query),
        so encoding may advance the level structure; the summarized multiset
        is unchanged.  See :mod:`repro.fast.wire` for the layout.
        """
        from repro.fast.wire import to_bytes

        return to_bytes(self)

    @classmethod
    def from_bytes(cls, data) -> "FastReqSketch":
        """Decode a ``FRQ1`` payload; level arrays are zero-copy views.

        The RNG is reinitialized unseeded (fresh coin randomness, which is
        what the analysis needs).  Raises
        :class:`~repro.errors.SerializationError` on malformed input.
        """
        from repro.fast.wire import from_bytes

        return from_bytes(data, cls)

    def __reduce__(self):
        """Pickle/deepcopy via the wire format.

        The staging block and RNG are process-local (the staging buffer is
        a C object), so pickling ships the FRQ1 payload: staged items are
        flushed into it and the copy wakes with fresh coin randomness —
        the same semantics as :meth:`from_bytes`.
        """
        return (_sketch_from_wire, (type(self), self.to_bytes()))

    # ------------------------------------------------------------------
    # Queries (vectorized, incrementally cached)
    # ------------------------------------------------------------------

    @property
    def query_index_version(self) -> int:
        """Stamp of the current index build (== rebuild count so far)."""
        return self.query_index_rebuilds

    def query_index(self) -> _QueryIndex:
        """The version-stamped query index (rebuilt lazily on dirt).

        Cached against per-level version stamps: levels untouched since the
        last query reuse their consolidated sorted arrays as-is, so an
        update/query workload only pays to re-sort the levels that actually
        changed, and a pure query workload pays nothing — every batch
        query is a single ``np.searchsorted`` over these arrays.
        """
        self.flush()
        key = [level.version for level in self._levels]
        if self._index is not None and self._index_key == key:
            self.query_index_hits += 1
            return self._index
        parts: List[np.ndarray] = []
        weights: List[np.ndarray] = []
        for height, level in enumerate(self._levels):
            items = level.consolidate()
            if items.size:
                parts.append(items)
                weights.append(np.full(items.size, 1 << height, dtype=np.int64))
        if not parts:
            sorted_items = _EMPTY_ITEMS
            cumweights = _EMPTY_WEIGHTS
        elif len(parts) == 1:
            sorted_items = parts[0]
            cumweights = np.cumsum(weights[0])
        else:
            merged = np.concatenate(parts)
            # Stable argsort over a concatenation of sorted runs: timsort
            # gallops through the pre-sorted blocks instead of resorting.
            order = np.argsort(merged, kind="stable")
            sorted_items = merged[order]
            cumweights = np.cumsum(np.concatenate(weights)[order])
        padded = np.concatenate(([0], cumweights))
        self.query_index_rebuilds += 1
        self._index = _QueryIndex(sorted_items, cumweights, padded, self.query_index_rebuilds)
        self._index_key = key
        return self._index

    def _ensure_coreset(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Back-compat view of the index as its raw array triple."""
        index = self.query_index()
        return index.items, index.cumweights, index.padded

    def rank(self, item: float, *, inclusive: bool = True) -> int:
        """Estimated rank of one query point."""
        return int(self.ranks(np.asarray([item]), inclusive=inclusive)[0])

    def ranks(self, items: Sequence[float], *, inclusive: bool = True) -> np.ndarray:
        """Vectorized rank estimates for an array of query points."""
        if self.n == 0:
            raise EmptySketchError("ranks on an empty sketch")
        index = self.query_index()
        side = "right" if inclusive else "left"
        positions = np.searchsorted(index.items, np.asarray(items, dtype=np.float64), side=side)
        return index.padded[positions]

    def normalized_rank(self, item: float, *, inclusive: bool = True) -> float:
        """Rank scaled into [0, 1]."""
        return self.rank(item, inclusive=inclusive) / self.n

    def quantile(self, q: float) -> float:
        """Item at normalized rank ``q`` (exact min/max at the endpoints)."""
        return float(self.quantiles(np.asarray([q]))[0])

    def quantiles(self, fractions: Sequence[float]) -> np.ndarray:
        """Vectorized quantile queries."""
        if self.n == 0:
            raise EmptySketchError("quantiles on an empty sketch")
        qs = np.asarray(fractions, dtype=np.float64)
        if ((qs < 0.0) | (qs > 1.0)).any():
            raise InvalidParameterError("quantile fractions must be in [0, 1]")
        index = self.query_index()
        targets = np.maximum(1, np.ceil(qs * index.total)).astype(np.int64)
        positions = np.searchsorted(index.cumweights, targets, side="left")
        positions = np.minimum(positions, index.items.size - 1)
        result = index.items[positions]
        result = np.where(qs <= 0.0, self._min, result)
        result = np.where(qs >= 1.0, self._max, result)
        return result

    def cdf(self, split_points: Sequence[float], *, inclusive: bool = True) -> np.ndarray:
        """Estimated CDF at the split points, final element 1.0."""
        points = np.asarray(split_points, dtype=np.float64)
        if points.size == 0:
            raise InvalidParameterError("split_points must be non-empty")
        if (np.diff(points) <= 0).any():
            raise InvalidParameterError("split_points must be strictly increasing")
        masses = self.ranks(points, inclusive=inclusive) / self.n
        return np.concatenate([masses, [1.0]])

    # ------------------------------------------------------------------
    # Error bounds (auto-scheme, mirrors ReqSketch)
    # ------------------------------------------------------------------

    def error_bound(self, *, delta: float = 0.05) -> float:
        """A-priori multiplicative error ``eps`` at the current stream length.

        Memoized on ``(n, delta)``: a read-heavy workload (the service
        query plane answers thousands of requests between ingests) pays
        the bound computation once per stream length, not per request.
        """
        n = max(2, self.n)
        memo = self._eps_memo
        if memo is not None and memo[0] == n and memo[1] == delta:
            return memo[2]
        eps = eps_for_streaming_k(self.k, n, delta)
        self._eps_memo = (n, delta, eps)
        return eps

    def rank_bounds(self, item: float, *, delta: float = 0.05) -> Tuple[int, int]:
        """(lower, upper) bounds on the true rank, from the (1 +/- eps) bound."""
        est = self.rank(item)
        eps = self.error_bound(delta=delta)
        lower = int(math.floor(est / (1.0 + eps)))
        upper = self.n if eps >= 1.0 else int(math.ceil(est / (1.0 - eps)))
        return max(0, lower), min(self.n, upper)

"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by this package derive from
:class:`ReproError` so that callers can catch library-specific failures with a
single ``except`` clause while letting programming errors (``TypeError`` from
incomparable items, for example) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "EmptySketchError",
    "StreamLengthExceededError",
    "IncompatibleSketchesError",
    "InvalidParameterError",
    "SerializationError",
    "ServiceError",
    "TransportError",
    "RetryBudgetExceededError",
    "ClusterError",
    "WrongTopologyError",
    "SnapshotCorruptError",
    "DegradedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class EmptySketchError(ReproError):
    """Raised when a query (rank, quantile, ...) is posed to an empty sketch."""


class StreamLengthExceededError(ReproError):
    """Raised when a fixed-``n`` sketch receives more items than its bound.

    Only sketches constructed with an explicit stream-length bound (the
    ``fixed`` scheme of :class:`repro.core.req.ReqSketch`) raise this; the
    ``auto`` and ``theory`` schemes grow their parameters instead, as
    described in Section 5 and Appendix D of the paper.
    """


class IncompatibleSketchesError(ReproError):
    """Raised when two sketches cannot be merged.

    Sketches are mergeable only when they agree on the parameters that define
    the compaction geometry: the scheme, the accuracy mode (high/low rank
    accuracy) and the base parameter (``k`` or ``k_hat``).
    """


class InvalidParameterError(ReproError, ValueError):
    """Raised when a sketch or experiment parameter is out of range."""


class SerializationError(ReproError):
    """Raised when a byte string cannot be decoded into a sketch."""


class ServiceError(ReproError):
    """Raised by the quantile service plane (:mod:`repro.service`).

    Covers protocol violations (malformed or oversized frames, unknown
    opcodes), server-reported request failures surfaced by the clients, and
    durable-state problems (a corrupt snapshot, a write-ahead log that
    cannot be appended to).
    """


class SnapshotCorruptError(ServiceError):
    """A snapshot file failed its integrity check (CRC, framing, or key).

    Carries the offending path so the caller can quarantine the file —
    the service moves it to ``data_dir/quarantine/`` and, on the cluster
    plane, re-fetches the key from a healthy replica instead of serving
    (or crashing on) rotten bytes.
    """

    def __init__(self, path, reason: str) -> None:
        super().__init__(f"corrupt snapshot file {path}: {reason}")
        self.path = str(path)
        self.reason = reason


class DegradedError(ServiceError):
    """The server is in degraded read-only mode and sheds this write.

    Raised when storage cannot accept new records (``ENOSPC``, a
    poisoned WAL).  Maps to ``STATUS_RETRY_LATER`` on the wire — the
    sequenced-retry clients treat it exactly like an overload shed and
    replay once the server recovers, so no acked write is ever lost and
    no shed write is ever silently dropped.
    """


class TransportError(ServiceError, ConnectionError):
    """A connection died mid-exchange (EOF inside a frame, reset, ...).

    Deliberately both a :class:`ServiceError` (existing callers that catch
    the service family keep working) and a :class:`ConnectionError` (the
    retry layer treats it like any other transport failure: the request
    outcome is *indeterminate*, so only idempotent or sequence-numbered
    work may be replayed).
    """


class RetryBudgetExceededError(ServiceError):
    """A client retry policy ran out of budget before the operation stuck.

    Carries the final underlying failure as ``__cause__``; raised instead
    of retrying forever so a hard outage surfaces as one loud error.
    """


class WrongTopologyError(ServiceError):
    """A request was routed under a stale cluster topology.

    Raised when a server that has a newer :class:`~repro.cluster.ring.ClusterMap`
    installed refuses an operation for a key it no longer owns.  The redirect
    carries the server's map as ``map_json`` (a JSON string, possibly empty
    when the server could not attach it) so the client can refresh its ring
    and re-route in one round trip instead of polling for the new topology.
    """

    def __init__(self, message: str, map_json: str = "") -> None:
        super().__init__(message)
        self.map_json = map_json


class ClusterError(ServiceError):
    """A cluster-level operation could not complete (:mod:`repro.cluster`).

    Raised when every replica of a key is unreachable (a write found no
    live replica to acknowledge it, a read exhausted failover), or when
    an anti-entropy repair pass cannot heal a divergence exactly.  Per-
    replica failures that the cluster layer absorbed (failover, hinted
    handoff) do *not* raise — they are reported through client counters.
    """

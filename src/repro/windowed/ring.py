"""Time-bucketed sketch rings: the windowed plane's core data structure.

A :class:`WindowRing` keeps one :class:`~repro.fast.FastReqSketch` per
wall-clock time bucket of a fixed width and answers any horizon by
*merging* the overlapping buckets (``merge_many`` — one snapshot + one
compression pass, Theorem 3 of the paper makes the union lossless).
Nothing is ever re-scanned: ingest cost is one vectorized grouped
``update_many`` pass, query cost is one k-way merge over at most
``retention`` tiny summaries.

Timestamps come from the **caller** (epoch seconds as float64) — tests
drive deterministic clocks, production passes ``time.time()``-based
stamps.  That choice is what makes WAL replay bit-exact: a replayed
``(timestamps, values)`` batch lands in exactly the buckets the live
batch did, because bucketing is a pure function of the payload.

Semantics:

* **Bucketing** — value with timestamp ``t`` belongs to bucket
  ``floor(t / bucket_seconds)`` (half-open ``[b*w, (b+1)*w)`` intervals).
* **Watermark / lateness** — the watermark is the maximum timestamp ever
  ingested, and it advances at *batch boundaries*: a batch is one atomic
  arrival, so admission is judged against the watermark as of the
  previous batch (in-batch order is irrelevant, a single in-order batch
  of any span is fully accepted, and WAL replay — which preserves batch
  boundaries — is deterministic).  Values older than that watermark
  minus ``lateness`` are dropped and counted in :attr:`late_dropped`;
  out-of-order arrivals within the bound land in their true bucket.
* **Retention / TTL** — only the newest ``retention`` bucket slots are
  live; older buckets are expired as the watermark advances (TTL =
  ``retention * bucket_seconds``), counted in :attr:`expired_buckets`.
* **Bucket close** — bucket ``b`` is *closed* once no admissible future
  value can reach it (``watermark - lateness >= (b+1)*bucket_seconds``);
  :meth:`ingest` reports newly closed non-empty buckets so the service
  can push subscription notifications exactly once per bucket.

Determinism: every bucket sketch is seeded from a splitmix64 mix of the
ring seed and the bucket index, and :meth:`horizon` merges into a fresh
target seeded from a disjoint scratch namespace — so a ring rebuilt from
the same payloads (WAL replay, FRW1 snapshot + tail) answers every
horizon bit-identically.  :meth:`reseed_epoch` re-pins every bucket's
coin stream after a snapshot is written/loaded, mirroring the service's
per-key epoch reseeding for plain sketches.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.fast import FastReqSketch

__all__ = ["WindowRing", "ClosedBucket", "mix_seed"]

_MASK64 = (1 << 64) - 1
#: Salt for the horizon scratch sketch's seed — a namespace disjoint from
#: the per-bucket seeds (which mix the bucket *index*, never this salt).
_HORIZON_SALT = 0x484F52495A4F4E31  # b"HORIZON1"


def mix_seed(*parts: int) -> int:
    """Fold integers into one well-mixed non-negative 63-bit seed.

    splitmix64-style: each part perturbs the accumulator through a
    multiply + xor-shift finalizer, so structured inputs (small bucket
    indices, consecutive epochs) land far apart.  Deterministic across
    runs and platforms — the windowed plane's bit-exact recovery leans
    on it.
    """
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        acc = (acc ^ (int(part) & _MASK64)) * 0xBF58476D1CE4E5B9 & _MASK64
        acc ^= acc >> 29
        acc = acc * 0x94D049BB133111EB & _MASK64
        acc ^= acc >> 32
    return acc & ((1 << 63) - 1)


class ClosedBucket(Tuple):
    """``(index, start, end, sketch)`` for one newly closed bucket."""

    __slots__ = ()

    def __new__(cls, index: int, start: float, end: float, sketch):
        return tuple.__new__(cls, (index, start, end, sketch))

    @property
    def index(self) -> int:
        return self[0]

    @property
    def start(self) -> float:
        return self[1]

    @property
    def end(self) -> float:
        return self[2]

    @property
    def sketch(self):
        return self[3]


class WindowRing:
    """A ring of time-bucketed sketches for one (key, resolution).

    Args:
        bucket_seconds: Bucket width (> 0).
        retention: Live bucket slots (>= 1); older buckets expire as the
            watermark advances.
        lateness: Out-of-order tolerance in seconds (>= 0): values older
            than ``watermark - lateness`` are dropped, buckets close only
            once the watermark clears their end by ``lateness``.
        k, hra: Per-bucket sketch parameters.
        seed: Ring seed; bucket ``i`` uses ``mix_seed(seed, i)``.
            ``None`` = fresh randomness (no bit-exact replay promised).
    """

    __slots__ = (
        "bucket_seconds",
        "retention",
        "lateness",
        "k",
        "hra",
        "seed",
        "_buckets",
        "_watermark",
        "_closed_through",
        "late_dropped",
        "expired_buckets",
        "accepted",
    )

    def __init__(
        self,
        bucket_seconds: float,
        *,
        retention: int = 64,
        lateness: float = 0.0,
        k: int = 32,
        hra: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        if not bucket_seconds > 0:
            raise InvalidParameterError(
                f"bucket_seconds must be > 0, got {bucket_seconds}"
            )
        if retention < 1:
            raise InvalidParameterError(f"retention must be >= 1, got {retention}")
        if lateness < 0:
            raise InvalidParameterError(f"lateness must be >= 0, got {lateness}")
        self.bucket_seconds = float(bucket_seconds)
        self.retention = int(retention)
        self.lateness = float(lateness)
        self.k = k
        self.hra = hra
        self.seed = seed
        self._buckets: Dict[int, FastReqSketch] = {}
        self._watermark: Optional[float] = None
        #: Highest bucket index already reported closed (notifications
        #: fire once per bucket; derived from the watermark on restore).
        self._closed_through: int = -(2**62)
        self.late_dropped = 0
        self.expired_buckets = 0
        #: Values accepted into buckets over the ring's whole life (the
        #: ingest ack counter; late-dropped values are excluded).
        self.accepted = 0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def bucket_index(self, timestamp: float) -> int:
        """The bucket owning ``timestamp`` (half-open intervals)."""
        return int(math.floor(timestamp / self.bucket_seconds))

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """``[start, end)`` wall-clock bounds of bucket ``index``."""
        return index * self.bucket_seconds, (index + 1) * self.bucket_seconds

    def _bucket_seed(self, index: int) -> Optional[int]:
        return None if self.seed is None else mix_seed(self.seed, index)

    @property
    def horizon_seed(self) -> Optional[int]:
        """Seed of the scratch sketch :meth:`horizon` merges into.

        Public so the bit-exactness invariant is testable: a fresh
        ``FastReqSketch`` with this seed, ``merge_many``-ed over
        :meth:`buckets` in index order, answers identically to
        :meth:`horizon`.  Mixed with a salt disjoint from every bucket
        seed's namespace.
        """
        return None if self.seed is None else mix_seed(self.seed, _HORIZON_SALT)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def watermark(self) -> Optional[float]:
        """Largest timestamp ever ingested (``None`` before any data)."""
        return self._watermark

    @property
    def closed_through(self) -> int:
        """Highest bucket index known closed (very negative when none)."""
        return self._closed_through

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def num_retained(self) -> int:
        """Retained items across every live bucket (space accounting)."""
        return sum(sketch.num_retained for sketch in self._buckets.values())

    @property
    def n(self) -> int:
        """Values currently represented by live buckets (expired excluded)."""
        return sum(int(sketch.n) for sketch in self._buckets.values())

    def buckets(self) -> List[Tuple[int, FastReqSketch]]:
        """Live ``(index, sketch)`` pairs in ascending index order."""
        return sorted(self._buckets.items())

    def closed_buckets(self, from_index: int = -(2**62)) -> List[ClosedBucket]:
        """Retained *closed* buckets with index >= ``from_index``.

        The subscription catch-up path: everything here was already
        reported by some :meth:`ingest` (or predates the subscription),
        so a resuming subscriber replays exactly the closed buckets it
        missed — never an open one.
        """
        out = []
        for index, sketch in self.buckets():
            if index < from_index or index > self._closed_through:
                continue
            start, end = self.bucket_bounds(index)
            out.append(ClosedBucket(index, start, end, sketch))
        return out

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(self, timestamps, values) -> Tuple[int, List[ClosedBucket]]:
        """Apply one (timestamps, values) batch.

        Returns ``(accepted, closed)``: how many values landed in a live
        bucket, and the non-empty buckets this batch *newly closed*
        (ascending).  Deterministic for a given batch sequence — the WAL
        replay contract.  Arrays must be pre-validated (same length,
        non-empty, finite timestamps, no NaN values) — the service
        validates before its WAL append, mirroring plain ingest.
        """
        ts = np.ascontiguousarray(timestamps, dtype=np.float64).reshape(-1)
        vals = np.ascontiguousarray(values, dtype=np.float64).reshape(-1)
        indices = np.floor(ts / self.bucket_seconds).astype(np.int64)
        previous = self._watermark
        high = int(indices.max())
        if previous is not None:
            high = max(high, self.bucket_index(previous))
            watermark = max(previous, float(ts.max()))
        else:
            watermark = float(ts.max())
        self._watermark = watermark

        # Expire buckets that fell off the ring as the watermark advanced.
        floor_index = high - self.retention + 1
        if self._buckets:
            dead = [index for index in self._buckets if index < floor_index]
            for index in dead:
                del self._buckets[index]
            self.expired_buckets += len(dead)

        # Admission: inside the lateness bound (judged against the
        # pre-batch watermark — the batch is one atomic arrival) AND
        # inside the live ring.
        if previous is None:
            keep = indices >= floor_index
        else:
            keep = (ts >= previous - self.lateness) & (indices >= floor_index)
        dropped = int(keep.size - np.count_nonzero(keep))
        if dropped:
            self.late_dropped += dropped
            indices = indices[keep]
            vals = vals[keep]

        # Group by bucket (stable sort: in-batch order per bucket is the
        # arrival order, so replay feeds each sketch identical slices).
        if indices.size:
            order = np.argsort(indices, kind="stable")
            indices = indices[order]
            vals = vals[order]
            starts = np.concatenate(
                ([0], np.flatnonzero(np.diff(indices)) + 1, [indices.size])
            )
            for lo, hi in zip(starts[:-1], starts[1:]):
                index = int(indices[lo])
                sketch = self._buckets.get(index)
                if sketch is None:
                    sketch = FastReqSketch(
                        self.k, hra=self.hra, seed=self._bucket_seed(index)
                    )
                    self._buckets[index] = sketch
                sketch.update_many(vals[lo:hi])
            self.accepted += int(indices.size)

        return int(indices.size), self._collect_closed()

    def _collect_closed(self) -> List[ClosedBucket]:
        """Non-empty buckets newly closed by the current watermark."""
        limit = self.bucket_index(self._watermark - self.lateness) - 1
        if limit <= self._closed_through:
            return []
        closed = []
        for index, sketch in self.buckets():
            if self._closed_through < index <= limit:
                start, end = self.bucket_bounds(index)
                closed.append(ClosedBucket(index, start, end, sketch))
        self._closed_through = limit
        return closed

    # ------------------------------------------------------------------
    # Horizon queries
    # ------------------------------------------------------------------

    def horizon(self, start: float, end: float) -> FastReqSketch:
        """One merged sketch over buckets overlapping ``[start, end)``.

        Pure merge: the bucket sketches are untouched, the target is a
        fresh deterministic-seeded scratch (:attr:`horizon_seed`) filled
        by one k-way ``merge_many``.  May return an empty sketch (no
        overlapping data) — callers decide whether that is an error.
        """
        if not end > start:
            raise InvalidParameterError(
                f"horizon end must be > start, got [{start}, {end})"
            )
        lo = self.bucket_index(start)
        sources = [
            sketch
            for index, sketch in self.buckets()
            if index >= lo and index * self.bucket_seconds < end
        ]
        target = FastReqSketch(self.k, hra=self.hra, seed=self.horizon_seed)
        if sources:
            target.merge_many(sources)
        return target

    # ------------------------------------------------------------------
    # Durability hooks (see repro.windowed.wire for the FRW1 format)
    # ------------------------------------------------------------------

    def reseed_epoch(self, epoch: int) -> None:
        """Pin every bucket's coin stream to ``(bucket seed, epoch)``.

        Called after a ring snapshot is written (live side) and after one
        is loaded (recovery side), with ``epoch`` = the snapshot's WAL
        sequence — the windowed twin of the service's per-key
        ``_reseed_from_epoch``: FRW1 payloads do not carry RNG state, so
        both sides re-pin to the same deterministic stream and the
        post-snapshot WAL tail replays with identical coins.  No-op for
        unseeded rings.
        """
        if self.seed is None:
            return
        for index, sketch in self._buckets.items():
            sketch._rng = np.random.default_rng(mix_seed(self.seed, index, epoch))

    def restore_bucket(self, index: int, sketch: FastReqSketch) -> None:
        """Install one deserialized bucket (snapshot load path)."""
        self._buckets[int(index)] = sketch

    def restore_marks(
        self,
        *,
        watermark: Optional[float],
        late_dropped: int,
        expired_buckets: int,
        accepted: int,
    ) -> None:
        """Restore counters + watermark; recomputes the closed frontier."""
        self._watermark = watermark
        self.late_dropped = int(late_dropped)
        self.expired_buckets = int(expired_buckets)
        self.accepted = int(accepted)
        if watermark is not None:
            self._closed_through = self.bucket_index(watermark - self.lateness) - 1

    def stats(self) -> dict:
        return {
            "bucket_seconds": self.bucket_seconds,
            "retention": self.retention,
            "lateness": self.lateness,
            "buckets": self.bucket_count,
            "retained_items": self.num_retained,
            "n": self.n,
            "watermark": self._watermark,
            "late_dropped": self.late_dropped,
            "expired_buckets": self.expired_buckets,
            "accepted": self.accepted,
        }

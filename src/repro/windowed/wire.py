"""FRW1: the serialized form of a :class:`~repro.windowed.ring.WindowRing`.

Layered directly on FRQ1 (``repro.fast.wire``): an FRW1 blob is a small
ring header — geometry, watermark, lifetime counters — followed by each
live bucket's index and its FRQ1 payload verbatim.  The windowed
snapshot store persists one FRW1 *bundle* per key (all resolutions
concatenated), so ring recovery reuses the service's existing
``SnapshotStore`` atomic-rename machinery unchanged.

Format (little-endian):

``ring header``  ``<4sBBHIdddQQQI`` — magic ``b"FRW1"``, version, flags
(bit 0 = hra), reserved, retention, bucket_seconds, lateness, watermark
(NaN = no data yet), late_dropped, expired_buckets, accepted,
num_buckets.  Then per bucket: ``<qI`` (bucket index, payload length) +
FRQ1 bytes.

``bundle``  ``<I`` ring count, then per ring ``<dI`` (resolution
seconds, FRW1 length) + FRW1 bytes, ascending by resolution.

FRQ1 payloads do not carry RNG state, so :func:`unpack_ring` re-pins
each bucket's generator to its deterministic per-bucket seed; the
service then applies the snapshot-epoch reseed
(:meth:`WindowRing.reseed_epoch`) on both the save and load sides,
which is what makes snapshot + WAL-tail recovery bit-exact.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, Optional

import numpy as np

from repro.errors import SerializationError
from repro.fast import FastReqSketch

from .ring import WindowRing, mix_seed

__all__ = ["pack_ring", "unpack_ring", "pack_rings", "unpack_rings", "MAGIC"]

MAGIC = b"FRW1"
_VERSION = 1
_FLAG_HRA = 0x1

_RING_HEAD = struct.Struct("<4sBBHIdddQQQI")
_BUCKET_HEAD = struct.Struct("<qI")
_BUNDLE_COUNT = struct.Struct("<I")
_BUNDLE_RING = struct.Struct("<dI")


def pack_ring(ring: WindowRing) -> bytes:
    """Serialize one ring: header + every live bucket's FRQ1 payload.

    ``to_bytes`` flushes each bucket (possibly consuming its RNG), so a
    caller that needs determinism afterwards must epoch-reseed — the
    service does, on both the save and load sides, which is exactly why
    live state and snapshot+tail recovery stay bit-identical.
    """
    buckets = ring.buckets()
    watermark = ring.watermark if ring.watermark is not None else math.nan
    parts = [
        _RING_HEAD.pack(
            MAGIC,
            _VERSION,
            _FLAG_HRA if ring.hra else 0,
            0,
            ring.retention,
            ring.bucket_seconds,
            ring.lateness,
            watermark,
            ring.late_dropped,
            ring.expired_buckets,
            ring.accepted,
            len(buckets),
        )
    ]
    for index, sketch in buckets:
        payload = sketch.to_bytes()
        parts.append(_BUCKET_HEAD.pack(index, len(payload)))
        parts.append(payload)
    return b"".join(parts)


def unpack_ring(
    data: bytes,
    *,
    k: int = 32,
    seed: Optional[int] = None,
) -> WindowRing:
    """Rebuild a ring from FRW1 bytes.

    ``k``/``seed`` restore the ring's construction parameters (they are
    deliberately not persisted — the service re-derives them per key, so
    a reconfigured server never silently resurrects stale settings for
    *new* buckets).  hra and bucket geometry come from the payload.
    """
    view = memoryview(data)
    if len(view) < _RING_HEAD.size:
        raise SerializationError("FRW1 payload shorter than its header")
    (
        magic,
        version,
        flags,
        _reserved,
        retention,
        bucket_seconds,
        lateness,
        watermark,
        late_dropped,
        expired_buckets,
        accepted,
        num_buckets,
    ) = _RING_HEAD.unpack_from(view, 0)
    if magic != MAGIC:
        raise SerializationError(f"bad FRW1 magic {magic!r}")
    if version != _VERSION:
        raise SerializationError(f"unsupported FRW1 version {version}")
    hra = bool(flags & _FLAG_HRA)
    ring = WindowRing(
        bucket_seconds,
        retention=retention,
        lateness=lateness,
        k=k,
        hra=hra,
        seed=seed,
    )
    offset = _RING_HEAD.size
    for _ in range(num_buckets):
        if len(view) < offset + _BUCKET_HEAD.size:
            raise SerializationError("truncated FRW1 bucket header")
        index, payload_len = _BUCKET_HEAD.unpack_from(view, offset)
        offset += _BUCKET_HEAD.size
        if len(view) < offset + payload_len:
            raise SerializationError("truncated FRW1 bucket payload")
        sketch = FastReqSketch.from_bytes(view[offset : offset + payload_len])
        offset += payload_len
        # FRQ1 does not carry RNG state; pin the bucket back onto its
        # deterministic stream (the epoch reseed then layers on top).
        if seed is not None:
            sketch._rng = np.random.default_rng(mix_seed(seed, index))
        ring.restore_bucket(index, sketch)
    if offset != len(view):
        raise SerializationError("trailing bytes after FRW1 buckets")
    ring.restore_marks(
        watermark=None if math.isnan(watermark) else watermark,
        late_dropped=late_dropped,
        expired_buckets=expired_buckets,
        accepted=accepted,
    )
    return ring


def pack_rings(rings: Dict[float, WindowRing]) -> bytes:
    """Bundle one key's rings (every resolution) into a single payload."""
    parts = [_BUNDLE_COUNT.pack(len(rings))]
    for resolution in sorted(rings):
        blob = pack_ring(rings[resolution])
        parts.append(_BUNDLE_RING.pack(resolution, len(blob)))
        parts.append(blob)
    return b"".join(parts)


def unpack_rings(
    data: bytes,
    *,
    k: int = 32,
    seed: Optional[int] = None,
) -> Dict[float, WindowRing]:
    """Inverse of :func:`pack_rings`; ring seeds mix in the resolution."""
    view = memoryview(data)
    if len(view) < _BUNDLE_COUNT.size:
        raise SerializationError("FRW1 bundle shorter than its count header")
    (count,) = _BUNDLE_COUNT.unpack_from(view, 0)
    offset = _BUNDLE_COUNT.size
    rings: Dict[float, WindowRing] = {}
    for _ in range(count):
        if len(view) < offset + _BUNDLE_RING.size:
            raise SerializationError("truncated FRW1 bundle ring header")
        resolution, blob_len = _BUNDLE_RING.unpack_from(view, offset)
        offset += _BUNDLE_RING.size
        if len(view) < offset + blob_len:
            raise SerializationError("truncated FRW1 bundle ring payload")
        ring_seed = None if seed is None else mix_seed(seed, hash_resolution(resolution))
        rings[resolution] = unpack_ring(
            view[offset : offset + blob_len], k=k, seed=ring_seed
        )
        offset += blob_len
    if offset != len(view):
        raise SerializationError("trailing bytes after FRW1 bundle")
    return rings


def hash_resolution(resolution: float) -> int:
    """A stable integer handle for a resolution, for seed mixing."""
    return struct.unpack("<Q", struct.pack("<d", float(resolution)))[0]

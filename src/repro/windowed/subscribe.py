"""Subscription bookkeeping for the SUBSCRIBE push surface.

The hub is transport-agnostic: the server hands it connection handles
and a ``send(conn, payload)`` callback; the hub tracks which connection
wants which (key, resolution) stream and where each subscriber's cursor
is.  Delivery guarantees live in the *protocol*, not here:

* A bucket-close notification fires at most once per bucket per
  subscriber (the ``next_index`` cursor only moves forward).
* Pushes are fire-and-forget over the socket — a subscriber that loses
  its connection re-subscribes with ``resume_from = last index + 1`` and
  the server replays the closed buckets it missed from durable ring
  state (see ``WindowRing.closed_buckets``), so reconnects resume
  without duplicates.  Notifications are intentionally *not* gated on
  WAL commit: a push for a bucket that a crash later un-closes is
  impossible, because closing is derived from acked, WAL-logged ingest.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

__all__ = ["Subscription", "SubscriptionHub"]


class Subscription:
    """One subscriber: a connection watching one (key, resolution)."""

    __slots__ = ("conn", "key", "resolution", "fractions", "next_index")

    def __init__(
        self,
        conn,
        key: str,
        resolution: float,
        fractions: Tuple[float, ...],
        next_index: int,
    ) -> None:
        self.conn = conn
        self.key = key
        self.resolution = resolution
        self.fractions = fractions
        self.next_index = next_index


class SubscriptionHub:
    """Registry of live subscriptions, indexed by key."""

    def __init__(self) -> None:
        self._by_key: Dict[str, List[Subscription]] = {}

    @property
    def active_count(self) -> int:
        return sum(len(subs) for subs in self._by_key.values())

    def add(
        self,
        conn,
        key: str,
        resolution: float,
        fractions: Sequence[float],
        next_index: int,
    ) -> Subscription:
        sub = Subscription(conn, key, resolution, tuple(fractions), next_index)
        self._by_key.setdefault(key, []).append(sub)
        return sub

    def drop_connection(self, conn) -> int:
        """Remove every subscription held by a closing connection."""
        dropped = 0
        for key in list(self._by_key):
            remaining = [s for s in self._by_key[key] if s.conn is not conn]
            dropped += len(self._by_key[key]) - len(remaining)
            if remaining:
                self._by_key[key] = remaining
            else:
                del self._by_key[key]
        return dropped

    def notify(
        self,
        key: str,
        events,
        encode: Callable[[Subscription, object], bytes],
        send: Callable[[object, bytes], None],
    ) -> int:
        """Push newly closed buckets to every matching subscriber.

        ``events`` are ``WindowEvent``s from one ingest; ``encode``
        renders one (subscription, event) into a complete wire frame
        (the server evaluates the subscriber's fractions there);
        ``send`` writes bytes to a connection.  Events at a different
        resolution or below the subscriber's cursor are skipped, and the
        cursor advances past everything delivered.
        """
        subs = self._by_key.get(key)
        if not subs:
            return 0
        pushed = 0
        for sub in subs:
            payload = bytearray()
            for event in events:
                if event.resolution != sub.resolution:
                    continue
                if event.index < sub.next_index:
                    continue
                payload += encode(sub, event)
                sub.next_index = event.index + 1
            if payload:
                send(sub.conn, bytes(payload))
                pushed += 1
        return pushed

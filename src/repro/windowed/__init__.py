"""Windowed quantile plane: time-bucketed sketch rings as a service subsystem.

The paper's motivating workload — p50/p99/p99.9 of response times — is
in practice windowed ("p99 over the last 5 minutes"), and the REQ
sketch's full mergeability (Theorem 3) is what makes that cheap: one
small sketch per time bucket, merged on demand for any horizon, never
re-scanning data.  This package supplies the pieces the service plane
composes:

- :mod:`~repro.windowed.ring` — :class:`WindowRing`, the wall-clock
  bucketed ring with TTL retention, a bounded-lateness watermark, and
  merge-on-query horizons.
- :mod:`~repro.windowed.store` — :class:`WindowStore`, per-key
  multi-resolution ring state with validation and durability hooks.
- :mod:`~repro.windowed.wire` — FRW1, the ring snapshot format layered
  on FRQ1.
- :mod:`~repro.windowed.subscribe` — :class:`SubscriptionHub`,
  bookkeeping for the SUBSCRIBE server-push surface.
- :mod:`~repro.windowed.durations` — ``"5m"`` ⇄ seconds helpers for the
  CLI and clients.
"""

from .durations import format_duration, parse_duration
from .ring import ClosedBucket, WindowRing, mix_seed
from .store import WindowEvent, WindowStore
from .subscribe import Subscription, SubscriptionHub
from .wire import pack_ring, pack_rings, unpack_ring, unpack_rings

__all__ = [
    "WindowRing",
    "ClosedBucket",
    "WindowStore",
    "WindowEvent",
    "Subscription",
    "SubscriptionHub",
    "mix_seed",
    "pack_ring",
    "unpack_ring",
    "pack_rings",
    "unpack_rings",
    "parse_duration",
    "format_duration",
]

"""Per-key windowed state: a dict of keys, each a dict of resolution rings.

The :class:`WindowStore` is the windowed twin of the service's
``SketchStore``: it owns every key's rings, validates ingest batches,
fans each batch out to all configured resolutions, and exposes the
payload/restore/reseed hooks the durability layer drives.  It knows
nothing about sockets, WAL, or snapshots — ``QuantileService`` wires
those around it.

Every key gets one ring per configured resolution (bucket width).
``resolution=0.0`` in the query/subscribe APIs means "the finest
configured resolution" — the common case for `query --last 5m` style
reads.  Ring seeds derive from the store's per-key seed function
(normally ``SketchStore.derive_seed``) mixed with the resolution, so
windowed buckets, plain sketches, and monitor windows all draw from
disjoint seed namespaces.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServiceError
from repro.fast import FastReqSketch

from .ring import ClosedBucket, WindowRing, mix_seed
from .wire import hash_resolution, pack_rings, unpack_rings

__all__ = ["WindowStore", "WindowEvent"]


class WindowEvent(Tuple):
    """``(resolution, index, start, end, sketch)`` — one closed bucket."""

    __slots__ = ()

    def __new__(cls, resolution: float, closed: ClosedBucket):
        return tuple.__new__(
            cls, (resolution, closed.index, closed.start, closed.end, closed.sketch)
        )

    @property
    def resolution(self) -> float:
        return self[0]

    @property
    def index(self) -> int:
        return self[1]

    @property
    def start(self) -> float:
        return self[2]

    @property
    def end(self) -> float:
        return self[3]

    @property
    def sketch(self) -> FastReqSketch:
        return self[4]


class WindowStore:
    """All windowed rings for one service instance.

    Args:
        resolutions: Bucket widths in seconds, e.g. ``(60.0, 3600.0)``.
        retention: Live bucket slots per ring.
        lateness: Out-of-order tolerance in seconds.
        k, hra: Per-bucket sketch parameters (match the plain store so
            plain and windowed answers share one accuracy story).
        seed_fn: ``key -> Optional[int]`` per-key base seed (normally
            ``SketchStore.derive_seed``); ``None`` = unseeded rings.
    """

    def __init__(
        self,
        *,
        resolutions: Sequence[float] = (60.0,),
        retention: int = 64,
        lateness: float = 0.0,
        k: int = 32,
        hra: bool = False,
        seed_fn: Optional[Callable[[str], Optional[int]]] = None,
    ) -> None:
        cleaned = sorted({float(r) for r in resolutions})
        if not cleaned:
            raise ServiceError("window store needs at least one resolution")
        if cleaned[0] <= 0:
            raise ServiceError(f"window resolutions must be > 0, got {cleaned[0]}")
        self.resolutions: Tuple[float, ...] = tuple(cleaned)
        self.retention = int(retention)
        self.lateness = float(lateness)
        self.k = k
        self.hra = hra
        self._seed_fn = seed_fn
        self._rings: Dict[str, Dict[float, WindowRing]] = {}

    # ------------------------------------------------------------------
    # Key / ring access
    # ------------------------------------------------------------------

    def _base_seed(self, key: str) -> Optional[int]:
        return None if self._seed_fn is None else self._seed_fn(key)

    def _new_rings(self, key: str) -> Dict[float, WindowRing]:
        base = self._base_seed(key)
        rings = {}
        for resolution in self.resolutions:
            seed = None if base is None else mix_seed(base, hash_resolution(resolution))
            rings[resolution] = WindowRing(
                resolution,
                retention=self.retention,
                lateness=self.lateness,
                k=self.k,
                hra=self.hra,
                seed=seed,
            )
        return rings

    def get(self, key: str, *, create: bool = False) -> Dict[float, WindowRing]:
        rings = self._rings.get(key)
        if rings is None:
            if not create:
                raise KeyError(key)
            rings = self._new_rings(key)
            self._rings[key] = rings
        return rings

    def ring(self, key: str, resolution: float = 0.0) -> WindowRing:
        """The key's ring at ``resolution`` (0.0 = finest configured)."""
        rings = self.get(key)
        if resolution == 0.0:
            return rings[self.resolutions[0]]
        ring = rings.get(float(resolution))
        if ring is None:
            raise ServiceError(
                f"no {resolution}s resolution for key {key!r} "
                f"(configured: {list(self.resolutions)})"
            )
        return ring

    def resolve(self, resolution: float) -> float:
        """Map the 0.0 sentinel / a configured width to a concrete one."""
        if resolution == 0.0:
            return self.resolutions[0]
        if float(resolution) not in self._resolution_set():
            raise ServiceError(
                f"unknown window resolution {resolution} "
                f"(configured: {list(self.resolutions)})"
            )
        return float(resolution)

    def _resolution_set(self):
        return set(self.resolutions)

    def keys(self) -> List[str]:
        return sorted(self._rings)

    def __contains__(self, key: str) -> bool:
        return key in self._rings

    # ------------------------------------------------------------------
    # Ingest / query
    # ------------------------------------------------------------------

    @staticmethod
    def validate(timestamps: np.ndarray, values: np.ndarray) -> None:
        """Reject malformed batches *before* any WAL append."""
        if timestamps.size != values.size:
            raise ServiceError(
                f"windowed batch length mismatch: {timestamps.size} timestamps "
                f"vs {values.size} values"
            )
        if values.size == 0:
            raise ServiceError("windowed ingest batch is empty")
        if not np.isfinite(timestamps).all():
            raise ServiceError("windowed timestamps must be finite")
        if np.isnan(values).any():
            raise ServiceError("windowed batch contains NaN")

    def ingest(
        self, key: str, timestamps, values
    ) -> Tuple[int, List[WindowEvent]]:
        """Feed one batch to every resolution ring for ``key``.

        Returns ``(accepted_total, events)``: the finest ring's lifetime
        accepted counter (the windowed ingest ack — monotone per key, so
        exactly-once duplicate acks are consistent) and the buckets this
        batch closed across all resolutions.
        """
        ts = np.ascontiguousarray(timestamps, dtype=np.float64).reshape(-1)
        vals = np.ascontiguousarray(values, dtype=np.float64).reshape(-1)
        self.validate(ts, vals)
        rings = self.get(key, create=True)
        events: List[WindowEvent] = []
        for resolution in self.resolutions:
            _, closed = rings[resolution].ingest(ts, vals)
            events.extend(WindowEvent(resolution, c) for c in closed)
        return self.accepted(key), events

    def accepted(self, key: str) -> int:
        """Lifetime accepted count on the finest ring (duplicate acks)."""
        rings = self._rings.get(key)
        if rings is None:
            return 0
        return rings[self.resolutions[0]].accepted

    def horizon(
        self, key: str, start: float, end: float, resolution: float = 0.0
    ) -> FastReqSketch:
        """Merged sketch for ``[start, end)`` at one resolution."""
        return self.ring(key, resolution).horizon(start, end)

    # ------------------------------------------------------------------
    # Durability hooks
    # ------------------------------------------------------------------

    def payload(self, key: str) -> bytes:
        """FRW1 bundle covering every resolution of ``key``."""
        return pack_rings(self.get(key))

    def restore(self, key: str, payload: bytes) -> None:
        """Install a key's rings from an FRW1 bundle (snapshot load).

        Resolutions present in the payload are restored verbatim;
        resolutions added to the config since the snapshot start empty.
        """
        restored = unpack_rings(payload, k=self.k, seed=self._base_seed(key))
        rings = self._new_rings(key)
        for resolution, ring in restored.items():
            rings[resolution] = ring
        self._rings[key] = rings

    def reseed_epoch(self, key: str, epoch: int) -> None:
        """Epoch-reseed every ring of ``key`` (snapshot save/load sides)."""
        rings = self._rings.get(key)
        if rings is None:
            return
        for ring in rings.values():
            ring.reseed_epoch(epoch)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        buckets = 0
        expired = 0
        late = 0
        retained = 0
        for rings in self._rings.values():
            for ring in rings.values():
                buckets += ring.bucket_count
                expired += ring.expired_buckets
                late += ring.late_dropped
                retained += ring.num_retained
        return {
            "keys": len(self._rings),
            "buckets": buckets,
            "expired_buckets": expired,
            "late_dropped": late,
            "retained_items": retained,
            "resolutions": list(self.resolutions),
        }

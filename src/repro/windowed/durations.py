"""Human-friendly durations for the windowed plane (``"5m"`` -> 300.0).

The CLI (``serve --window-resolutions 1m,5m``, ``query --last 1h``) and
clients accept durations either as plain seconds (int/float) or as short
strings with a unit suffix.  Kept dependency-free and tiny on purpose —
this is a parsing helper, not a datetime library: windowed timestamps
are plain epoch-seconds floats supplied by the caller.
"""

from __future__ import annotations

import re

from repro.errors import InvalidParameterError

__all__ = ["parse_duration", "format_duration"]

#: Unit suffix -> seconds.  Longest-match first ("ms" before "m" / "s").
_UNITS = {
    "ms": 0.001,
    "s": 1.0,
    "m": 60.0,
    "h": 3600.0,
    "d": 86400.0,
}

_TOKEN = re.compile(r"(\d+(?:\.\d+)?)(ms|s|m|h|d)?", re.ASCII)


def parse_duration(value) -> float:
    """``"5m"`` / ``"1h30m"`` / ``90`` / ``"90"`` -> seconds as float.

    Accepts ints/floats (already seconds) and strings of one or more
    ``<number><unit>`` tokens (units: ``ms``, ``s``, ``m``, ``h``, ``d``;
    a bare number means seconds).  Raises
    :class:`~repro.errors.InvalidParameterError` on anything else or on
    a non-positive total.
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        seconds = float(value)
    else:
        text = str(value).strip().lower()
        if not text:
            raise InvalidParameterError("empty duration")
        seconds = 0.0
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                raise InvalidParameterError(
                    f"cannot parse duration {value!r} "
                    f"(expected e.g. '30s', '5m', '1h30m', or plain seconds)"
                )
            number, unit = match.groups()
            seconds += float(number) * _UNITS[unit or "s"]
            position = match.end()
    if not seconds > 0:
        raise InvalidParameterError(f"duration must be > 0 seconds, got {value!r}")
    return seconds


def format_duration(seconds: float) -> str:
    """A compact human rendering (``300.0`` -> ``"5m"``), for logs/CLI."""
    for unit, scale in (("d", 86400.0), ("h", 3600.0), ("m", 60.0)):
        if seconds >= scale and seconds % scale == 0:
            return f"{int(seconds // scale)}{unit}"
    if seconds >= 1 and float(seconds).is_integer():
        return f"{int(seconds)}s"
    return f"{seconds:g}s"

"""Trial runner: (sketch factory x stream x queries) -> error profiles.

The runner is deliberately tiny: experiments compose
:class:`SketchSpec` factories with streams from :mod:`repro.streams` and get
back :class:`~repro.evaluation.metrics.ErrorProfile` objects, which the
table layer renders.  Seeds are threaded explicitly everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.baselines.base import QuantileSketch
from repro.evaluation.metrics import ErrorProfile, QueryError, RankOracle
from repro.errors import InvalidParameterError

__all__ = [
    "DEFAULT_FRACTIONS",
    "SketchSpec",
    "aggregate_max_relative",
    "evaluate_sketch",
    "failure_rate",
    "run_trial",
    "run_trials",
]

#: Query fractions spanning both tails and the body; used when an
#: experiment does not specify its own.
DEFAULT_FRACTIONS = (
    0.0001,
    0.001,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    0.75,
    0.9,
    0.95,
    0.99,
    0.999,
    0.9999,
)


@dataclass(frozen=True)
class SketchSpec:
    """A named sketch factory.

    Args:
        name: Label used in result tables.
        factory: ``(seed) -> sketch``; must return a fresh sketch each call.
        side: Which relative error the sketch's guarantee covers: ``"low"``
            (LRA — plain relative error) or ``"high"`` (HRA — error
            relative to the complementary rank).
    """

    name: str
    factory: Callable[[Optional[int]], QuantileSketch]
    side: str = "low"

    def build(self, seed: Optional[int] = None) -> QuantileSketch:
        sketch = self.factory(seed)
        if not isinstance(sketch, QuantileSketch) and not hasattr(sketch, "rank"):
            raise InvalidParameterError(f"factory for {self.name!r} returned {type(sketch)}")
        return sketch


def evaluate_sketch(
    sketch: Any,
    oracle: RankOracle,
    query_items: Sequence[Any],
    *,
    name: Optional[str] = None,
    side: str = "low",
) -> ErrorProfile:
    """Measure a built sketch against ground truth at the given queries."""
    profile = ErrorProfile(
        sketch_name=name or getattr(sketch, "name", type(sketch).__name__),
        n=oracle.n,
        num_retained=getattr(sketch, "num_retained", 0),
        side=side,
    )
    for query in query_items:
        profile.queries.append(
            QueryError(
                query=query,
                true_rank=oracle.rank(query),
                estimate=float(sketch.rank(query)),
            )
        )
    return profile


def run_trial(
    spec: SketchSpec,
    stream: Sequence[Any],
    *,
    seed: Optional[int] = None,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    oracle: Optional[RankOracle] = None,
) -> ErrorProfile:
    """Build a sketch from ``spec``, feed it ``stream``, measure errors.

    Args:
        spec: The sketch to evaluate.
        stream: Items in arrival order.
        seed: Seed passed to the factory.
        fractions: Normalized ranks at which to query (query items are the
            exact order statistics at these fractions).
        oracle: Precomputed ground truth, to amortize sorting across specs.
    """
    if oracle is None:
        oracle = RankOracle(stream)
    sketch = spec.build(seed)
    sketch.update_many(stream)
    queries = oracle.query_points(fractions)
    return evaluate_sketch(sketch, oracle, queries, name=spec.name, side=spec.side)


def run_trials(
    spec: SketchSpec,
    stream_factory: Callable[[int], Sequence[Any]],
    seeds: Sequence[int],
    *,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> List[ErrorProfile]:
    """Repeat :func:`run_trial` over seeds (fresh stream + fresh sketch)."""
    profiles = []
    for seed in seeds:
        stream = stream_factory(seed)
        profiles.append(run_trial(spec, stream, seed=seed, fractions=fractions))
    return profiles


def aggregate_max_relative(profiles: Sequence[ErrorProfile]) -> float:
    """Largest relative error across trials (the union-bound quantity)."""
    return max((p.max_relative for p in profiles), default=0.0)


def failure_rate(profiles: Sequence[ErrorProfile], eps: float) -> Dict[str, float]:
    """Fraction of (trial, query) pairs violating the ``eps`` guarantee.

    Returns both the per-query failure rate (the Theorem 1 quantity: a
    *fixed* query failing) and the per-trial rate (any query failing — the
    Corollary 1 all-quantiles quantity).
    """
    total_queries = 0
    failed_queries = 0
    failed_trials = 0
    for profile in profiles:
        errors = (
            [q.tail_relative(profile.n) for q in profile.queries]
            if profile.side == "high"
            else [q.relative for q in profile.queries]
        )
        total_queries += len(errors)
        bad = sum(1 for e in errors if e > eps)
        failed_queries += bad
        if bad:
            failed_trials += 1
    return {
        "per_query": failed_queries / max(total_queries, 1),
        "per_trial": failed_trials / max(len(profiles), 1),
    }

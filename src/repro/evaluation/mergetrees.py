"""Merge-tree shapes for the Theorem 3 (full mergeability) experiments.

Theorem 3 promises the accuracy/space guarantee for a sketch "built from
n items by an *arbitrary* sequence of merge operations".  This module
builds sketches over the same stream through several tree shapes:

* ``streaming`` — no merges at all (the Theorem 14 baseline),
* ``balanced`` — tournament-style pairwise merging (the distributed
  aggregation pattern),
* ``left_deep`` — fold-left accumulation (a worst case for parameter
  drift: one long-lived sketch absorbs many small ones),
* ``random`` — random pairings, a proxy for "arbitrary".

All helpers mutate only sketches they created; input chunks are read-only.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Sequence

from repro.errors import InvalidParameterError

__all__ = ["split_stream", "build_via_tree", "TREE_SHAPES"]


def split_stream(stream: Sequence[Any], parts: int) -> List[List[Any]]:
    """Cut a stream into ``parts`` contiguous, near-equal chunks."""
    if parts < 1:
        raise InvalidParameterError(f"parts must be >= 1, got {parts}")
    if parts > max(1, len(stream)):
        parts = max(1, len(stream))
    base, extra = divmod(len(stream), parts)
    chunks: List[List[Any]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(list(stream[start : start + size]))
        start += size
    return chunks


def _sketch_chunks(
    factory: Callable[[int], Any], chunks: Sequence[Sequence[Any]], seed: int
) -> List[Any]:
    sketches = []
    for index, chunk in enumerate(chunks):
        sketch = factory(seed + index)
        sketch.update_many(chunk)
        sketches.append(sketch)
    return sketches


def _merge_balanced(sketches: List[Any]) -> Any:
    while len(sketches) > 1:
        paired: List[Any] = []
        for index in range(0, len(sketches) - 1, 2):
            left, right = sketches[index], sketches[index + 1]
            left.merge(right)
            paired.append(left)
        if len(sketches) % 2:
            paired.append(sketches[-1])
        sketches = paired
    return sketches[0]


def _merge_left_deep(sketches: List[Any]) -> Any:
    accumulator = sketches[0]
    for sketch in sketches[1:]:
        accumulator.merge(sketch)
    return accumulator


def _merge_random(sketches: List[Any], rng: random.Random) -> Any:
    pool = list(sketches)
    while len(pool) > 1:
        i = rng.randrange(len(pool))
        j = rng.randrange(len(pool) - 1)
        if j >= i:
            j += 1
        pool[i].merge(pool[j])
        pool.pop(j)  # the absorbed sketch leaves the pool; pool[i] stays
    return pool[0]


def build_via_tree(
    factory: Callable[[int], Any],
    stream: Sequence[Any],
    *,
    shape: str = "balanced",
    parts: int = 16,
    seed: int = 0,
) -> Any:
    """Summarize ``stream`` through a merge tree of the given shape.

    Args:
        factory: ``(seed) -> sketch``; one sketch is built per chunk.
        stream: The full input stream.
        shape: One of :data:`TREE_SHAPES` (``streaming`` skips merging).
        parts: Number of leaf sketches.
        seed: Base seed; leaf ``i`` gets ``seed + i``.

    Returns:
        The root sketch summarizing the whole stream.
    """
    if shape not in TREE_SHAPES:
        raise InvalidParameterError(f"shape must be one of {sorted(TREE_SHAPES)}, got {shape!r}")
    if shape == "streaming":
        sketch = factory(seed)
        sketch.update_many(stream)
        return sketch
    chunks = split_stream(stream, parts)
    sketches = _sketch_chunks(factory, chunks, seed)
    if shape == "balanced":
        return _merge_balanced(sketches)
    if shape == "left_deep":
        return _merge_left_deep(sketches)
    return _merge_random(sketches, random.Random(seed))


#: Supported merge-tree shapes.
TREE_SHAPES = ("streaming", "balanced", "left_deep", "random")

"""Error metrics: exact ranks and additive/relative rank error.

Terminology (matching the paper):

* additive error of an estimate at query ``y``: ``|est - R(y)| / n``
  (normalized to the stream length, so "0.01" means the classical
  ``eps*n`` guarantee with ``eps = 0.01``);
* relative (multiplicative) error: ``|est - R(y)| / R(y)``;
* in HRA mode the relevant denominator is the *complementary* rank
  ``n - R(y) + 1``, because reversing the comparator turns accuracy at
  small ranks into accuracy at large ones (Section 1).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, List, Sequence

from repro.errors import EmptySketchError, InvalidParameterError

__all__ = ["RankOracle", "QueryError", "ErrorProfile", "relative_error", "tail_relative_error"]


def relative_error(estimate: float, true_rank: int) -> float:
    """``|estimate - R| / max(R, 1)`` — the paper's multiplicative error."""
    return abs(estimate - true_rank) / max(true_rank, 1)


def tail_relative_error(estimate: float, true_rank: int, n: int) -> float:
    """Relative error measured from the top: denominator ``n - R + 1``.

    This is the quantity an HRA sketch bounds: the number of items *above*
    the query (plus one to avoid dividing by zero at the maximum).
    """
    return abs(estimate - true_rank) / max(n - true_rank + 1, 1)


class RankOracle:
    """Ground-truth ranks from the fully-sorted stream.

    Args:
        items: The whole stream; sorted once at construction.
    """

    def __init__(self, items: Sequence[Any]) -> None:
        if len(items) == 0:
            raise EmptySketchError("RankOracle needs a non-empty stream")
        self._sorted = sorted(items)

    @property
    def n(self) -> int:
        return len(self._sorted)

    def rank(self, item: Any, *, inclusive: bool = True) -> int:
        """Exact rank of ``item``."""
        if inclusive:
            return bisect.bisect_right(self._sorted, item)
        return bisect.bisect_left(self._sorted, item)

    def quantile(self, q: float) -> Any:
        """Exact order statistic at fraction ``q``."""
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"fraction must be in [0, 1], got {q}")
        index = min(len(self._sorted) - 1, max(0, int(q * len(self._sorted))))
        return self._sorted[index]

    def query_points(self, fractions: Sequence[float]) -> List[Any]:
        """The exact order statistics at the given fractions (query items)."""
        return [self.quantile(q) for q in fractions]

    def rank_universe(self, count: int) -> List[Any]:
        """``count`` evenly spaced retained values for all-quantiles sweeps."""
        if count < 1:
            raise InvalidParameterError(f"count must be >= 1, got {count}")
        step = max(1, len(self._sorted) // count)
        return self._sorted[::step]


@dataclass
class QueryError:
    """Error of one rank query."""

    query: Any
    true_rank: int
    estimate: float

    @property
    def additive(self) -> float:
        return abs(self.estimate - self.true_rank)

    def normalized_additive(self, n: int) -> float:
        return self.additive / max(n, 1)

    @property
    def relative(self) -> float:
        return relative_error(self.estimate, self.true_rank)

    def tail_relative(self, n: int) -> float:
        return tail_relative_error(self.estimate, self.true_rank, n)


@dataclass
class ErrorProfile:
    """Aggregated errors of one sketch over a set of rank queries.

    Attributes:
        sketch_name: Label for tables.
        n: Stream length.
        num_retained: The sketch's space cost, in stored items.
        queries: Per-query errors.
        side: ``"low"`` to report plain relative error (LRA guarantee) or
            ``"high"`` to report tail-relative error (HRA guarantee).
    """

    sketch_name: str
    n: int
    num_retained: int
    queries: List[QueryError] = field(default_factory=list)
    side: str = "low"

    def _relative_errors(self) -> List[float]:
        if self.side == "high":
            return [q.tail_relative(self.n) for q in self.queries]
        return [q.relative for q in self.queries]

    @property
    def max_relative(self) -> float:
        return max(self._relative_errors(), default=0.0)

    @property
    def mean_relative(self) -> float:
        errors = self._relative_errors()
        return sum(errors) / len(errors) if errors else 0.0

    @property
    def max_additive(self) -> float:
        return max((q.normalized_additive(self.n) for q in self.queries), default=0.0)

    @property
    def mean_additive(self) -> float:
        errors = [q.normalized_additive(self.n) for q in self.queries]
        return sum(errors) / len(errors) if errors else 0.0

    def relative_at(self, index: int) -> float:
        return self._relative_errors()[index]

    def quantile_of_errors(self, fraction: float) -> float:
        """Order statistic of the per-query relative errors (e.g. p95)."""
        errors = sorted(self._relative_errors())
        if not errors:
            return 0.0
        index = min(len(errors) - 1, max(0, int(fraction * len(errors))))
        return errors[index]

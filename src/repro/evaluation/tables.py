"""Plain-text result tables.

Every experiment renders its output through :class:`Table`, which prints
aligned fixed-width text (for terminals and the bench logs), GitHub-flavored
markdown (for EXPERIMENTS.md) and CSV (for downstream plotting).
"""

from __future__ import annotations

import io
from typing import Any, List, Optional, Sequence

from repro.errors import InvalidParameterError

__all__ = ["Table", "format_cell"]


def format_cell(value: Any) -> str:
    """Render one cell: floats get engineering-friendly precision."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.0001:
            return f"{value:.3e}"
        if magnitude >= 1:
            return f"{value:.4g}"
        return f"{value:.5f}"
    return str(value)


class Table:
    """A rectangular result table with a title and named columns.

    Args:
        title: Table caption (experiment name).
        columns: Column headers.
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise InvalidParameterError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        """Append a row; must match the column count."""
        if len(values) != len(self.columns):
            raise InvalidParameterError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([format_cell(v) for v in values])

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def _widths(self) -> List[int]:
        widths = [len(header) for header in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        return widths

    def render(self) -> str:
        """Fixed-width text rendering."""
        widths = self._widths()
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        header = "  ".join(name.ljust(width) for name, width in zip(self.columns, widths))
        out.write(header.rstrip() + "\n")
        out.write("  ".join("-" * width for width in widths) + "\n")
        for row in self.rows:
            line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            out.write(line.rstrip() + "\n")
        return out.getvalue()

    def to_markdown(self) -> str:
        """GitHub-flavored markdown rendering."""
        out = io.StringIO()
        out.write("| " + " | ".join(self.columns) + " |\n")
        out.write("|" + "|".join(["---"] * len(self.columns)) + "|\n")
        for row in self.rows:
            out.write("| " + " | ".join(row) + " |\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """CSV rendering (no quoting needed: cells never contain commas)."""
        out = io.StringIO()
        out.write(",".join(self.columns) + "\n")
        for row in self.rows:
            out.write(",".join(row) + "\n")
        return out.getvalue()

    def column(self, name: str) -> List[str]:
        """All cells of a named column (for assertions in tests)."""
        try:
            index = self.columns.index(name)
        except ValueError as exc:
            raise InvalidParameterError(f"no column named {name!r}") from exc
        return [row[index] for row in self.rows]

    def column_floats(self, name: str) -> List[float]:
        """A named column parsed as floats."""
        return [float(cell) for cell in self.column(name)]

    def print(self, file: Optional[Any] = None) -> None:
        """Print the fixed-width rendering (convenience for experiments)."""
        print(self.render(), file=file)

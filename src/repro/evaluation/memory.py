"""Space accounting.

The paper measures space in *stored universe items* (its footnote 4: the
auxiliary counters are proportional, so memory words = O(items)).  Every
sketch in this library exposes ``num_retained``; this module adds the
memory-words estimate including per-structure overhead so the space
experiments can report both columns.
"""

from __future__ import annotations

from typing import Any

from repro.errors import InvalidParameterError

__all__ = ["retained_items", "memory_words"]


def retained_items(sketch: Any) -> int:
    """The paper's space measure: stored universe items/entries."""
    retained = getattr(sketch, "num_retained", None)
    if retained is None:
        raise InvalidParameterError(f"{type(sketch).__name__} exposes no num_retained")
    return int(retained)


def memory_words(sketch: Any) -> int:
    """Estimated memory words: items plus per-level/bucket bookkeeping.

    A "word" stores one item or one integer (the paper's footnote 4
    convention).  Overheads counted:

    * compactor/level sketches: ~4 words per level (state, counts, capacity),
    * GK: 2 extra words per tuple (g, delta),
    * t-digest: 1 extra word per centroid (weight),
    * DDSketch: 1 extra word per bucket (count),
    * plus a constant ~8 words of top-level bookkeeping for everything.
    """
    items = retained_items(sketch)
    overhead = 8
    levels = getattr(sketch, "num_levels", None)
    if levels is not None:
        overhead += 4 * int(levels)
    name = getattr(sketch, "name", "")
    if name == "gk":
        overhead += 2 * items
    elif name == "tdigest":
        overhead += items
    elif name == "ddsketch":
        overhead += items
    summaries = getattr(sketch, "num_summaries", None)
    if summaries is not None:
        overhead += 4 * int(summaries)
    return items + overhead

"""Evaluation harness: metrics, trial runner, tables, merge trees, memory."""

from repro.evaluation.memory import memory_words, retained_items
from repro.evaluation.mergetrees import TREE_SHAPES, build_via_tree, split_stream
from repro.evaluation.metrics import (
    ErrorProfile,
    QueryError,
    RankOracle,
    relative_error,
    tail_relative_error,
)
from repro.evaluation.runner import (
    DEFAULT_FRACTIONS,
    SketchSpec,
    aggregate_max_relative,
    evaluate_sketch,
    failure_rate,
    run_trial,
    run_trials,
)
from repro.evaluation.tables import Table, format_cell

__all__ = [
    "DEFAULT_FRACTIONS",
    "ErrorProfile",
    "QueryError",
    "RankOracle",
    "SketchSpec",
    "TREE_SHAPES",
    "Table",
    "aggregate_max_relative",
    "build_via_tree",
    "evaluate_sketch",
    "failure_rate",
    "format_cell",
    "memory_words",
    "relative_error",
    "retained_items",
    "run_trial",
    "run_trials",
    "split_stream",
    "tail_relative_error",
]

"""Time-evolving streams: drift and regime switches.

Windowed monitoring (``repro.monitor``) is only interesting when the
distribution moves.  These generators produce streams whose parameters
change over time in controlled, seeded ways, so trend/alert logic can be
tested against known ground truth.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from repro.errors import InvalidParameterError

__all__ = ["drifting_lognormal", "regime_switching", "diurnal_cycle"]


def drifting_lognormal(
    n: int,
    seed: int = 0,
    *,
    start_median: float = 0.1,
    end_median: float = 0.4,
    sigma: float = 0.5,
) -> List[float]:
    """A lognormal stream whose median glides linearly over the stream.

    Models a service slowly degrading (or a cache warming up, reversed).
    """
    if n < 0:
        raise InvalidParameterError(f"stream length must be >= 0, got {n}")
    if start_median <= 0 or end_median <= 0:
        raise InvalidParameterError("medians must be positive")
    rng = random.Random(seed)
    values = []
    for index in range(n):
        frac = index / max(1, n - 1)
        median = start_median + frac * (end_median - start_median)
        values.append(rng.lognormvariate(math.log(median), sigma))
    return values


def regime_switching(
    n: int,
    seed: int = 0,
    *,
    medians: Sequence[float] = (0.1, 1.0, 0.1),
    sigma: float = 0.4,
) -> List[float]:
    """Piecewise-stationary stream: equal-length regimes at given medians.

    The classic incident shape: calm, outage, recovery.
    """
    if n < 0:
        raise InvalidParameterError(f"stream length must be >= 0, got {n}")
    if not medians or any(m <= 0 for m in medians):
        raise InvalidParameterError("medians must be a non-empty sequence of positives")
    rng = random.Random(seed)
    per_regime = max(1, n // len(medians))
    values = []
    for index in range(n):
        regime = min(len(medians) - 1, index // per_regime)
        values.append(rng.lognormvariate(math.log(medians[regime]), sigma))
    return values


def diurnal_cycle(
    n: int,
    seed: int = 0,
    *,
    cycles: int = 4,
    base_median: float = 0.15,
    swing: float = 0.5,
    sigma: float = 0.4,
) -> List[float]:
    """Sinusoidally modulated latencies: load-correlated daily cycles.

    ``swing`` is the peak-to-base multiplicative amplitude (0.5 = the
    median rises 50% at peak load).
    """
    if n < 0:
        raise InvalidParameterError(f"stream length must be >= 0, got {n}")
    if cycles < 1:
        raise InvalidParameterError(f"cycles must be >= 1, got {cycles}")
    if base_median <= 0 or swing < 0:
        raise InvalidParameterError("base_median must be positive and swing >= 0")
    rng = random.Random(seed)
    values = []
    for index in range(n):
        phase = 2.0 * math.pi * cycles * index / max(1, n)
        median = base_median * (1.0 + swing * (0.5 + 0.5 * math.sin(phase)))
        values.append(rng.lognormvariate(math.log(median), sigma))
    return values

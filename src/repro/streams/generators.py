"""Seeded synthetic stream generators.

Every generator returns a plain ``list`` of items and takes an explicit
``seed``; the experiment harness never uses global randomness, so every
number in EXPERIMENTS.md is reproducible bit-for-bit.

The registry :data:`DISTRIBUTIONS` maps names to ``(n, seed) -> list``
factories for use in parameter sweeps.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.errors import InvalidParameterError

__all__ = [
    "uniform",
    "gaussian",
    "exponential",
    "lognormal",
    "pareto",
    "zipf_integers",
    "duplicated_integers",
    "constant",
    "two_point",
    "sequential",
    "DISTRIBUTIONS",
]


def _check_n(n: int) -> None:
    if n < 0:
        raise InvalidParameterError(f"stream length must be >= 0, got {n}")


def uniform(n: int, seed: int = 0, *, low: float = 0.0, high: float = 1.0) -> List[float]:
    """IID uniform reals on ``[low, high)``."""
    _check_n(n)
    rng = random.Random(seed)
    span = high - low
    return [low + span * rng.random() for _ in range(n)]


def gaussian(n: int, seed: int = 0, *, mu: float = 0.0, sigma: float = 1.0) -> List[float]:
    """IID normal reals."""
    _check_n(n)
    rng = random.Random(seed)
    return [rng.gauss(mu, sigma) for _ in range(n)]


def exponential(n: int, seed: int = 0, *, rate: float = 1.0) -> List[float]:
    """IID exponential reals (light right tail)."""
    _check_n(n)
    if rate <= 0:
        raise InvalidParameterError(f"rate must be positive, got {rate}")
    rng = random.Random(seed)
    return [rng.expovariate(rate) for _ in range(n)]


def lognormal(n: int, seed: int = 0, *, mu: float = 0.0, sigma: float = 1.0) -> List[float]:
    """IID lognormal reals (moderate right tail; classic latency shape)."""
    _check_n(n)
    rng = random.Random(seed)
    return [rng.lognormvariate(mu, sigma) for _ in range(n)]


def pareto(n: int, seed: int = 0, *, alpha: float = 1.5, scale: float = 1.0) -> List[float]:
    """IID Pareto reals (heavy right tail; the hard case for tail accuracy)."""
    _check_n(n)
    if alpha <= 0:
        raise InvalidParameterError(f"alpha must be positive, got {alpha}")
    rng = random.Random(seed)
    return [scale * rng.paretovariate(alpha) for _ in range(n)]


def zipf_integers(n: int, seed: int = 0, *, exponent: float = 1.2, universe: int = 10_000) -> List[int]:
    """Integers drawn Zipf-style: value ``v`` with probability ~ ``v^-exponent``.

    Produces the many-duplicates regime that stresses tie handling in
    comparison-based sketches.
    """
    _check_n(n)
    if exponent <= 0:
        raise InvalidParameterError(f"exponent must be positive, got {exponent}")
    if universe < 1:
        raise InvalidParameterError(f"universe must be >= 1, got {universe}")
    rng = random.Random(seed)
    weights = [1.0 / (v**exponent) for v in range(1, universe + 1)]
    return rng.choices(range(1, universe + 1), weights=weights, k=n)


def duplicated_integers(n: int, seed: int = 0, *, universe: int = 100) -> List[int]:
    """Uniform integers from a tiny universe — extreme duplication."""
    _check_n(n)
    if universe < 1:
        raise InvalidParameterError(f"universe must be >= 1, got {universe}")
    rng = random.Random(seed)
    return [rng.randrange(universe) for _ in range(n)]


def constant(n: int, seed: int = 0, *, value: float = 1.0) -> List[float]:
    """A stream of one repeated value (degenerate edge case)."""
    _check_n(n)
    return [value] * n


def two_point(n: int, seed: int = 0, *, low: float = 0.0, high: float = 1.0, p_high: float = 0.01) -> List[float]:
    """Two-valued stream with rare highs — a minimal 'tail' distribution."""
    _check_n(n)
    if not 0.0 <= p_high <= 1.0:
        raise InvalidParameterError(f"p_high must be in [0, 1], got {p_high}")
    rng = random.Random(seed)
    return [high if rng.random() < p_high else low for _ in range(n)]


def sequential(n: int, seed: int = 0) -> List[int]:
    """The stream ``0, 1, ..., n-1`` — all-distinct, already sorted."""
    _check_n(n)
    return list(range(n))


#: Name -> factory registry used by parameter sweeps.  All factories share
#: the ``(n, seed) -> list`` signature with defaults for shape parameters.
DISTRIBUTIONS: Dict[str, Callable[[int, int], List]] = {
    "uniform": uniform,
    "gaussian": gaussian,
    "exponential": exponential,
    "lognormal": lognormal,
    "pareto": pareto,
    "zipf": zipf_integers,
    "duplicates": duplicated_integers,
    "sequential": sequential,
}

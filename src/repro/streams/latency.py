"""The paper's motivating workload: long-tailed web response times.

Section 1 motivates relative error with network latency monitoring, citing
Masson et al. [15]: for web response times "the 98.5th percentile can be as
small as 2 seconds while the 99.5th percentile can be as large as 20
seconds".  Production traces are not available offline, so this module
synthesizes a mixture calibrated to those two anchor points (see DESIGN.md
§1.4, substitution 3):

* ~98% of requests are "fast": lognormal around ~150 ms,
* ~2% are "slow": lognormal seconds-to-tens-of-seconds,

which puts the p98.5/p99.5 ratio close to the reported 2 s / 20 s and makes
all the interesting structure live in the top 1-2% of ranks — exactly the
regime where additive-error sketches lose and the multiplicative guarantee
matters.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.errors import InvalidParameterError

__all__ = ["latency_stream", "latency_bursty_stream", "SLOW_FRACTION"]

#: Fraction of requests drawn from the slow mixture component.
SLOW_FRACTION = 0.02

#: Fast component: lognormal with median ~150 ms.
_FAST_MU = math.log(0.15)
_FAST_SIGMA = 0.55

#: Slow component: lognormal with median ~6 s and a wide spread.  With the
#: 2% slow fraction, the mixture's 98.5th percentile sits near the slow
#: component's 25th percentile (~6 * exp(-0.674 * 1.6) ~ 2 s) and its 99.5th
#: percentile near the slow 75th percentile (~6 * exp(0.674 * 1.6) ~ 18 s),
#: matching the anchors the paper quotes from Masson et al. [15].
_SLOW_MU = math.log(6.0)
_SLOW_SIGMA = 1.6


def latency_stream(n: int, seed: int = 0) -> List[float]:
    """IID synthetic response times in seconds.

    Calibrated so that (for large ``n``) the 98.5th percentile is on the
    order of 1-3 s and the 99.5th percentile on the order of 10-30 s,
    mirroring the figures the paper quotes from [15].
    """
    if n < 0:
        raise InvalidParameterError(f"stream length must be >= 0, got {n}")
    rng = random.Random(seed)
    stream: List[float] = []
    for _ in range(n):
        if rng.random() < SLOW_FRACTION:
            stream.append(rng.lognormvariate(_SLOW_MU, _SLOW_SIGMA))
        else:
            stream.append(rng.lognormvariate(_FAST_MU, _FAST_SIGMA))
    return stream


def latency_bursty_stream(n: int, seed: int = 0, *, bursts: int = 5) -> List[float]:
    """Latencies with correlated slow *bursts* (outage-like episodes).

    Instead of IID slow requests, the slow mass arrives in ``bursts``
    contiguous episodes — the temporally clustered pattern real incidents
    produce, and a harder arrival order for order-sensitive summaries.
    """
    if n < 0:
        raise InvalidParameterError(f"stream length must be >= 0, got {n}")
    if bursts < 1:
        raise InvalidParameterError(f"bursts must be >= 1, got {bursts}")
    rng = random.Random(seed)
    slow_total = int(n * SLOW_FRACTION)
    per_burst = max(1, slow_total // bursts)
    burst_starts = sorted(rng.randrange(max(1, n - per_burst)) for _ in range(bursts))
    in_burst = [False] * n
    for start in burst_starts:
        for offset in range(per_burst):
            if start + offset < n:
                in_burst[start + offset] = True
    stream: List[float] = []
    for slow in in_burst:
        if slow:
            stream.append(rng.lognormvariate(_SLOW_MU, _SLOW_SIGMA))
        else:
            stream.append(rng.lognormvariate(_FAST_MU, _FAST_SIGMA))
    return stream

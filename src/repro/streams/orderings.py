"""Stream-order transforms.

A comparison-based sketch's *guarantee* is order-oblivious, but its
*realized* error is not: the coin flips interact with arrival order, and
heuristics without guarantees (t-digest) are famously order-sensitive.
Experiment E7 replays the same multiset under every transform below.

Each transform is a pure function ``list -> list`` (the input is never
mutated); :data:`ORDERINGS` registers them by name.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Sequence

from repro.errors import InvalidParameterError

__all__ = [
    "as_arrived",
    "ascending",
    "descending",
    "shuffled",
    "zoom_in",
    "zoom_out",
    "sawtooth",
    "block_shuffled",
    "ORDERINGS",
]


def as_arrived(items: Sequence[Any]) -> List[Any]:
    """Identity: the original arrival order."""
    return list(items)


def ascending(items: Sequence[Any]) -> List[Any]:
    """Sorted ascending — the classic adversarial order for naive summaries."""
    return sorted(items)


def descending(items: Sequence[Any]) -> List[Any]:
    """Sorted descending."""
    return sorted(items, reverse=True)


def shuffled(items: Sequence[Any], seed: int = 0) -> List[Any]:
    """Uniformly random permutation (seeded)."""
    result = list(items)
    random.Random(seed).shuffle(result)
    return result


def zoom_in(items: Sequence[Any]) -> List[Any]:
    """Alternate extremes converging inward: min, max, 2nd-min, 2nd-max, ...

    Every prefix spans the full value range, so early compactions mix
    extremes — a stress pattern used in the DataSketches test suites.
    """
    ordered = sorted(items)
    result: List[Any] = []
    low, high = 0, len(ordered) - 1
    while low <= high:
        result.append(ordered[low])
        low += 1
        if low <= high:
            result.append(ordered[high])
            high -= 1
    return result


def zoom_out(items: Sequence[Any]) -> List[Any]:
    """From the middle outward: medians first, extremes last.

    The extremes arrive when the sketch is already full — the mirror image
    of :func:`zoom_in`.
    """
    ordered = sorted(items)
    result: List[Any] = []
    low, high = 0, len(ordered) - 1
    while low <= high:
        result.append(ordered[low])
        low += 1
        if low <= high:
            result.append(ordered[high])
            high -= 1
    result.reverse()
    return result


def sawtooth(items: Sequence[Any], teeth: int = 16) -> List[Any]:
    """Repeated ascending ramps: sort, then interleave ``teeth`` strides.

    Models periodic workloads (daily load cycles) where the value range
    repeats many times over the stream.
    """
    if teeth < 1:
        raise InvalidParameterError(f"teeth must be >= 1, got {teeth}")
    ordered = sorted(items)
    result: List[Any] = []
    for start in range(teeth):
        result.extend(ordered[start::teeth])
    return result


def block_shuffled(items: Sequence[Any], block: int = 1000, seed: int = 0) -> List[Any]:
    """Sort, cut into blocks, shuffle the blocks (locally sorted arrivals).

    Models near-sorted inputs such as timestamped events with bounded
    reordering.
    """
    if block < 1:
        raise InvalidParameterError(f"block must be >= 1, got {block}")
    ordered = sorted(items)
    blocks = [ordered[i : i + block] for i in range(0, len(ordered), block)]
    random.Random(seed).shuffle(blocks)
    return [item for chunk in blocks for item in chunk]


#: Name -> transform registry.  Transforms taking extra parameters are
#: registered with their defaults bound.
ORDERINGS: Dict[str, Callable[[Sequence[Any]], List[Any]]] = {
    "as_arrived": as_arrived,
    "ascending": ascending,
    "descending": descending,
    "shuffled": shuffled,
    "zoom_in": zoom_in,
    "zoom_out": zoom_out,
    "sawtooth": sawtooth,
    "block_shuffled": block_shuffled,
}

"""Synthetic stream workloads: distributions, orderings, and the latency mix."""

from repro.streams.generators import (
    DISTRIBUTIONS,
    constant,
    duplicated_integers,
    exponential,
    gaussian,
    lognormal,
    pareto,
    sequential,
    two_point,
    uniform,
    zipf_integers,
)
from repro.streams.latency import SLOW_FRACTION, latency_bursty_stream, latency_stream
from repro.streams.timeseries import diurnal_cycle, drifting_lognormal, regime_switching
from repro.streams.orderings import (
    ORDERINGS,
    as_arrived,
    ascending,
    block_shuffled,
    descending,
    sawtooth,
    shuffled,
    zoom_in,
    zoom_out,
)

__all__ = [
    "DISTRIBUTIONS",
    "ORDERINGS",
    "SLOW_FRACTION",
    "as_arrived",
    "ascending",
    "block_shuffled",
    "constant",
    "descending",
    "diurnal_cycle",
    "drifting_lognormal",
    "duplicated_integers",
    "exponential",
    "gaussian",
    "regime_switching",
    "latency_bursty_stream",
    "latency_stream",
    "lognormal",
    "pareto",
    "sawtooth",
    "sequential",
    "shuffled",
    "two_point",
    "uniform",
    "zipf_integers",
    "zoom_in",
    "zoom_out",
]

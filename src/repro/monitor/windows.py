"""Tumbling-window quantile monitoring built on sketch merging.

The introduction's use case — tracking p50/p90/p99/p99.9 of response
times — is in practice a *windowed* problem: operators want per-minute
percentiles, an aggregate over the last hour, and alerts when the tail
moves.  Full mergeability (Theorem 3) is exactly what makes this cheap:
keep one small sketch per window and *merge* on demand for any horizon,
rather than re-scanning data.

:class:`TumblingWindowMonitor` implements the pattern with count-based
windows (deterministic and easily testable; a wall-clock deployment maps
timestamps to window indices the same way):

* ``record(value)`` feeds the current window's sketch, rolling over every
  ``window_size`` items;
* ``record_many(values)`` feeds a batch, split across window boundaries and
  ingested through the sketch's vectorized batch path;
* ``horizon(last=m)`` returns one merged sketch over the last ``m``
  windows — a pure k-way ``merge_many`` on the fast engine (one snapshot +
  one compression pass over all windows), the inputs are untouched;
* ``percentile_series(q)`` gives the per-window trend of a percentile;
* ``tail_shift(q)`` compares the newest closed window against the
  preceding baseline for alert-style regression detection.

Windows default to the numpy/C-accelerated :class:`~repro.fast.FastReqSketch`
(latencies are floats); pass ``sketch_factory`` to monitor generic ordered
items with the reference :class:`~repro.core.req.ReqSketch` instead.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Sequence

import numpy as np

from repro.errors import EmptySketchError, InvalidParameterError
from repro.fast import FastReqSketch
from repro.windowed import mix_seed

__all__ = ["WindowSnapshot", "TumblingWindowMonitor"]


@dataclass(frozen=True)
class WindowSnapshot:
    """Immutable record of one closed window.

    Attributes:
        index: 0-based window sequence number.
        sketch: The window's (frozen-by-convention) sketch.
    """

    index: int
    sketch: Any

    @property
    def n(self) -> int:
        return self.sketch.n

    def quantile(self, q: float):
        return self.sketch.quantile(q)


class TumblingWindowMonitor:
    """Per-window REQ sketches with merge-on-demand horizon queries.

    Args:
        window_size: Items per window (> 0).
        retention: Closed windows kept for horizon queries (older windows
            are dropped FIFO).
        sketch_factory: ``(seed) -> sketch``; defaults to
            ``FastReqSketch(k=32, hra=True)`` — the latency configuration on
            the accelerated engine.
        seed: Base seed; window ``i`` gets ``seed + i``.
    """

    def __init__(
        self,
        window_size: int,
        *,
        retention: int = 64,
        sketch_factory: Optional[Callable[[Optional[int]], Any]] = None,
        seed: Optional[int] = 0,
    ) -> None:
        if window_size < 1:
            raise InvalidParameterError(f"window_size must be >= 1, got {window_size}")
        if retention < 1:
            raise InvalidParameterError(f"retention must be >= 1, got {retention}")
        self.window_size = window_size
        self.retention = retention
        self._factory = sketch_factory or (
            lambda s: FastReqSketch(32, hra=True, seed=s)
        )
        self._seed = seed
        self._windows: Deque[WindowSnapshot] = deque(maxlen=retention)
        self._window_count = 0
        self._active = self._new_sketch()
        self._total = 0

    def _new_sketch(self) -> Any:
        seed = None if self._seed is None else self._seed + self._window_count
        return self._factory(seed)

    #: Salts of the scratch (merge-target) sketches.  Window ``i`` uses
    #: the *linear* seed ``seed + i``, so scratch seeds must come from a
    #: different namespace entirely: ``seed - 1`` / ``seed - 2`` collide
    #: with windows of a monitor based at ``seed - 1 - i``, and with each
    #: other across monitors one seed apart.  ``mix_seed`` (splitmix64
    #: finalization) scatters them out of the linear range.
    _HORIZON_SALT = 1
    _TAIL_SHIFT_SALT = 2

    def _scratch_seed(self, salt: int) -> Optional[int]:
        return None if self._seed is None else mix_seed(self._seed, salt)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def record(self, value) -> None:
        """Feed one measurement; the window closes as soon as it is full."""
        self._active.update(value)
        self._total += 1
        if self._active.n >= self.window_size:
            self._roll()

    def record_many(self, values: Sequence) -> None:
        """Feed a batch of measurements in order.

        The batch is split at window boundaries and each piece goes through
        the sketch's ``update_many`` (the vectorized path on the fast
        engine), rolling windows exactly as per-item :meth:`record` would.
        numpy arrays are chunked as views — no per-item boxing.
        """
        if not isinstance(values, np.ndarray):
            values = list(values)
        position = 0
        total = len(values)
        while position < total:
            room = self.window_size - self._active.n
            chunk = values[position : position + room]
            self._active.update_many(chunk)
            self._total += len(chunk)
            position += len(chunk)
            if self._active.n >= self.window_size:
                self._roll()

    def _roll(self) -> None:
        self._windows.append(WindowSnapshot(self._window_count, self._active))
        self._window_count += 1
        self._active = self._new_sketch()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def total_recorded(self) -> int:
        """All measurements ever recorded (including dropped windows)."""
        return self._total

    @property
    def num_closed_windows(self) -> int:
        """Closed windows currently retained."""
        return len(self._windows)

    @property
    def current_window_n(self) -> int:
        """Measurements in the open (not yet closed) window."""
        return self._active.n

    def closed_windows(self) -> List[WindowSnapshot]:
        """Retained closed windows, oldest first."""
        return list(self._windows)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @staticmethod
    def _merge_all(target: Any, sources: List[Any]) -> Any:
        """Union ``sources`` into ``target`` — k-way when the engine has it.

        The fast engine's ``merge_many`` snapshots every window once and
        compresses once; generic sketch factories without it fall back to
        the pairwise fold.  Either way the windows are left unchanged.
        """
        merge_many = getattr(target, "merge_many", None)
        if merge_many is not None:
            merge_many(sources)
        else:
            for sketch in sources:
                target.merge(sketch)
        return target

    def horizon(self, last: Optional[int] = None, *, include_open: bool = True) -> Any:
        """One merged sketch over the most recent windows (pure merge).

        Args:
            last: Number of closed windows to include (default: all
                retained).
            include_open: Also merge the currently filling window.

        Raises:
            EmptySketchError: If the selection holds no data.
        """
        selected = list(self._windows)
        if last is not None:
            if last < 0:
                raise InvalidParameterError(f"last must be >= 0, got {last}")
            selected = selected[-last:] if last else []
        sources = [snapshot.sketch for snapshot in selected]
        if include_open and self._active.n:
            sources.append(self._active)
        merged = self._factory(self._scratch_seed(self._HORIZON_SALT))
        self._merge_all(merged, sources)
        if merged.is_empty:
            raise EmptySketchError("horizon over empty windows")
        return merged

    def percentile_series(self, q: float) -> List:
        """The per-closed-window trend of percentile ``q``, oldest first."""
        return [snapshot.quantile(q) for snapshot in self._windows]

    def tail_shift(self, q: float = 0.99, *, baseline: int = 4) -> Optional[float]:
        """Ratio of the newest closed window's ``q``-quantile to the
        preceding ``baseline`` windows' merged ``q``-quantile.

        Returns ``None`` until enough windows closed, and ``None`` when
        both the baseline and the newest window sit at zero (flat, no
        signal).  A zero baseline with a nonzero newest quantile returns
        ``math.inf`` — the tail appeared out of nothing, which is the
        strongest regression alert, not an absence of one.  A ratio of
        2.0 means the tail doubled — the paper's motivating signal.
        """
        if len(self._windows) < baseline + 1:
            return None
        newest = self._windows[-1]
        reference = self._factory(self._scratch_seed(self._TAIL_SHIFT_SALT))
        self._merge_all(
            reference,
            [snapshot.sketch for snapshot in list(self._windows)[-(baseline + 1) : -1]],
        )
        base_value = reference.quantile(q)
        newest_value = newest.quantile(q)
        if base_value == 0:
            return math.inf if newest_value != 0 else None
        return newest_value / base_value

"""Operational monitoring built on sketch mergeability (Theorem 3)."""

from repro.monitor.windows import TumblingWindowMonitor, WindowSnapshot

__all__ = ["TumblingWindowMonitor", "WindowSnapshot"]

"""Background integrity scrub for the storage plane.

Checksums only help if somebody reads them: silent bit rot in a snapshot
that no query has touched stays silent until the day recovery needs the
file.  :class:`Scrubber` closes that window — it periodically re-reads
every retained snapshot (plain and windowed) against its ``FRS1`` CRC
footer and walks the WAL's record CRCs, so rot is found on the scrub
cadence instead of at the worst possible moment.

What a pass does per finding:

* **Corrupt snapshot, key resident** — the live sketch is authoritative;
  the rotten file is quarantined (moved to ``data_dir/quarantine/``) and
  immediately rewritten from memory at the key's applied sequence.
  Self-healing, no replica needed.
* **Corrupt snapshot, key spilled** — the file was the key's only local
  copy.  Quarantine + forget: the key now reads as unknown (``n == 0``),
  which is precisely the state cluster ``repair()`` heals *exactly* —
  FETCH the healthiest replica's FRQ1 payload and MERGE it into the
  empty key, restoring a byte-identical sketch (merging into nothing is
  a copy).  Standalone services keep the quarantined file for offline
  forensics; the key's data is what the bit rot destroyed.
* **Corrupt windowed snapshot** — quarantine the file and drop the
  key's windowed cover point, so the next checkpoint rewrites it from
  the in-memory rings (rings are always resident at runtime).
* **WAL damage** — detection only.  A torn *tail* is the expected shape
  of an in-flight append and is ignored; an unreadable record with data
  after its declared end is mid-file corruption, reported via counters
  (``wal_status="corrupt"``) and a rate-limited error — truncating there
  would destroy acknowledged records, so the heal is operator-driven
  (wipe + cluster re-fetch, or offline repair).

Counters are surfaced through ``STATS``/``HEALTH`` (``scrub`` block) and
``cluster-status``.  The server runs passes on ``--scrub-interval``;
:meth:`Scrubber.scrub_once` is synchronous and event-loop-owned (it
mutates service state), which is also what the tests call directly.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional

from repro.errors import SnapshotCorruptError
from repro.service.log import RateLimiter
from repro.service.log import logger as log
from repro.service.persistence import _RECORD_HEAD, WriteAheadLog
from repro.service.store import spill_filename

__all__ = ["Scrubber", "ScrubReport", "verify_wal_file"]


class ScrubReport(dict):
    """One pass's findings (a dict, so it JSON-serializes into STATS)."""

    @property
    def clean(self) -> bool:
        return not self["corrupt_snapshots"] and self["wal_status"] != "corrupt"


class Scrubber:
    """Owns scrub state for one :class:`~repro.service.QuantileService`."""

    def __init__(self, service) -> None:
        self.service = service
        self.passes = 0
        self.files_checked = 0
        self.corrupt_found = 0
        self.healed_resident = 0
        self.forgotten_keys = 0
        self.wal_status = "unchecked"
        self.last_pass_at: Optional[float] = None
        self.last_report: Optional[ScrubReport] = None
        self._wal_log = RateLimiter(30.0)

    def stats(self) -> Dict:
        """Lifetime counters for STATS/HEALTH reporting."""
        return {
            "passes": self.passes,
            "files_checked": self.files_checked,
            "corrupt_found": self.corrupt_found,
            "healed_resident": self.healed_resident,
            "forgotten_keys": self.forgotten_keys,
            "quarantined_files": self.service.quarantined_files,
            "wal_status": self.wal_status,
            "last_pass_at": self.last_pass_at,
        }

    # ------------------------------------------------------------------

    def scrub_once(self) -> ScrubReport:
        """One full integrity pass; returns the findings.

        Synchronous and mutating — call from the event loop (the server's
        scrub task does) or from a test with the service quiesced.
        """
        svc = self.service
        report = ScrubReport(
            snapshots_checked=0,
            corrupt_snapshots=0,
            healed_resident=0,
            forgotten_keys=[],
            wal_records=0,
            wal_status="skipped",
        )
        if svc.snapshots is not None:
            self._scrub_snapshots(svc.snapshots, report, windowed=False)
        if svc.window_snapshots is not None:
            self._scrub_snapshots(svc.window_snapshots, report, windowed=True)
        if svc.wal is not None:
            self._scrub_wal(report)
        self.passes += 1
        self.last_pass_at = time.time()
        self.last_report = report
        return report

    # ------------------------------------------------------------------

    def _scrub_snapshots(self, store, report: ScrubReport, *, windowed: bool) -> None:
        svc = self.service
        if not store.directory.exists():
            return
        # Filename -> key, so an unparsable file still maps back to the
        # key it held (snapshot names are key digests).
        known = list(svc.store.keys()) + (list(svc.windows.keys()) if windowed else [])
        by_name = {spill_filename(key): key for key in known}
        for path in sorted(store.directory.glob("*.frq1")):
            report["snapshots_checked"] += 1
            self.files_checked += 1
            try:
                store.verify(path)
                continue
            except SnapshotCorruptError as exc:
                corrupt = exc
            except OSError as exc:  # unreadable device block
                corrupt = SnapshotCorruptError(path, f"read failed: {exc}")
            report["corrupt_snapshots"] += 1
            self.corrupt_found += 1
            key = by_name.get(path.name)
            if windowed:
                svc._quarantine_corrupt_file(path, corrupt)
                if key is not None:
                    # Rings live in memory; dropping the cover point makes
                    # the next checkpoint rewrite the file from live state.
                    svc._window_snap_seq.pop(key, None)
                continue
            if key is not None and key in svc.store.resident_keys:
                # The live sketch is authoritative: quarantine the rot,
                # rewrite the snapshot from memory at the applied seq.
                svc._quarantine_corrupt_file(path, corrupt)
                try:
                    payload = svc.store.peek_payload(key)
                    store.save(key, svc._applied_seq.get(key, 0), payload)
                    svc._snap_seq[key] = svc._applied_seq.get(key, 0)
                    report["healed_resident"] += 1
                    self.healed_resident += 1
                except Exception as exc:  # degraded disk: heal next pass
                    log.warning("scrub could not rewrite snapshot for %r: %s", key, exc)
                continue
            if key is not None:
                # Spilled: the file was the only copy.  Quarantine +
                # forget → UNKNOWN_KEY → cluster repair re-fetches.
                svc.quarantine_snapshot(key, corrupt)
                report["forgotten_keys"].append(key)
                self.forgotten_keys += 1
            else:
                # An orphan file no known key maps to; just move it aside.
                svc._quarantine_corrupt_file(path, corrupt)

    def _scrub_wal(self, report: ScrubReport) -> None:
        """Walk the live WAL's CRCs from an independent read handle."""
        svc = self.service
        path = Path(svc.wal.path)
        if not path.exists():
            report["wal_status"] = self.wal_status = "clean"
            return
        size = path.stat().st_size
        valid = 0
        count = 0
        with open(path, "rb") as handle:
            for _record, end in WriteAheadLog._records(handle, strict=False):
                valid = end
                count += 1
        report["wal_records"] = count
        if valid == size:
            report["wal_status"] = self.wal_status = "clean"
            return
        # Unreadable suffix: a single record whose declared extent
        # reaches/overruns EOF is an in-flight (or crash-torn) append —
        # normal.  Data beyond the declared end is mid-file corruption.
        with open(path, "rb") as handle:
            handle.seek(valid)
            head = handle.read(_RECORD_HEAD.size)
        status = "torn_tail"
        if len(head) == _RECORD_HEAD.size:
            (length, _crc) = _RECORD_HEAD.unpack(head)
            if valid + _RECORD_HEAD.size + length < size:
                status = "corrupt"
        report["wal_status"] = self.wal_status = status
        if status == "corrupt":
            should_emit, suppressed = self._wal_log.ready("wal_corrupt")
            if should_emit:
                log.error(
                    "scrub found mid-file WAL corruption at byte %d of %s "
                    "(%d bytes follow the unreadable record)%s — acknowledged "
                    "records may be unreplayable; on a cluster, wipe this "
                    "node's data dir and let repair re-fetch; standalone, "
                    "repair offline (replay(strict=True) locates the damage)",
                    valid,
                    path,
                    size - valid,
                    f" [+{suppressed} suppressed]" if suppressed else "",
                )


def verify_wal_file(path) -> str:
    """Classify a WAL file: ``clean`` / ``torn_tail`` / ``corrupt``.

    The offline twin of the scrub's WAL walk, usable against a log no
    service has open (integrity audits in tests and tooling).
    """
    path = Path(path)
    if not path.exists():
        return "clean"
    size = path.stat().st_size
    valid = 0
    with open(path, "rb") as handle:
        for _record, end in WriteAheadLog._records(handle, strict=False):
            valid = end
    if valid == size:
        return "clean"
    with open(path, "rb") as handle:
        handle.seek(valid)
        head = handle.read(_RECORD_HEAD.size)
    if len(head) == _RECORD_HEAD.size:
        (length, _crc) = _RECORD_HEAD.unpack(head)
        if valid + _RECORD_HEAD.size + length < size:
            return "corrupt"
    return "torn_tail"

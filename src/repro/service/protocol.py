"""The length-prefixed binary protocol of the quantile service.

One TCP connection carries a sequence of frames in each direction; every
request frame gets exactly one response frame, in order.  A frame is::

    length   u32   byte length of the body (little-endian)
    body     ...   request or response payload

Request bodies start with a one-byte opcode; response bodies start with a
one-byte status (``0`` = OK, anything else an error code followed by a
UTF-8 message).  All integers are little-endian; all value arrays are raw
contiguous little-endian float64 — the same dtype the fast engine ingests,
so the server feeds ``update_many`` without a conversion pass and the
``FRQ1`` payloads of :mod:`repro.fast.wire` embed unchanged in ``MERGE``
frames and snapshot files.

Requests (``key`` is ``u16 length + UTF-8 bytes``)::

    INGEST        0x01  key, u32 count, count * f64 values
    QUERY         0x02  key, u32 count, count * f64 fractions
    CDF           0x03  key, u32 count, count * f64 split points
    MERGE         0x04  key, u32 length, FRQ1 payload
    STATS         0x05  key (empty = server-wide)
    SNAPSHOT      0x06  (no operands)
    PING          0x07  (no operands)
    MULTI_INGEST  0x08  u32 groups, groups * (key, u32 count, values)
    RANK          0x09  key, u32 count, count * f64 query points
    MULTI_QUERY   0x0A  u32 requests, requests * (key, u8 kind, u32 count,
                        count * f64 points); kind: 0 = quantiles,
                        1 = ranks (inclusive), 2 = cdf
    HELLO         0x0B  u32 flags, session id (key encoding)
    SEQ_INGEST    0x0C  u64 seq, then the INGEST operands
    SEQ_MULTI_INGEST 0x0D  u64 seq, then the MULTI_INGEST operands
    HEALTH        0x0E  (no operands)
    FETCH         0x0F  key — the key's FRQ1 payload (repair read path)
    WINDOW_INGEST 0x10  key, u32 count, count * f64 timestamps,
                        count * f64 values (both zero-copy views)
    WINDOW_QUERY  0x11  key, u8 kind, f64 resolution (0 = finest),
                        f64 start, f64 end, u32 count, count * f64 points
    SUBSCRIBE     0x12  key, f64 resolution (0 = finest), i64 resume_from
                        (first bucket index wanted), u32 count,
                        count * f64 fractions
    SEQ_WINDOW_INGEST 0x13  u64 seq, then the WINDOW_INGEST operands
    TOPOLOGY      0x14  u8 mode: 0 = fetch the installed cluster map,
                        1 = install (u32 length + JSON topology document)
    MIGRATE_PUSH  0x15  key, u32 length, MB1 migration bundle — durably
                        REPLACES the key's state at the receiver
    MIGRATE       0x16  u8 mode (0 = KEYS, 1 = BEGIN, 2 = DRAIN,
                        3 = COMMIT, 4 = ABORT); DRAIN carries a u8
                        freeze flag next; every mode but KEYS then
                        carries the key

Requests for a key a server no longer owns under its installed topology
answer ``STATUS_WRONG_TOPOLOGY`` whose body is two blobs — a UTF-8
message and the server's topology JSON — so one round trip refreshes a
stale client ring (see :func:`wrong_topology_body`).

Responses (after the status byte; every read response carries the key's
``u64 num_retained`` as a trailing footer for observability)::

    INGEST        u64 n                      key's total after the batch
    QUERY         u64 n, f64 eps, values, u64 retained
    CDF           u64 n, f64 eps, masses, u64 retained   count+1 masses
    RANK          u64 n, f64 eps, ranks (f64), u64 retained
    MERGE         u64 n
    STATS         u32 length, UTF-8 JSON
    SNAPSHOT      u32 keys written
    PING          u32 length, UTF-8 version
    MULTI_INGEST  u32 groups, groups * u64 n (per group, in request order)
    MULTI_QUERY   u32 requests, requests * record — each record leads with
                  its OWN u8 status (one missing key cannot fail the
                  batch): OK records are ``0, u64 n, f64 eps, u32 count,
                  values, u64 retained`` (a QUERY/CDF/RANK response body);
                  error records are ``status, u32 length, UTF-8 message``.
    FETCH         u64 n, u32 length, FRQ1 payload
    TOPOLOGY      u32 length, JSON cluster map (empty = none installed)
    MIGRATE_PUSH  u64 n                     key's total after the apply
    MIGRATE       KEYS: u32 count, count * key; BEGIN: u32 length, MB1
                  bundle; DRAIN: u8 frozen, u32 count, count * entry
                  (see :func:`pack_drain_entry`); COMMIT/ABORT: empty
    WINDOW_INGEST u64 accepted               key's lifetime accepted total
    WINDOW_QUERY  u64 n, f64 eps, values, u64 retained   (query body shape)
    SUBSCRIBE     f64 resolution (resolved), i64 next_index, u32 events,
                  events * (u32 length, bucket event) — the catch-up
                  replay, inline so it always precedes live pushes

``SUBSCRIBE`` flips the connection into a push stream: after the ack
(which carries the catch-up events for closed buckets >= ``resume_from``
inline), the server sends one unsolicited OK frame per newly closed
bucket — ``0, bucket event`` — and the connection stops being
request/response (clients dedicate a socket to it).  A bucket event is
``i64 index, f64 start, f64 end, u64 n, f64 eps, u32 count, count * f64
quantiles`` (the subscriber's fractions, evaluated server-side at bucket
close).  Delivery is at-least-once across reconnects but duplicates are
detectable by index: a resuming client re-subscribes with
``resume_from`` = last index + 1 and the server replays only the closed
buckets still retained.

``MULTI_QUERY`` is the vectorized read path.  A *uniform* frame — every
record naming the same key, kind, and point count (the dashboard shape:
many point sets against one metric) — is fixed-stride on the wire, so
both sides move it with numpy instead of per-request loops: the client
tiles one record template and writes all point rows with a single 2-D
slice assignment (:func:`build_query_frames`), the server verifies
uniformity with one vectorized header compare, extracts every row as one
matrix (:func:`try_uniform_multi_query`), answers them with a single
batch call against the sketch's query index, and emits the response the
same way (:func:`encode_uniform_query_response`).  Mixed frames fall
back to a per-request loop with identical results.

The frame length is capped (:data:`MAX_FRAME`) so a corrupt or hostile
length prefix cannot make either side allocate unbounded memory; both
sides fail the connection loudly with :class:`~repro.errors.ServiceError`.

Hot-path discipline: every decode helper accepts any buffer (``bytes``,
``bytearray``, ``memoryview``) and reads value arrays as zero-copy
``np.frombuffer`` views — no per-value Python objects anywhere.  Encoders
that run per batch (:func:`build_ingest_frames`) write headers and values
directly into one reusable output buffer via ``pack_into`` + vectorized
numpy slice assignment, so a pipelined client pays one buffer fill and one
``sendall`` for a whole window of frames.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ServiceError, TransportError, WrongTopologyError

__all__ = [
    "OP_INGEST",
    "OP_QUERY",
    "OP_CDF",
    "OP_MERGE",
    "OP_STATS",
    "OP_SNAPSHOT",
    "OP_PING",
    "OP_MULTI_INGEST",
    "OP_RANK",
    "OP_MULTI_QUERY",
    "OP_HELLO",
    "OP_SEQ_INGEST",
    "OP_SEQ_MULTI_INGEST",
    "OP_HEALTH",
    "OP_FETCH",
    "OP_WINDOW_INGEST",
    "OP_WINDOW_QUERY",
    "OP_SUBSCRIBE",
    "OP_SEQ_WINDOW_INGEST",
    "OP_TOPOLOGY",
    "OP_MIGRATE_PUSH",
    "OP_MIGRATE",
    "OP_NAMES",
    "FLAG_EXACTLY_ONCE",
    "HEALTH_READY",
    "HEALTH_OVERLOADED",
    "HEALTH_DRAINING",
    "HEALTH_DEGRADED",
    "KIND_QUANTILES",
    "KIND_RANKS",
    "KIND_CDF",
    "QUERY_KINDS",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_UNKNOWN_KEY",
    "STATUS_BAD_REQUEST",
    "STATUS_RETRY_LATER",
    "STATUS_WRONG_TOPOLOGY",
    "TOPOLOGY_GET",
    "TOPOLOGY_SET",
    "MIGRATE_KEYS",
    "MIGRATE_BEGIN",
    "MIGRATE_DRAIN",
    "MIGRATE_COMMIT",
    "MIGRATE_ABORT",
    "DRAIN_INGEST",
    "DRAIN_WINDOW",
    "MAX_FRAME",
    "encode_frame",
    "pack_key",
    "pack_values",
    "unpack_key",
    "unpack_values",
    "build_ingest_frames",
    "pack_multi_ingest",
    "unpack_multi_ingest",
    "pack_hello",
    "unpack_hello",
    "pack_hello_response",
    "unpack_hello_response",
    "pack_seq_ingest",
    "pack_seq_multi_ingest",
    "unpack_seq",
    "pack_health",
    "unpack_health_response",
    "pack_window_ingest",
    "unpack_window_ingest",
    "pack_seq_window_ingest",
    "pack_window_query",
    "unpack_window_query",
    "pack_subscribe",
    "unpack_subscribe",
    "pack_bucket_event",
    "unpack_bucket_event",
    "pack_subscribe_response",
    "unpack_subscribe_response",
    "pack_multi_query",
    "unpack_multi_query",
    "kind_code",
    "query_response_bound",
    "ERROR_MESSAGE_CAP",
    "build_query_frames",
    "try_uniform_multi_query",
    "pack_query_result",
    "unpack_query_result",
    "encode_uniform_query_response",
    "decode_uniform_query_response",
    "read_frame_sync",
    "FrameReader",
    "error_body",
    "raise_for_status",
    "pack_topology",
    "unpack_topology",
    "pack_migrate_push",
    "unpack_migrate_push",
    "pack_migrate",
    "unpack_migrate",
    "pack_keys_response",
    "unpack_keys_response",
    "pack_migration_bundle",
    "unpack_migration_bundle",
    "pack_drain_entry",
    "unpack_drain_entries",
    "pack_drain_response",
    "unpack_drain_response",
    "wrong_topology_body",
]

OP_INGEST = 0x01
OP_QUERY = 0x02
OP_CDF = 0x03
OP_MERGE = 0x04
OP_STATS = 0x05
OP_SNAPSHOT = 0x06
OP_PING = 0x07
OP_MULTI_INGEST = 0x08
OP_RANK = 0x09
OP_MULTI_QUERY = 0x0A
#: Session handshake: ``u32 capability flags, session id (key encoding)``.
#: Response: ``status, u32 granted flags, u64 session high-water mark``.
#: Negotiated — an old server answers BAD_REQUEST ("unknown opcode") and
#: the client falls back to the unsequenced protocol.
OP_HELLO = 0x0B
#: ``INGEST`` with a ``u64 seq`` between the opcode and the key; the
#: server applies it at most once per ``(session, key)`` (see
#: :mod:`repro.service.resilience`).
OP_SEQ_INGEST = 0x0C
#: ``MULTI_INGEST`` with a leading ``u64 seq`` shared by every group.
OP_SEQ_MULTI_INGEST = 0x0D
#: Readiness probe: responds ``status, u8 state, u32 length, JSON``.
OP_HEALTH = 0x0E
#: ``key`` -> the key's current ``FRQ1`` payload (``u64 n, u32 length,
#: payload``).  The read half of anti-entropy repair: a cluster
#: coordinator FETCHes the authoritative replica's summary and ships it
#: to a lagging replica through ``MERGE`` — mergeability (the paper's
#: Theorem 3) makes the healed replica as accurate as one that saw the
#: stream directly.  Unknown keys answer ``UNKNOWN_KEY``.
OP_FETCH = 0x0F
#: Windowed ingest: ``key, u32 count, timestamps, values`` — each value
#: lands in the wall-clock bucket its timestamp names (see
#: :mod:`repro.windowed`).  Both arrays decode as zero-copy views.
OP_WINDOW_INGEST = 0x10
#: Horizon read: merge the buckets overlapping ``[start, end)`` at one
#: resolution and answer quantile/rank/cdf points against the merge.
OP_WINDOW_QUERY = 0x11
#: Long-lived push stream: per-bucket-close quantile updates.  The first
#: server-push surface in the protocol — see the module docstring.
OP_SUBSCRIBE = 0x12
#: ``WINDOW_INGEST`` with a ``u64 seq`` between the opcode and the key
#: (the exactly-once windowed write, mirroring ``SEQ_INGEST``).
OP_SEQ_WINDOW_INGEST = 0x13
#: Topology surface: fetch (mode 0) or install (mode 1) the server's
#: cluster map.  An installed map makes the server *ownership-aware*:
#: operations on keys whose replica set excludes this node answer
#: ``STATUS_WRONG_TOPOLOGY`` carrying the map, so stale clients refresh
#: in one round trip.  Installing also persists the map to the data dir
#: (survives restart) and is the per-node commit point of a rebalance.
OP_TOPOLOGY = 0x14
#: State transfer: ``key + MB1 bundle`` (sketch payload, per-session
#: high-water marks, windowed rings).  The receiver durably **replaces**
#: the key's state — replace, not merge, so a retried migration after an
#: abort is idempotent and never double-counts.
OP_MIGRATE_PUSH = 0x15
#: Migration control plane (coordinator -> source node): list keys,
#: begin (capture state + enter forwarding), drain buffered writes
#: (optionally freezing the key), commit, abort.
OP_MIGRATE = 0x16

#: Opcode -> wire name (STATS reporting; unknown opcodes render as hex).
OP_NAMES = {
    OP_INGEST: "ingest",
    OP_QUERY: "query",
    OP_CDF: "cdf",
    OP_MERGE: "merge",
    OP_STATS: "stats",
    OP_SNAPSHOT: "snapshot",
    OP_PING: "ping",
    OP_MULTI_INGEST: "multi_ingest",
    OP_RANK: "rank",
    OP_MULTI_QUERY: "multi_query",
    OP_HELLO: "hello",
    OP_SEQ_INGEST: "seq_ingest",
    OP_SEQ_MULTI_INGEST: "seq_multi_ingest",
    OP_HEALTH: "health",
    OP_FETCH: "fetch",
    OP_WINDOW_INGEST: "window_ingest",
    OP_WINDOW_QUERY: "window_query",
    OP_SUBSCRIBE: "subscribe",
    OP_SEQ_WINDOW_INGEST: "seq_window_ingest",
    OP_TOPOLOGY: "topology",
    OP_MIGRATE_PUSH: "migrate_push",
    OP_MIGRATE: "migrate",
}

#: ``HELLO`` capability flag: per-frame sequence numbers + server-side
#: dedup — the exactly-once ingest contract.
FLAG_EXACTLY_ONCE = 0x1

#: ``HEALTH`` states (the ``u8`` after the response status byte).
HEALTH_READY = 0
HEALTH_OVERLOADED = 1
HEALTH_DRAINING = 2
#: Storage cannot accept writes (ENOSPC, poisoned WAL): the server is
#: read-only — ingest sheds with ``RETRY_LATER``, queries still serve.
HEALTH_DEGRADED = 3

#: ``MULTI_QUERY`` request kinds (the per-record ``u8 kind`` operand).
KIND_QUANTILES = 0
KIND_RANKS = 1
KIND_CDF = 2

#: Client-facing kind names -> wire codes.
QUERY_KINDS = {"quantiles": KIND_QUANTILES, "ranks": KIND_RANKS, "cdf": KIND_CDF}

STATUS_OK = 0
#: Generic server-side failure (the message says what went wrong).
STATUS_ERROR = 1
#: The requested key does not exist (queries never create keys).
STATUS_UNKNOWN_KEY = 2
#: The frame could not be decoded (bad opcode, truncated operands, ...).
STATUS_BAD_REQUEST = 3
#: The server is shedding load (or draining); the request was NOT
#: applied — back off and resend the same frame.
STATUS_RETRY_LATER = 4
#: The request named a key this node no longer owns under its installed
#: cluster topology; the request was NOT applied.  The body carries the
#: server's map JSON (:func:`wrong_topology_body`) so the client can
#: refresh its ring and re-route without a separate topology fetch.
STATUS_WRONG_TOPOLOGY = 5

#: ``TOPOLOGY`` request modes (the ``u8`` after the opcode).
TOPOLOGY_GET = 0
TOPOLOGY_SET = 1

#: ``MIGRATE`` request modes (the ``u8`` after the opcode).
MIGRATE_KEYS = 0
MIGRATE_BEGIN = 1
MIGRATE_DRAIN = 2
MIGRATE_COMMIT = 3
MIGRATE_ABORT = 4

#: Hard cap on one frame's body, request or response (64 MiB ~ an 8M-value
#: ingest batch — far past the point where splitting batches is free).
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct("<I")
_KEYLEN = struct.Struct("<H")
_COUNT = struct.Struct("<I")
_N = struct.Struct("<Q")
_EPS = struct.Struct("<d")

#: Fixed sizes of an OK query record: ``status + n + eps + count`` head
#: and the ``u64 num_retained`` footer (the values sit between them).
_QREC_HEAD = 1 + _N.size + _EPS.size + _COUNT.size
_QREC_TAIL = _N.size

#: Wire dtype for value arrays (explicit little-endian float64).
WIRE_DTYPE = np.dtype("<f8")


def encode_frame(body: bytes) -> bytes:
    """Prefix ``body`` with its u32 length."""
    if len(body) > MAX_FRAME:
        raise ServiceError(f"frame body of {len(body)} bytes exceeds MAX_FRAME ({MAX_FRAME})")
    return _LEN.pack(len(body)) + body


def pack_key(key: str) -> bytes:
    """``u16 length + UTF-8`` key encoding (keys are capped at 64 KiB - 1)."""
    raw = key.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ServiceError(f"key of {len(raw)} UTF-8 bytes exceeds the 65535-byte cap")
    return _KEYLEN.pack(len(raw)) + raw


def pack_values(values) -> bytes:
    """``u32 count`` + the values as raw little-endian float64."""
    array = np.ascontiguousarray(values, dtype=WIRE_DTYPE).reshape(-1)
    return _COUNT.pack(array.size) + array.tobytes()


def unpack_key(body: bytes, offset: int) -> Tuple[str, int]:
    """Decode a packed key at ``offset``; returns ``(key, new_offset)``."""
    try:
        (length,) = _KEYLEN.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated key length: {exc}") from exc
    offset += _KEYLEN.size
    end = offset + length
    if end > len(body):
        raise ServiceError(f"truncated key: {length} bytes declared, {len(body) - offset} present")
    try:
        # bytes() first so memoryview/bytearray bodies decode too; the copy
        # is just the key (<= 64 KiB), never the value payload.
        return bytes(body[offset:end]).decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise ServiceError(f"key is not valid UTF-8: {exc}") from exc


def unpack_values(body: bytes, offset: int) -> Tuple[np.ndarray, int]:
    """Decode a packed value array at ``offset``; returns ``(array, new_offset)``.

    The array is a zero-copy read-only view into ``body`` when the host is
    little-endian (the overwhelmingly common case).
    """
    try:
        (count,) = _COUNT.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated value count: {exc}") from exc
    offset += _COUNT.size
    end = offset + 8 * count
    if end > len(body):
        raise ServiceError(
            f"truncated values: {count} declared, {(len(body) - offset) // 8} present"
        )
    return np.frombuffer(body, dtype=WIRE_DTYPE, count=count, offset=offset), end


def pack_n(n: int) -> bytes:
    return _N.pack(n)


def unpack_n(body: bytes, offset: int) -> Tuple[int, int]:
    try:
        (n,) = _N.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated u64: {exc}") from exc
    return n, offset + _N.size


def pack_blob(data: bytes) -> bytes:
    """``u32 length`` + raw bytes (FRQ1 payloads, JSON stats, ...)."""
    return _COUNT.pack(len(data)) + data


def unpack_blob(body: bytes, offset: int) -> Tuple[bytes, int]:
    try:
        (length,) = _COUNT.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated blob length: {exc}") from exc
    offset += _COUNT.size
    end = offset + length
    if end > len(body):
        raise ServiceError(f"truncated blob: {length} bytes declared, {len(body) - offset} present")
    return bytes(body[offset:end]), end


def build_ingest_frames(
    key: str,
    values,
    *,
    frame_values: int = 8192,
    out: Optional[bytearray] = None,
    start_seq: Optional[int] = None,
):
    """Encode ``values`` as consecutive complete ``INGEST`` frames.

    The whole window is laid out in **one** buffer — headers via
    ``pack_into``, values via vectorized numpy slice assignment straight
    into the buffer (no per-value objects, no ``bytes`` concatenation) —
    so a pipelined sender pays a single ``sendall`` per window.

    Args:
        key: Target key (shared by every frame).
        values: The batch; split into frames of at most ``frame_values``.
        frame_values: Values per frame (the last frame takes the remainder).
        out: Optional reusable scratch ``bytearray``; grown in place when
            too small.  Callers must be done with the previous window (and
            have released any views into it) before reusing.
        start_seq: When given, frames are ``SEQ_INGEST`` carrying
            sequence numbers ``start_seq, start_seq + 1, ...`` (one per
            frame) for the server's exactly-once dedup.  Frame boundaries
            are a pure function of ``frame_values`` and the slice offset,
            so a rewound stream re-encodes byte-identical frames with
            identical sequence numbers.

    Returns:
        ``(window, counts)`` — a :class:`memoryview` over the encoded
        frames and the per-frame value counts, in order.
    """
    array = np.ascontiguousarray(values, dtype=WIRE_DTYPE).reshape(-1)
    if array.size == 0:
        raise ServiceError("cannot frame an empty batch")
    if frame_values < 1:
        raise ServiceError(f"frame_values must be >= 1, got {frame_values}")
    raw_key = pack_key(key)
    seq_size = 0 if start_seq is None else _N.size
    head = 1 + seq_size + len(raw_key) + _COUNT.size  # opcode [+ seq] + key + count
    if head + 8 * frame_values > MAX_FRAME:
        raise ServiceError(
            f"{frame_values} values per frame exceeds MAX_FRAME ({MAX_FRAME})"
        )
    n = int(array.size)
    nframes = -(-n // frame_values)
    total = nframes * (_LEN.size + head) + 8 * n
    if out is None:
        buf = bytearray(total)
    else:
        buf = out
        if len(buf) < total:
            buf.extend(bytes(total - len(buf)))
    counts = []
    offset = 0
    pos = 0
    seq = start_seq
    while pos < n:
        count = min(frame_values, n - pos)
        _LEN.pack_into(buf, offset, head + 8 * count)
        offset += _LEN.size
        if seq_size:
            buf[offset] = OP_SEQ_INGEST
            _N.pack_into(buf, offset + 1, seq)
            seq += 1
            offset += 1 + seq_size
        else:
            buf[offset] = OP_INGEST
            offset += 1
        buf[offset : offset + len(raw_key)] = raw_key
        offset += len(raw_key)
        _COUNT.pack_into(buf, offset, count)
        offset += _COUNT.size
        np.frombuffer(buf, dtype=WIRE_DTYPE, count=count, offset=offset)[:] = array[
            pos : pos + count
        ]
        offset += 8 * count
        pos += count
        counts.append(count)
    return memoryview(buf)[:offset], counts


def pack_multi_ingest(batches) -> bytes:
    """One ``MULTI_INGEST`` request body from ``(key, values)`` pairs.

    Fan-in convenience: several keys' batches travel (and are acked) as a
    single frame, pricing one round trip for the lot.
    """
    items = list(batches.items()) if hasattr(batches, "items") else list(batches)
    if not items:
        raise ServiceError("MULTI_INGEST needs at least one (key, values) group")
    parts = [bytes([OP_MULTI_INGEST]), _COUNT.pack(len(items))]
    for key, values in items:
        parts.append(pack_key(key))
        parts.append(pack_values(values))
    body = b"".join(parts)
    if len(body) > MAX_FRAME:
        raise ServiceError(f"MULTI_INGEST body of {len(body)} bytes exceeds MAX_FRAME")
    return body


def unpack_multi_ingest(body, offset: int = 1):
    """Decode a ``MULTI_INGEST`` body into ``[(key, values_view), ...]``.

    Value arrays are zero-copy views into ``body``.  Any truncation or
    trailing garbage raises :class:`~repro.errors.ServiceError` naming the
    offending group, so a pipelined client can attribute the failure.
    """
    try:
        (groups,) = _COUNT.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated MULTI_INGEST group count: {exc}") from exc
    offset += _COUNT.size
    if groups == 0:
        raise ServiceError("MULTI_INGEST declares zero groups")
    out = []
    for index in range(groups):
        try:
            key, offset = unpack_key(body, offset)
            values, offset = unpack_values(body, offset)
        except ServiceError as exc:
            raise ServiceError(f"MULTI_INGEST group {index}: {exc}") from exc
        out.append((key, values))
    if offset != len(body):
        raise ServiceError(
            f"{len(body) - offset} trailing bytes after MULTI_INGEST group {groups - 1}"
        )
    return out


def pack_hello(session_id: str, flags: int = FLAG_EXACTLY_ONCE) -> bytes:
    """A ``HELLO`` request body: capability flags + the session id."""
    return bytes([OP_HELLO]) + _COUNT.pack(flags) + pack_key(session_id)


def unpack_hello(body) -> Tuple[int, str]:
    """Decode a ``HELLO`` body into ``(flags, session_id)``."""
    try:
        (flags,) = _COUNT.unpack_from(body, 1)
    except struct.error as exc:
        raise ServiceError(f"truncated HELLO flags: {exc}") from exc
    sid, offset = unpack_key(body, 1 + _COUNT.size)
    if offset != len(body):
        raise ServiceError(f"{len(body) - offset} trailing bytes after HELLO session id")
    if not sid:
        raise ServiceError("HELLO session id must be non-empty")
    return flags, sid


def pack_hello_response(granted: int, high_water: int) -> bytes:
    """An OK ``HELLO`` response: granted flags + session high-water mark."""
    return b"\x00" + _COUNT.pack(granted) + _N.pack(high_water)


def unpack_hello_response(payload) -> Tuple[int, int]:
    """Decode an OK ``HELLO`` payload into ``(granted, high_water)``."""
    try:
        (granted,) = _COUNT.unpack_from(payload, 0)
        (high_water,) = _N.unpack_from(payload, _COUNT.size)
    except struct.error as exc:
        raise ServiceError(f"truncated HELLO response: {exc}") from exc
    return granted, high_water


def pack_seq_ingest(seq: int, key: str, values) -> bytes:
    """One ``SEQ_INGEST`` body (the single-frame, non-streamed encode)."""
    return bytes([OP_SEQ_INGEST]) + _N.pack(seq) + pack_key(key) + pack_values(values)


def pack_seq_multi_ingest(seq: int, batches) -> bytes:
    """A ``SEQ_MULTI_INGEST`` body: ``u64 seq`` + the MULTI_INGEST groups."""
    body = pack_multi_ingest(batches)
    out = bytes([OP_SEQ_MULTI_INGEST]) + _N.pack(seq) + body[1:]
    if len(out) > MAX_FRAME:
        raise ServiceError(f"SEQ_MULTI_INGEST body of {len(out)} bytes exceeds MAX_FRAME")
    return out


def unpack_seq(body, offset: int = 1) -> Tuple[int, int]:
    """Decode the ``u64 seq`` of a sequenced frame; returns ``(seq, new_offset)``."""
    try:
        (seq,) = _N.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated sequence number: {exc}") from exc
    if seq == 0:
        raise ServiceError("sequence numbers start at 1 (0 is reserved)")
    return seq, offset + _N.size


def pack_health() -> bytes:
    """A ``HEALTH`` request body (no operands)."""
    return bytes([OP_HEALTH])


def unpack_health_response(payload) -> Tuple[int, bytes]:
    """Decode an OK ``HEALTH`` payload into ``(state, json_blob)``."""
    if not len(payload):
        raise ServiceError("truncated HEALTH response")
    state = payload[0]
    blob, _ = unpack_blob(payload, 1)
    return state, blob


_F64 = struct.Struct("<d")
_IDX = struct.Struct("<q")


def _unpack_f64(body, offset: int, what: str) -> Tuple[float, int]:
    try:
        (value,) = _F64.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated {what}: {exc}") from exc
    return float(value), offset + _F64.size


def _pack_ts_values(timestamps, values) -> bytes:
    """``u32 count`` + timestamps + values (parallel f64 arrays)."""
    ts = np.ascontiguousarray(timestamps, dtype=WIRE_DTYPE).reshape(-1)
    vals = np.ascontiguousarray(values, dtype=WIRE_DTYPE).reshape(-1)
    if ts.size != vals.size:
        raise ServiceError(
            f"windowed batch length mismatch: {ts.size} timestamps vs {vals.size} values"
        )
    return _COUNT.pack(ts.size) + ts.tobytes() + vals.tobytes()


def pack_window_ingest(key: str, timestamps, values) -> bytes:
    """One ``WINDOW_INGEST`` body: key + parallel (timestamp, value) arrays."""
    body = bytes([OP_WINDOW_INGEST]) + pack_key(key) + _pack_ts_values(timestamps, values)
    if len(body) > MAX_FRAME:
        raise ServiceError(f"WINDOW_INGEST body of {len(body)} bytes exceeds MAX_FRAME")
    return body


def pack_seq_window_ingest(seq: int, key: str, timestamps, values) -> bytes:
    """``WINDOW_INGEST`` with a leading ``u64 seq`` (exactly-once dedup)."""
    body = (
        bytes([OP_SEQ_WINDOW_INGEST])
        + _N.pack(seq)
        + pack_key(key)
        + _pack_ts_values(timestamps, values)
    )
    if len(body) > MAX_FRAME:
        raise ServiceError(f"SEQ_WINDOW_INGEST body of {len(body)} bytes exceeds MAX_FRAME")
    return body


def unpack_window_ingest(body, offset: int = 1):
    """Decode ``WINDOW_INGEST`` operands into ``(key, ts_view, values_view)``.

    Both arrays are zero-copy float64 views into ``body`` — the windowed
    twin of :func:`unpack_values`' discipline.
    """
    key, offset = unpack_key(body, offset)
    try:
        (count,) = _COUNT.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated WINDOW_INGEST count: {exc}") from exc
    offset += _COUNT.size
    end = offset + 16 * count
    if end != len(body):
        raise ServiceError(
            f"WINDOW_INGEST declares {count} pairs ({16 * count} bytes) "
            f"but carries {len(body) - offset}"
        )
    ts = np.frombuffer(body, dtype=WIRE_DTYPE, count=count, offset=offset)
    values = np.frombuffer(body, dtype=WIRE_DTYPE, count=count, offset=offset + 8 * count)
    return key, ts, values


def pack_window_query(
    key: str, kind, resolution: float, start: float, end: float, points
) -> bytes:
    """One ``WINDOW_QUERY`` body (kind as in ``MULTI_QUERY`` records)."""
    return (
        bytes([OP_WINDOW_QUERY])
        + pack_key(key)
        + bytes([kind_code(kind)])
        + _F64.pack(resolution)
        + _F64.pack(start)
        + _F64.pack(end)
        + pack_values(points)
    )


def unpack_window_query(body, offset: int = 1):
    """``(key, kind, resolution, start, end, points_view)`` for WINDOW_QUERY."""
    key, offset = unpack_key(body, offset)
    if offset >= len(body):
        raise ServiceError("truncated WINDOW_QUERY kind byte")
    kind = body[offset]
    offset += 1
    resolution, offset = _unpack_f64(body, offset, "WINDOW_QUERY resolution")
    start, offset = _unpack_f64(body, offset, "WINDOW_QUERY start")
    end, offset = _unpack_f64(body, offset, "WINDOW_QUERY end")
    points, offset = unpack_values(body, offset)
    if offset != len(body):
        raise ServiceError(f"{len(body) - offset} trailing bytes after WINDOW_QUERY points")
    return key, kind, resolution, start, end, points


def pack_subscribe(key: str, resolution: float, resume_from: int, fractions) -> bytes:
    """One ``SUBSCRIBE`` body: watch (key, resolution) from a bucket index."""
    return (
        bytes([OP_SUBSCRIBE])
        + pack_key(key)
        + _F64.pack(resolution)
        + _IDX.pack(resume_from)
        + pack_values(fractions)
    )


def unpack_subscribe(body, offset: int = 1):
    """``(key, resolution, resume_from, fractions_view)`` for SUBSCRIBE."""
    key, offset = unpack_key(body, offset)
    resolution, offset = _unpack_f64(body, offset, "SUBSCRIBE resolution")
    try:
        (resume_from,) = _IDX.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated SUBSCRIBE resume index: {exc}") from exc
    offset += _IDX.size
    fractions, offset = unpack_values(body, offset)
    if fractions.size == 0:
        raise ServiceError("SUBSCRIBE needs at least one fraction")
    if offset != len(body):
        raise ServiceError(f"{len(body) - offset} trailing bytes after SUBSCRIBE fractions")
    return key, resolution, int(resume_from), fractions


def pack_bucket_event(
    index: int, start: float, end: float, n: int, eps: float, values
) -> bytes:
    """One bucket event: the payload of a push frame (after its status)."""
    array = np.ascontiguousarray(values, dtype=WIRE_DTYPE).reshape(-1)
    return (
        _IDX.pack(index)
        + _F64.pack(start)
        + _F64.pack(end)
        + _N.pack(n)
        + _EPS.pack(eps)
        + _COUNT.pack(array.size)
        + array.tobytes()
    )


def unpack_bucket_event(payload, offset: int = 0):
    """``(index, start, end, n, eps, values_view, new_offset)``."""
    try:
        (index,) = _IDX.unpack_from(payload, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated bucket event index: {exc}") from exc
    offset += _IDX.size
    start, offset = _unpack_f64(payload, offset, "bucket event start")
    end, offset = _unpack_f64(payload, offset, "bucket event end")
    n, offset = unpack_n(payload, offset)
    eps, offset = _unpack_f64(payload, offset, "bucket event error bound")
    values, offset = unpack_values(payload, offset)
    return int(index), start, end, n, eps, values, offset


def pack_subscribe_response(resolution: float, next_index: int, events) -> bytes:
    """An OK ``SUBSCRIBE`` ack: resolved resolution, live cursor, catch-up.

    ``events`` are already-encoded bucket event bodies
    (:func:`pack_bucket_event`).  Carrying the catch-up inline in the ack
    (instead of as separate pushes) pins the ordering: a subscriber
    always sees its replay before any live push.
    """
    parts = [
        b"\x00",
        _F64.pack(resolution),
        _IDX.pack(next_index),
        _COUNT.pack(len(events)),
    ]
    for event in events:
        parts.append(_COUNT.pack(len(event)))
        parts.append(event)
    body = b"".join(parts)
    if len(body) > MAX_FRAME:
        raise ServiceError(f"SUBSCRIBE response of {len(body)} bytes exceeds MAX_FRAME")
    return body


def unpack_subscribe_response(payload):
    """``(resolution, next_index, [event bodies])`` for an OK SUBSCRIBE ack."""
    resolution, offset = _unpack_f64(payload, 0, "SUBSCRIBE ack resolution")
    try:
        (next_index,) = _IDX.unpack_from(payload, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated SUBSCRIBE ack cursor: {exc}") from exc
    offset += _IDX.size
    try:
        (count,) = _COUNT.unpack_from(payload, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated SUBSCRIBE ack event count: {exc}") from exc
    offset += _COUNT.size
    events = []
    for _ in range(count):
        blob, offset = unpack_blob(payload, offset)
        events.append(blob)
    if offset != len(payload):
        raise ServiceError(
            f"{len(payload) - offset} trailing bytes after SUBSCRIBE ack events"
        )
    return resolution, int(next_index), events


def kind_code(kind) -> int:
    """Normalize a query kind — a :data:`QUERY_KINDS` name or a numeric
    wire code — to its ``u8`` code.  The single spelling of this check:
    clients, frame builders, and the server all route through it, so a
    new kind is added in exactly one table."""
    if isinstance(kind, str):
        try:
            return QUERY_KINDS[kind]
        except KeyError:
            raise ServiceError(
                f"unknown query kind {kind!r}; expected one of {sorted(QUERY_KINDS)}"
            ) from None
    code = int(kind)
    if not 0 <= code <= 0xFF:
        raise ServiceError(f"query kind {kind!r} does not fit the u8 kind byte")
    return code


def query_response_bound(requests: int, count: int) -> int:
    """Upper bound on a ``MULTI_QUERY`` response body for a request shape.

    An OK record outweighs its request record (the fixed head plus the
    ``num_retained`` footer, and ``cdf`` answers ``count + 1`` masses),
    so a request frame under :data:`MAX_FRAME` can imply a response over
    it.  Both sides use this bound to refuse such batches up front —
    with a small error frame server-side — instead of emitting a frame
    the protocol layer itself forbids.  Error records are bounded too
    (messages are truncated to :data:`ERROR_MESSAGE_CAP`).
    """
    record = _QREC_HEAD + 8 * (count + 1) + _QREC_TAIL
    return 1 + _COUNT.size + requests * max(record, 1 + _COUNT.size + ERROR_MESSAGE_CAP)


#: Per-record error messages inside MULTI_QUERY responses are truncated
#: to this many UTF-8 bytes so the response bound holds for any key size.
ERROR_MESSAGE_CAP = 512


def pack_multi_query(requests) -> bytes:
    """One ``MULTI_QUERY`` request body from ``(key, kind, points)`` triples.

    ``kind`` is a wire code (:data:`KIND_QUANTILES` / :data:`KIND_RANKS` /
    :data:`KIND_CDF`) or its :data:`QUERY_KINDS` name.  The generic
    encoder — mixed keys, kinds, and point counts; uniform single-key
    batches should go through :func:`build_query_frames` instead.
    """
    items = list(requests)
    if not items:
        raise ServiceError("MULTI_QUERY needs at least one (key, kind, points) request")
    parts = [bytes([OP_MULTI_QUERY]), _COUNT.pack(len(items))]
    for key, kind, points in items:
        parts.append(pack_key(key))
        parts.append(bytes([kind_code(kind)]))
        parts.append(pack_values(points))
    body = b"".join(parts)
    if len(body) > MAX_FRAME:
        raise ServiceError(f"MULTI_QUERY body of {len(body)} bytes exceeds MAX_FRAME")
    return body


def unpack_multi_query(body, offset: int = 1):
    """Decode a ``MULTI_QUERY`` body into ``[(key, kind, points_view), ...]``.

    Point arrays are zero-copy views into ``body``.  Truncation or
    trailing garbage raises :class:`~repro.errors.ServiceError` naming
    the offending request.
    """
    try:
        (requests,) = _COUNT.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated MULTI_QUERY request count: {exc}") from exc
    offset += _COUNT.size
    if requests == 0:
        raise ServiceError("MULTI_QUERY declares zero requests")
    out = []
    for index in range(requests):
        try:
            key, offset = unpack_key(body, offset)
            if offset >= len(body):
                raise ServiceError("truncated kind byte")
            kind = body[offset]
            points, offset = unpack_values(body, offset + 1)
        except ServiceError as exc:
            raise ServiceError(f"MULTI_QUERY request {index}: {exc}") from exc
        out.append((key, kind, points))
    if offset != len(body):
        raise ServiceError(
            f"{len(body) - offset} trailing bytes after MULTI_QUERY request {requests - 1}"
        )
    return out


def build_query_frames(
    key: str,
    kind,
    points,
    *,
    frame_requests: int = 512,
    out: Optional[bytearray] = None,
):
    """Encode uniform query requests as consecutive ``MULTI_QUERY`` frames.

    ``points`` is a 2-D float64 array — one row per request, all against
    ``key`` with the same ``kind``.  Uniform records are fixed-stride, so
    the whole window is built vectorized: one record template tiled by a
    broadcast assignment, every point row written with a single 2-D slice
    assignment — no per-request packing, mirroring
    :func:`build_ingest_frames` on the write side.

    Returns ``(window, counts)`` — a :class:`memoryview` over the encoded
    frames and the per-frame request counts, in order.  Same ``out``
    scratch contract as :func:`build_ingest_frames`.
    """
    kind = kind_code(kind)
    pts = np.ascontiguousarray(points, dtype=WIRE_DTYPE)
    if pts.ndim == 1:
        pts = pts.reshape(1, -1)
    if pts.ndim != 2:
        raise ServiceError(f"points must be a (requests, count) matrix, got ndim={pts.ndim}")
    nreq, count = pts.shape
    if nreq == 0 or count == 0:
        raise ServiceError("cannot frame an empty query batch")
    if frame_requests < 1:
        raise ServiceError(f"frame_requests must be >= 1, got {frame_requests}")
    raw_key = pack_key(key)
    rec_head = raw_key + bytes([int(kind)]) + _COUNT.pack(count)
    rec = len(rec_head) + 8 * count
    head = 1 + _COUNT.size  # opcode + request count
    per_frame = min(frame_requests, nreq)
    if (
        head + rec * per_frame > MAX_FRAME
        or query_response_bound(per_frame, count) > MAX_FRAME
    ):
        raise ServiceError(
            f"{frame_requests} requests of {count} points per frame exceeds "
            f"MAX_FRAME ({MAX_FRAME}) on the request or response side; "
            "lower frame_requests"
        )
    nframes = -(-nreq // frame_requests)
    total = nframes * (_LEN.size + head) + nreq * rec
    if out is None:
        buf = bytearray(total)
    else:
        buf = out
        if len(buf) < total:
            buf.extend(bytes(total - len(buf)))
    template = np.frombuffer(rec_head + bytes(8 * count), dtype=np.uint8)
    u8 = np.frombuffer(buf, dtype=np.uint8)
    counts = []
    offset = 0
    pos = 0
    while pos < nreq:
        take = min(frame_requests, nreq - pos)
        _LEN.pack_into(buf, offset, head + take * rec)
        offset += _LEN.size
        buf[offset] = OP_MULTI_QUERY
        _COUNT.pack_into(buf, offset + 1, take)
        offset += head
        mat = u8[offset : offset + take * rec].reshape(take, rec)
        mat[:] = template
        mat[:, len(rec_head) :] = pts[pos : pos + take].view(np.uint8)
        offset += take * rec
        pos += take
        counts.append(take)
    return memoryview(buf)[:offset], counts


def try_uniform_multi_query(body):
    """``(key, kind, points_matrix)`` for a uniform frame, else ``None``.

    A frame is uniform when every record shares the first record's key,
    kind, and point count — verified exactly, with one vectorized byte
    compare over the fixed-stride record headers (no per-request parse).
    The returned matrix is one contiguous ``(requests, count)`` float64
    copy of every point row.  Raises on a frame whose *first* record is
    malformed (the generic decoder would too).
    """
    try:
        (requests,) = _COUNT.unpack_from(body, 1)
    except struct.error as exc:
        raise ServiceError(f"truncated MULTI_QUERY request count: {exc}") from exc
    if requests == 0:
        raise ServiceError("MULTI_QUERY declares zero requests")
    base = 1 + _COUNT.size
    try:
        key, offset = unpack_key(body, base)
        if offset >= len(body):
            raise ServiceError("truncated kind byte")
        kind = body[offset]
        (count,) = _COUNT.unpack_from(body, offset + 1)
    except struct.error as exc:
        raise ServiceError(f"MULTI_QUERY request 0: {exc}") from exc
    hdr = (offset - base) + 1 + _COUNT.size
    rec = hdr + 8 * count
    if len(body) - base != requests * rec:
        return None
    u8 = np.frombuffer(body, dtype=np.uint8)
    mat = u8[base:].reshape(requests, rec)
    if requests > 1 and not (mat[1:, :hdr] == mat[0, :hdr]).all():
        return None
    pts = np.ascontiguousarray(mat[:, hdr:]).view(WIRE_DTYPE)
    return key, kind, pts


def pack_query_result(n: int, eps: float, values, retained: int) -> bytes:
    """One OK query payload: ``0, u64 n, f64 eps, values, u64 retained``.

    Doubles as the single ``QUERY``/``CDF``/``RANK`` response body and as
    one OK ``MULTI_QUERY`` record.
    """
    array = np.ascontiguousarray(values, dtype=WIRE_DTYPE).reshape(-1)
    return (
        b"\x00"
        + _N.pack(n)
        + _EPS.pack(eps)
        + _COUNT.pack(array.size)
        + array.tobytes()
        + _N.pack(retained)
    )


def unpack_query_result(payload, offset: int = 0):
    """Decode an OK query payload (after its status byte).

    Returns ``(n, eps, values_view, retained, new_offset)``; the values
    are a zero-copy view into ``payload``.
    """
    n, offset = unpack_n(payload, offset)
    try:
        (eps,) = _EPS.unpack_from(payload, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated error bound: {exc}") from exc
    values, offset = unpack_values(payload, offset + _EPS.size)
    retained, offset = unpack_n(payload, offset)
    return n, float(eps), values, retained, offset


def encode_uniform_query_response(n: int, eps: float, values, retained: int) -> bytearray:
    """A whole-frame ``MULTI_QUERY`` response for a uniform answer matrix.

    ``values`` is the ``(requests, count)`` float64 answer matrix for one
    key; every record shares ``n``/``eps``/``retained``, so the response
    is one template tile plus a single vectorized value fill.
    """
    array = np.ascontiguousarray(values, dtype=WIRE_DTYPE)
    if array.ndim != 2:
        raise ServiceError(f"uniform response needs a 2-D matrix, got ndim={array.ndim}")
    requests, count = array.shape
    head = b"\x00" + _COUNT.pack(requests)
    rec_head = b"\x00" + _N.pack(n) + _EPS.pack(eps) + _COUNT.pack(count)
    rec = _QREC_HEAD + 8 * count + _QREC_TAIL
    body = bytearray(len(head) + requests * rec)
    body[: len(head)] = head
    u8 = np.frombuffer(body, dtype=np.uint8)
    mat = u8[len(head) :].reshape(requests, rec)
    mat[:] = np.frombuffer(rec_head + bytes(8 * count) + _N.pack(retained), dtype=np.uint8)
    mat[:, _QREC_HEAD : _QREC_HEAD + 8 * count] = array.view(np.uint8)
    return body


def decode_uniform_query_response(payload, expected_requests: int):
    """``(n, eps, values_matrix, retained)`` for a uniform-OK response.

    The inverse of :func:`encode_uniform_query_response`: verifies (with
    one vectorized compare over the fixed-stride records) that every
    record is OK and shares the first record's header and footer, then
    extracts all value rows as one contiguous matrix — the copy, so the
    result survives receive-scratch reuse.  Returns ``(n, eps,
    values_matrix, retained)``, or ``None`` when the
    response is not uniform (some record errored, or counts differ);
    callers fall back to the per-record decoder.  Raises on a response
    whose declared request count disagrees with ``expected_requests``.
    """
    try:
        (requests,) = _COUNT.unpack_from(payload, 0)
    except struct.error as exc:
        raise ServiceError(f"truncated MULTI_QUERY response: {exc}") from exc
    if requests != expected_requests:
        raise ServiceError(
            f"MULTI_QUERY response covers {requests} requests, expected {expected_requests}"
        )
    base = _COUNT.size
    if len(payload) <= base:
        raise ServiceError("truncated MULTI_QUERY response records")
    if payload[base] != STATUS_OK:
        return None
    try:
        n, offset = unpack_n(payload, base + 1)
        (eps,) = _EPS.unpack_from(payload, offset)
        (count,) = _COUNT.unpack_from(payload, offset + _EPS.size)
    except (ServiceError, struct.error):
        raise ServiceError("truncated MULTI_QUERY response record 0") from None
    rec = _QREC_HEAD + 8 * count + _QREC_TAIL
    if len(payload) - base != requests * rec:
        return None
    u8 = np.frombuffer(payload, dtype=np.uint8)
    mat = u8[base : base + requests * rec].reshape(requests, rec)
    if requests > 1:
        same_head = (mat[1:, :_QREC_HEAD] == mat[0, :_QREC_HEAD]).all()
        same_tail = (mat[1:, rec - _QREC_TAIL :] == mat[0, rec - _QREC_TAIL :]).all()
        if not (same_head and same_tail):
            return None
    (retained,) = _N.unpack_from(payload, base + rec - _QREC_TAIL)
    values = np.ascontiguousarray(mat[:, _QREC_HEAD : _QREC_HEAD + 8 * count]).view(WIRE_DTYPE)
    return n, float(eps), values, retained


def pack_topology(map_json: Optional[str] = None) -> bytes:
    """A ``TOPOLOGY`` request body: fetch (no argument) or install."""
    if map_json is None:
        return bytes([OP_TOPOLOGY, TOPOLOGY_GET])
    body = bytes([OP_TOPOLOGY, TOPOLOGY_SET]) + pack_blob(map_json.encode("utf-8"))
    if len(body) > MAX_FRAME:
        raise ServiceError(f"TOPOLOGY body of {len(body)} bytes exceeds MAX_FRAME")
    return body


def unpack_topology(body) -> Tuple[int, Optional[str]]:
    """Decode a ``TOPOLOGY`` body into ``(mode, map_json_or_None)``."""
    if len(body) < 2:
        raise ServiceError("truncated TOPOLOGY mode byte")
    mode = body[1]
    if mode == TOPOLOGY_GET:
        if len(body) != 2:
            raise ServiceError(f"{len(body) - 2} trailing bytes after TOPOLOGY fetch")
        return mode, None
    if mode != TOPOLOGY_SET:
        raise ServiceError(f"unknown TOPOLOGY mode {mode}")
    blob, offset = unpack_blob(body, 2)
    if offset != len(body):
        raise ServiceError(f"{len(body) - offset} trailing bytes after TOPOLOGY document")
    try:
        return mode, blob.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ServiceError(f"TOPOLOGY document is not valid UTF-8: {exc}") from exc


def pack_migrate_push(key: str, bundle: bytes) -> bytes:
    """A ``MIGRATE_PUSH`` body: the key + its MB1 migration bundle."""
    body = bytes([OP_MIGRATE_PUSH]) + pack_key(key) + pack_blob(bundle)
    if len(body) > MAX_FRAME:
        raise ServiceError(f"MIGRATE_PUSH body of {len(body)} bytes exceeds MAX_FRAME")
    return body


def unpack_migrate_push(body, offset: int = 1) -> Tuple[str, bytes]:
    """Decode a ``MIGRATE_PUSH`` body into ``(key, bundle)``."""
    key, offset = unpack_key(body, offset)
    bundle, offset = unpack_blob(body, offset)
    if offset != len(body):
        raise ServiceError(f"{len(body) - offset} trailing bytes after MIGRATE_PUSH bundle")
    return key, bundle


def pack_migrate(mode: int, key: str = "", *, freeze: bool = False) -> bytes:
    """A ``MIGRATE`` control body (``KEYS`` takes no key)."""
    if mode == MIGRATE_KEYS:
        return bytes([OP_MIGRATE, MIGRATE_KEYS])
    if mode == MIGRATE_DRAIN:
        return bytes([OP_MIGRATE, MIGRATE_DRAIN, 1 if freeze else 0]) + pack_key(key)
    if mode not in (MIGRATE_BEGIN, MIGRATE_COMMIT, MIGRATE_ABORT):
        raise ServiceError(f"unknown MIGRATE mode {mode}")
    return bytes([OP_MIGRATE, mode]) + pack_key(key)


def unpack_migrate(body) -> Tuple[int, bool, str]:
    """Decode a ``MIGRATE`` body into ``(mode, freeze, key)``."""
    if len(body) < 2:
        raise ServiceError("truncated MIGRATE mode byte")
    mode = body[1]
    offset = 2
    freeze = False
    if mode == MIGRATE_KEYS:
        if len(body) != 2:
            raise ServiceError(f"{len(body) - 2} trailing bytes after MIGRATE keys request")
        return mode, False, ""
    if mode == MIGRATE_DRAIN:
        if len(body) < 3:
            raise ServiceError("truncated MIGRATE drain freeze flag")
        freeze = bool(body[2])
        offset = 3
    elif mode not in (MIGRATE_BEGIN, MIGRATE_COMMIT, MIGRATE_ABORT):
        raise ServiceError(f"unknown MIGRATE mode {mode}")
    key, offset = unpack_key(body, offset)
    if offset != len(body):
        raise ServiceError(f"{len(body) - offset} trailing bytes after MIGRATE key")
    if not key:
        raise ServiceError("MIGRATE needs a non-empty key")
    return mode, freeze, key


def pack_keys_response(keys) -> bytes:
    """An OK ``MIGRATE`` KEYS payload: every key the node holds state for."""
    parts = [b"\x00", _COUNT.pack(len(keys))]
    parts.extend(pack_key(key) for key in keys)
    body = b"".join(parts)
    if len(body) > MAX_FRAME:
        raise ServiceError(f"KEYS response of {len(body)} bytes exceeds MAX_FRAME")
    return body


def unpack_keys_response(payload) -> List[str]:
    """The key list of an OK ``KEYS`` payload (after its status byte)."""
    try:
        (count,) = _COUNT.unpack_from(payload, 0)
    except struct.error as exc:
        raise ServiceError(f"truncated KEYS count: {exc}") from exc
    offset = _COUNT.size
    keys = []
    for _ in range(count):
        key, offset = unpack_key(payload, offset)
        keys.append(key)
    if offset != len(payload):
        raise ServiceError(f"{len(payload) - offset} trailing bytes after KEYS list")
    return keys


#: MB1 magic: the migration bundle format tag (versioned like FRQ1/FRW1).
_MB1_MAGIC = b"MB1\x00"


def pack_migration_bundle(
    n: int,
    sketch: Optional[bytes],
    marks,
    window: Optional[bytes] = None,
) -> bytes:
    """One key's migratable state as an ``MB1`` bundle.

    ``n`` is the key's lifetime total, ``sketch`` its FRQ1 payload (absent
    for a purely windowed key), ``marks`` the per-session high-water marks
    ``{session_id: mark}`` for this key (so exactly-once dedup survives the
    move), ``window`` its FRW1 ring bundle when the key has windowed state.
    """
    parts = [_MB1_MAGIC, _N.pack(n)]
    if sketch is None:
        parts.append(b"\x00")
    else:
        parts.append(b"\x01")
        parts.append(pack_blob(sketch))
    items = sorted(marks.items()) if hasattr(marks, "items") else sorted(marks)
    parts.append(_COUNT.pack(len(items)))
    for sid, mark in items:
        parts.append(pack_key(sid))
        parts.append(_N.pack(int(mark)))
    if window is None:
        parts.append(b"\x00")
    else:
        parts.append(b"\x01")
        parts.append(pack_blob(window))
    bundle = b"".join(parts)
    if len(bundle) > MAX_FRAME:
        raise ServiceError(f"migration bundle of {len(bundle)} bytes exceeds MAX_FRAME")
    return bundle


def unpack_migration_bundle(bundle):
    """Decode an ``MB1`` bundle into ``(n, sketch, marks, window)``."""
    if bytes(bundle[: len(_MB1_MAGIC)]) != _MB1_MAGIC:
        raise ServiceError("migration bundle does not start with the MB1 magic")
    n, offset = unpack_n(bundle, len(_MB1_MAGIC))
    sketch = None
    if offset >= len(bundle):
        raise ServiceError("truncated MB1 sketch flag")
    if bundle[offset]:
        sketch, offset = unpack_blob(bundle, offset + 1)
    else:
        offset += 1
    try:
        (count,) = _COUNT.unpack_from(bundle, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated MB1 mark count: {exc}") from exc
    offset += _COUNT.size
    marks = {}
    for _ in range(count):
        sid, offset = unpack_key(bundle, offset)
        mark, offset = unpack_n(bundle, offset)
        marks[sid] = mark
    window = None
    if offset >= len(bundle):
        raise ServiceError("truncated MB1 window flag")
    if bundle[offset]:
        window, offset = unpack_blob(bundle, offset + 1)
    else:
        offset += 1
    if offset != len(bundle):
        raise ServiceError(f"{len(bundle) - offset} trailing bytes after MB1 window")
    return n, sketch, marks, window


#: Drain entry kinds: a buffered plain ingest vs a windowed ingest.
DRAIN_INGEST = 0
DRAIN_WINDOW = 1


def pack_drain_entry(kind: int, session, values, timestamps=None) -> bytes:
    """One buffered write captured while a key was in forwarding state.

    ``session`` is ``(session_id, seq)`` for exactly-once frames (``None``
    for unsequenced ones); windowed entries carry parallel timestamps.
    """
    if kind not in (DRAIN_INGEST, DRAIN_WINDOW):
        raise ServiceError(f"unknown drain entry kind {kind}")
    parts = [bytes([kind])]
    if session is None:
        parts.append(b"\x00")
    else:
        sid, seq = session
        parts.append(b"\x01")
        parts.append(pack_key(sid))
        parts.append(_N.pack(int(seq)))
    if kind == DRAIN_WINDOW:
        if timestamps is None:
            raise ServiceError("windowed drain entries need timestamps")
        parts.append(_pack_ts_values(timestamps, values))
    else:
        parts.append(pack_values(values))
    return b"".join(parts)


def unpack_drain_entries(payload, offset: int, count: int):
    """Decode ``count`` drain entries; returns ``(entries, new_offset)``.

    Each entry is ``(kind, session, timestamps, values)`` with ``session``
    as ``(sid, seq)`` or ``None`` and ``timestamps`` ``None`` for plain
    ingests.  Value arrays are copies (drain responses are applied after
    the receive scratch may be reused).
    """
    entries = []
    for index in range(count):
        try:
            if offset >= len(payload):
                raise ServiceError("truncated entry kind")
            kind = payload[offset]
            offset += 1
            if kind not in (DRAIN_INGEST, DRAIN_WINDOW):
                raise ServiceError(f"unknown drain entry kind {kind}")
            if offset >= len(payload):
                raise ServiceError("truncated session flag")
            session = None
            has_session = payload[offset]
            offset += 1
            if has_session:
                sid, offset = unpack_key(payload, offset)
                seq, offset = unpack_n(payload, offset)
                session = (sid, seq)
            if kind == DRAIN_WINDOW:
                try:
                    (pairs,) = _COUNT.unpack_from(payload, offset)
                except struct.error as exc:
                    raise ServiceError(f"truncated pair count: {exc}") from exc
                offset += _COUNT.size
                end = offset + 16 * pairs
                if end > len(payload):
                    raise ServiceError(f"truncated windowed entry: {pairs} pairs declared")
                ts = np.frombuffer(payload, dtype=WIRE_DTYPE, count=pairs, offset=offset).copy()
                values = np.frombuffer(
                    payload, dtype=WIRE_DTYPE, count=pairs, offset=offset + 8 * pairs
                ).copy()
                offset = end
                entries.append((kind, session, ts, values))
            else:
                values, offset = unpack_values(payload, offset)
                entries.append((kind, session, None, values.copy()))
        except ServiceError as exc:
            raise ServiceError(f"drain entry {index}: {exc}") from exc
    return entries, offset


def pack_drain_response(frozen: bool, entries) -> bytes:
    """An OK ``MIGRATE`` DRAIN payload: freeze state + encoded entries."""
    parts = [b"\x00", b"\x01" if frozen else b"\x00", _COUNT.pack(len(entries))]
    parts.extend(entries)
    body = b"".join(parts)
    if len(body) > MAX_FRAME:
        raise ServiceError(f"DRAIN response of {len(body)} bytes exceeds MAX_FRAME")
    return body


def unpack_drain_response(payload):
    """``(frozen, entries)`` for an OK DRAIN payload (after its status)."""
    if len(payload) < 1 + _COUNT.size:
        raise ServiceError("truncated DRAIN response")
    frozen = bool(payload[0])
    (count,) = _COUNT.unpack_from(payload, 1)
    entries, offset = unpack_drain_entries(payload, 1 + _COUNT.size, count)
    if offset != len(payload):
        raise ServiceError(f"{len(payload) - offset} trailing bytes after DRAIN entries")
    return frozen, entries


def wrong_topology_body(message: str, map_json: str) -> bytes:
    """A ``STATUS_WRONG_TOPOLOGY`` response body: message + map blobs."""
    return (
        bytes([STATUS_WRONG_TOPOLOGY])
        + pack_blob(message.encode("utf-8"))
        + pack_blob(map_json.encode("utf-8"))
    )


def error_body(status: int, message: str) -> bytes:
    """A response body carrying an error status and its message."""
    return bytes([status]) + message.encode("utf-8")


def raise_for_status(body) -> bytes:
    """Split a response body into its payload, raising on error statuses.

    Accepts any buffer (``bytes`` or a scratch-backed ``memoryview``).
    Returns the body after the status byte.  Raises
    :class:`~repro.errors.ServiceError` carrying the server's message (and
    a ``status`` attribute) for any non-OK status.
    """
    if not len(body):
        raise ServiceError("empty response frame")
    status = body[0]
    if status == STATUS_OK:
        return body[1:]
    if status == STATUS_WRONG_TOPOLOGY:
        try:
            msg_blob, offset = unpack_blob(body, 1)
            map_blob, _ = unpack_blob(body, offset)
            message = msg_blob.decode("utf-8", errors="replace")
            map_json = map_blob.decode("utf-8", errors="replace")
        except ServiceError:
            message = bytes(body[1:]).decode("utf-8", errors="replace")
            map_json = ""
        exc = WrongTopologyError(message or "stale topology", map_json)
        exc.status = status
        raise exc
    message = bytes(body[1:]).decode("utf-8", errors="replace") or f"status {status}"
    exc = ServiceError(message)
    exc.status = status
    raise exc


def read_frame_sync(sock, *, scratch: Optional[bytearray] = None):
    """Read one frame body from a blocking socket (the sync client's path).

    Reads via ``recv_into`` — the body lands in one preallocated buffer
    (no per-chunk allocations, no join).  Pass a reusable ``scratch``
    ``bytearray`` to skip even that allocation: the return value is then a
    :class:`memoryview` into ``scratch``, valid until the next call that
    reuses it.  Without ``scratch`` the return type stays ``bytes``.

    Raises:
        ServiceError: On EOF mid-frame or an oversized length prefix.
        ConnectionError: If the peer closed before any byte arrived.
    """
    header = bytearray(_LEN.size)
    _recv_into_exact(sock, memoryview(header), eof_ok=True)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ServiceError(f"peer announced a {length}-byte frame (cap {MAX_FRAME})")
    if scratch is None:
        body = bytearray(length)
        _recv_into_exact(sock, memoryview(body), eof_ok=False)
        return bytes(body)
    if len(scratch) < length:
        scratch.extend(bytes(length - len(scratch)))
    view = memoryview(scratch)[:length]
    _recv_into_exact(sock, view, eof_ok=False)
    return view


def _recv_into_exact(sock, view: memoryview, *, eof_ok: bool) -> None:
    """Fill ``view`` from ``sock`` exactly, without intermediate copies."""
    total = len(view)
    got = 0
    while got < total:
        received = sock.recv_into(view[got:])
        if not received:
            if eof_ok and got == 0:
                raise ConnectionError("connection closed")
            raise TransportError(
                f"connection closed {total - got} bytes into a {total}-byte read"
            )
        got += received


def _recv_exact(sock, count: int, *, eof_ok: bool) -> bytes:
    """Back-compat shim over :func:`_recv_into_exact` (returns ``bytes``)."""
    buf = bytearray(count)
    _recv_into_exact(sock, memoryview(buf), eof_ok=eof_ok)
    return bytes(buf)


class FrameReader:
    """Buffered frame reader over a blocking socket.

    One ``recv_into`` pulls everything the kernel has buffered — under
    pipelining that is a whole window of acks — and successive
    :meth:`read_frame` calls peel frames off without further syscalls.
    Frame bodies are returned as :class:`memoryview`\\ s into the internal
    buffer, valid until the next call (callers decode immediately; anything
    retained must be copied).
    """

    __slots__ = ("_sock", "_buf", "_rpos", "_wpos")

    def __init__(self, sock, *, initial: int = 1 << 16) -> None:
        self._sock = sock
        self._buf = bytearray(initial)
        self._rpos = 0
        self._wpos = 0

    def read_frame(self) -> memoryview:
        """One frame body (EOF/oversize semantics of :func:`read_frame_sync`)."""
        header = self._take(_LEN.size, eof_ok=True)
        (length,) = _LEN.unpack_from(header, 0)
        header.release()
        if length > MAX_FRAME:
            raise ServiceError(f"peer announced a {length}-byte frame (cap {MAX_FRAME})")
        return self._take(length, eof_ok=False)

    def _take(self, count: int, *, eof_ok: bool) -> memoryview:
        buf = self._buf
        while self._wpos - self._rpos < count:
            if len(buf) - self._wpos < max(count - (self._wpos - self._rpos), 4096):
                pending = self._wpos - self._rpos
                if pending and self._rpos:
                    buf[:pending] = bytes(memoryview(buf)[self._rpos : self._wpos])
                self._rpos, self._wpos = 0, pending
                if len(buf) - pending < count - pending:
                    # Replace (not resize) so earlier views stay valid.
                    grown = bytearray(max(len(buf) * 2, count + pending))
                    grown[:pending] = memoryview(buf)[:pending]
                    self._buf = buf = grown
            received = self._sock.recv_into(memoryview(buf)[self._wpos :])
            if not received:
                if eof_ok and self._wpos == self._rpos:
                    raise ConnectionError("connection closed")
                raise TransportError(
                    f"connection closed {count - (self._wpos - self._rpos)} bytes "
                    f"into a {count}-byte read"
                )
            self._wpos += received
        view = memoryview(buf)[self._rpos : self._rpos + count]
        self._rpos += count
        if self._rpos == self._wpos:
            self._rpos = self._wpos = 0
        return view

"""The length-prefixed binary protocol of the quantile service.

One TCP connection carries a sequence of frames in each direction; every
request frame gets exactly one response frame, in order.  A frame is::

    length   u32   byte length of the body (little-endian)
    body     ...   request or response payload

Request bodies start with a one-byte opcode; response bodies start with a
one-byte status (``0`` = OK, anything else an error code followed by a
UTF-8 message).  All integers are little-endian; all value arrays are raw
contiguous little-endian float64 — the same dtype the fast engine ingests,
so the server feeds ``update_many`` without a conversion pass and the
``FRQ1`` payloads of :mod:`repro.fast.wire` embed unchanged in ``MERGE``
frames and snapshot files.

Requests (``key`` is ``u16 length + UTF-8 bytes``)::

    INGEST    0x01  key, u32 count, count * f64 values
    QUERY     0x02  key, u32 count, count * f64 fractions
    CDF       0x03  key, u32 count, count * f64 split points
    MERGE     0x04  key, u32 length, FRQ1 payload
    STATS     0x05  key (empty = server-wide)
    SNAPSHOT  0x06  (no operands)
    PING      0x07  (no operands)

Responses (after the status byte)::

    INGEST    u64 n                      key's total after the batch
    QUERY     u64 n, f64 eps, values     a-priori error bound + quantiles
    CDF       u64 n, f64 eps, masses     count+1 masses (final one 1.0)
    MERGE     u64 n
    STATS     u32 length, UTF-8 JSON
    SNAPSHOT  u32 keys written
    PING      u32 length, UTF-8 version

The frame length is capped (:data:`MAX_FRAME`) so a corrupt or hostile
length prefix cannot make either side allocate unbounded memory; both
sides fail the connection loudly with :class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.errors import ServiceError

__all__ = [
    "OP_INGEST",
    "OP_QUERY",
    "OP_CDF",
    "OP_MERGE",
    "OP_STATS",
    "OP_SNAPSHOT",
    "OP_PING",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_UNKNOWN_KEY",
    "STATUS_BAD_REQUEST",
    "MAX_FRAME",
    "encode_frame",
    "pack_key",
    "pack_values",
    "unpack_key",
    "unpack_values",
    "read_frame_sync",
    "error_body",
    "raise_for_status",
]

OP_INGEST = 0x01
OP_QUERY = 0x02
OP_CDF = 0x03
OP_MERGE = 0x04
OP_STATS = 0x05
OP_SNAPSHOT = 0x06
OP_PING = 0x07

STATUS_OK = 0
#: Generic server-side failure (the message says what went wrong).
STATUS_ERROR = 1
#: The requested key does not exist (queries never create keys).
STATUS_UNKNOWN_KEY = 2
#: The frame could not be decoded (bad opcode, truncated operands, ...).
STATUS_BAD_REQUEST = 3

#: Hard cap on one frame's body, request or response (64 MiB ~ an 8M-value
#: ingest batch — far past the point where splitting batches is free).
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct("<I")
_KEYLEN = struct.Struct("<H")
_COUNT = struct.Struct("<I")
_N = struct.Struct("<Q")

#: Wire dtype for value arrays (explicit little-endian float64).
WIRE_DTYPE = np.dtype("<f8")


def encode_frame(body: bytes) -> bytes:
    """Prefix ``body`` with its u32 length."""
    if len(body) > MAX_FRAME:
        raise ServiceError(f"frame body of {len(body)} bytes exceeds MAX_FRAME ({MAX_FRAME})")
    return _LEN.pack(len(body)) + body


def pack_key(key: str) -> bytes:
    """``u16 length + UTF-8`` key encoding (keys are capped at 64 KiB - 1)."""
    raw = key.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ServiceError(f"key of {len(raw)} UTF-8 bytes exceeds the 65535-byte cap")
    return _KEYLEN.pack(len(raw)) + raw


def pack_values(values) -> bytes:
    """``u32 count`` + the values as raw little-endian float64."""
    array = np.ascontiguousarray(values, dtype=WIRE_DTYPE).reshape(-1)
    return _COUNT.pack(array.size) + array.tobytes()


def unpack_key(body: bytes, offset: int) -> Tuple[str, int]:
    """Decode a packed key at ``offset``; returns ``(key, new_offset)``."""
    try:
        (length,) = _KEYLEN.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated key length: {exc}") from exc
    offset += _KEYLEN.size
    end = offset + length
    if end > len(body):
        raise ServiceError(f"truncated key: {length} bytes declared, {len(body) - offset} present")
    try:
        return body[offset:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise ServiceError(f"key is not valid UTF-8: {exc}") from exc


def unpack_values(body: bytes, offset: int) -> Tuple[np.ndarray, int]:
    """Decode a packed value array at ``offset``; returns ``(array, new_offset)``.

    The array is a zero-copy read-only view into ``body`` when the host is
    little-endian (the overwhelmingly common case).
    """
    try:
        (count,) = _COUNT.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated value count: {exc}") from exc
    offset += _COUNT.size
    end = offset + 8 * count
    if end > len(body):
        raise ServiceError(
            f"truncated values: {count} declared, {(len(body) - offset) // 8} present"
        )
    return np.frombuffer(body, dtype=WIRE_DTYPE, count=count, offset=offset), end


def pack_n(n: int) -> bytes:
    return _N.pack(n)


def unpack_n(body: bytes, offset: int) -> Tuple[int, int]:
    try:
        (n,) = _N.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated u64: {exc}") from exc
    return n, offset + _N.size


def pack_blob(data: bytes) -> bytes:
    """``u32 length`` + raw bytes (FRQ1 payloads, JSON stats, ...)."""
    return _COUNT.pack(len(data)) + data


def unpack_blob(body: bytes, offset: int) -> Tuple[bytes, int]:
    try:
        (length,) = _COUNT.unpack_from(body, offset)
    except struct.error as exc:
        raise ServiceError(f"truncated blob length: {exc}") from exc
    offset += _COUNT.size
    end = offset + length
    if end > len(body):
        raise ServiceError(f"truncated blob: {length} bytes declared, {len(body) - offset} present")
    return bytes(body[offset:end]), end


def error_body(status: int, message: str) -> bytes:
    """A response body carrying an error status and its message."""
    return bytes([status]) + message.encode("utf-8")


def raise_for_status(body: bytes) -> bytes:
    """Split a response body into its payload, raising on error statuses.

    Returns the body after the status byte.  Raises
    :class:`~repro.errors.ServiceError` carrying the server's message (and
    a ``status`` attribute) for any non-OK status.
    """
    if not body:
        raise ServiceError("empty response frame")
    status = body[0]
    if status == STATUS_OK:
        return body[1:]
    message = body[1:].decode("utf-8", errors="replace") or f"status {status}"
    exc = ServiceError(message)
    exc.status = status
    raise exc


def read_frame_sync(sock) -> bytes:
    """Read one frame body from a blocking socket (the sync client's path).

    Raises:
        ServiceError: On EOF mid-frame or an oversized length prefix.
        ConnectionError: If the peer closed before any byte arrived.
    """
    header = _recv_exact(sock, _LEN.size, eof_ok=True)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ServiceError(f"peer announced a {length}-byte frame (cap {MAX_FRAME})")
    return _recv_exact(sock, length, eof_ok=False)


def _recv_exact(sock, count: int, *, eof_ok: bool) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                raise ConnectionError("connection closed")
            raise ServiceError(f"connection closed {remaining} bytes into a {count}-byte read")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if len(chunks) != 1 else chunks[0]

"""The quantile service plane: a network-fronted, durable sketch store.

PRs 1-2 built the fast engine and the sharded aggregation plane; this
package turns the library into a runnable multi-tenant service.  What the
paper contributes is exactly what makes this shape viable: per-key REQ
summaries are tiny (``O(k log(n/k))`` items for relative-error rank
guarantees), *fully mergeable* in arbitrary trees (Theorem 3), and travel
as compact ``FRQ1`` payloads — so one process can front millions of keys,
evict cold ones to disk for the cost of a few KiB each, and union edge
sketches shipped over the wire without losing accuracy.

Layers (bottom up):

* :class:`SketchStore` (:mod:`repro.service.store`) — tenant/metric keys
  to :class:`~repro.fast.FastReqSketch`, lazy creation, incremental
  retained-item accounting, LRU spill-to-disk, optional hot-key promotion
  to :class:`~repro.shard.ShardedReqSketch`.
* :mod:`repro.service.persistence` — per-key ``FRQ1`` snapshots plus an
  append-only CRC-guarded batch WAL; replay-on-recovery reconstructs
  every key after a crash (bit-exact for WAL-replayed keys, thanks to
  deterministic per-key seeds).  :class:`GroupCommitWal` moves appends
  and fsyncs onto a background writer with group commit — acks gate on
  commit tickets, so durability costs latency instead of throughput.
* :class:`QuantileService` / :class:`QuantileServer`
  (:mod:`repro.service.server`) — the durable core and its asyncio TCP
  front speaking the length-prefixed binary protocol of
  :mod:`repro.service.protocol` (``INGEST``/``QUERY``/``CDF``/``MERGE``/
  ``STATS``/``SNAPSHOT``/``PING``/``MULTI_INGEST``/``RANK``/
  ``MULTI_QUERY``).  The ingest path is pipelined end to end: zero-copy
  frame decode, per-tick coalescing into single ``update_many`` batches,
  uvloop when installed.
* :class:`QuantileClient` / :class:`AsyncQuantileClient`
  (:mod:`repro.service.client`) — sync and asyncio clients with per-key
  client-side batching, windowed pipelined streaming in both directions
  (``ingest_stream`` / ``query_stream``, one shared windowing state
  machine), multi-key fan-in frames (``ingest_multi``), and batched
  reads with per-request statuses (``query_many``).
* :mod:`repro.service.resilience` — the resilience plane.
  :class:`RetryPolicy` gives clients reconnect-and-replay with capped
  jittered backoff and a hard retry budget; with it, ``HELLO``
  negotiates an exactly-once session whose per-``(session, key)``
  high-water marks (:class:`SessionTable`) ride the WAL and a sidecar
  checkpoint, so a retried frame is acknowledged without being applied
  twice — even across a server crash between apply and ack.
  :class:`OverloadPolicy` sheds ingest (``RETRY_LATER``) on WAL-queue /
  parse-buffer watermarks while reads keep flowing; the server also
  enforces connection limits, answers ``HEALTH``, and drains gracefully
  on ``SIGTERM``.  :mod:`repro.service.faultproxy` is the deterministic
  chaos harness that proves all of it (seeded mid-byte faults, silent
  frame blackholes, manual partitions).
* the storage-fault plane — :mod:`repro.service.faultdisk` injects
  seeded/scripted disk faults (ENOSPC, EIO, short writes, bit rot)
  beneath the WAL and snapshot stores via the ``io_layer`` hook;
  snapshots carry ``FRS1`` CRC32 framing; :mod:`repro.service.scrub`
  re-reads retained files on a cadence and quarantines rot (resident
  keys self-heal, spilled keys heal via cluster repair); a full or
  failing disk flips the service into read-only **degraded mode**
  (ingest sheds with ``RETRY_LATER``, reads keep flowing) until space
  returns.

One layer up, :mod:`repro.cluster` runs many of these nodes as a
replicated cluster (consistent-hash routing, failover reads, hinted
handoff, anti-entropy repair over ``FETCH``/``MERGE``); each node is
just this service started with a ``node_id``.

The query plane leans on the engine's **version-stamped query index**
(:meth:`repro.fast.FastReqSketch.query_index`) and its invariants:

* the index is a pure function of the retained multiset — rebuilding
  from the same state (including a deserialized ``FRQ1`` payload, a
  reloaded spill file, or WAL-replayed history) yields bit-identical
  arrays, so answers over the wire are bit-identical to in-process ones;
* every mutation bumps a level version that invalidates the index on
  the next read — a stale index (or stale memoized ``error_bound``) is
  never served;
* a uniform ``MULTI_QUERY`` frame is answered with ONE batched
  ``searchsorted`` over the index and vectorized response encode; the
  server's ``STATS`` reports the aggregate hit/miss/rebuild counters
  (``query_index``) plus per-opcode counts so cache behaviour is
  observable in production.

Run it::

    repro-quantiles serve --port 7379 --data-dir ./qdata --memory-budget 2000000
    repro-quantiles query p99s --host 127.0.0.1 --q 0.5 0.99

or in-process::

    from repro.service import QuantileService, QuantileServer, QuantileClient
"""

from repro.service.client import (
    AsyncQuantileClient,
    BucketEvent,
    QuantileClient,
    QueryResult,
)
from repro.service.faultdisk import (
    DiskIo,
    FaultyDisk,
    ScriptedDiskFaults,
    SeededDiskFaults,
)
from repro.service.faultproxy import FaultProxy, ScriptedFaults, SeededFaults
from repro.service.persistence import GroupCommitWal, SnapshotStore, WriteAheadLog
from repro.service.resilience import OverloadPolicy, RetryPolicy, SessionTable
from repro.service.scrub import Scrubber, verify_wal_file
from repro.service.server import (
    QuantileServer,
    QuantileService,
    ServerThread,
    new_event_loop,
    run_server,
)
from repro.service.store import SketchStore

__all__ = [
    "AsyncQuantileClient",
    "BucketEvent",
    "DiskIo",
    "FaultProxy",
    "FaultyDisk",
    "GroupCommitWal",
    "OverloadPolicy",
    "QuantileClient",
    "QuantileServer",
    "QuantileService",
    "QueryResult",
    "RetryPolicy",
    "ScriptedDiskFaults",
    "ScriptedFaults",
    "Scrubber",
    "SeededDiskFaults",
    "SeededFaults",
    "ServerThread",
    "SessionTable",
    "SketchStore",
    "SnapshotStore",
    "WriteAheadLog",
    "new_event_loop",
    "run_server",
    "verify_wal_file",
]

"""Logging for the service plane (replaces ad-hoc stderr prints).

Everything under the ``repro.service`` logger, so operators configure one
name.  The library never installs handlers — embedding applications keep
control — but :func:`configure_cli_logging` gives the ``serve`` CLI a
sane stderr default.

:class:`RateLimiter` throttles repeat diagnostics (the periodic-snapshot
retry path fires every interval during a disk outage; one line per
window beats one per attempt).
"""

from __future__ import annotations

import logging
import time
from typing import Dict

__all__ = ["logger", "RateLimiter", "configure_cli_logging"]

#: The service plane's logger; children via ``logger.getChild(...)``.
logger = logging.getLogger("repro.service")


class RateLimiter:
    """Allow one event per key per ``interval`` seconds; count the rest.

    ``ready(key)`` returns ``True`` when the caller should emit, plus the
    number of suppressed occurrences since the last emission (so the
    emitted line can say "... (N repeats suppressed)").
    """

    __slots__ = ("interval", "_last", "_suppressed")

    def __init__(self, interval: float = 30.0) -> None:
        self.interval = interval
        self._last: Dict[str, float] = {}
        self._suppressed: Dict[str, int] = {}

    def ready(self, key: str, *, now: float = None):
        """``(should_emit, suppressed_count)`` for one occurrence of ``key``."""
        now = time.monotonic() if now is None else now
        last = self._last.get(key)
        if last is None or now - last >= self.interval:
            self._last[key] = now
            suppressed = self._suppressed.pop(key, 0)
            return True, suppressed
        self._suppressed[key] = self._suppressed.get(key, 0) + 1
        return False, self._suppressed[key]


def configure_cli_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler for CLI entry points (idempotent).

    Only touches the ``repro.service`` logger — never the root — so the
    CLI gets visible diagnostics without hijacking the host application's
    logging when the library is imported elsewhere.
    """
    if any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        return
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)

"""A multi-tenant keyed store of REQ sketches with LRU spill-to-disk.

:class:`SketchStore` maps tenant/metric keys (any string up to 64 KiB) to
:class:`~repro.fast.FastReqSketch` instances.  The design constraints come
straight from the paper: per-key summaries are tiny (``O(k log(n/k))``
retained items), fully mergeable, and serialize compactly (``FRQ1``), so a
single process can hold summaries for a very large keyspace — and evicting
a cold key is just writing its wire payload somewhere and dropping it.

Three responsibilities live here:

* **Lazy creation** — the first ``update_many``/``merge`` against a key
  creates its sketch.  Per-key RNG seeds are derived deterministically
  from the store's base seed and the key (CRC32-mixed), which makes
  write-ahead-log replay bit-exact: a crashed server that re-applies the
  same batches in the same order reconstructs *identical* sketches (see
  :mod:`repro.service.persistence`).  Pass ``seed=None`` for fresh
  randomness when replay determinism is not needed.
* **Memory accounting** — the store tracks total retained items across
  resident sketches incrementally (``retained_items``), updated from
  ``num_retained`` deltas of only the touched key, so the accounting cost
  per ingest is O(levels of that key), not O(keys).
* **LRU spill** — when ``memory_budget`` (in retained items) is exceeded,
  least-recently-used keys are serialized through the ``spill_save``
  callback and dropped from memory; a later access transparently reloads
  them via ``spill_load``.  The server wires these callbacks to its
  snapshot files so eviction doubles as a durable checkpoint; standalone
  users can pass ``spill_dir`` for self-contained FRQ1 spill files.

Hot keys can optionally be promoted onto a
:class:`~repro.shard.ShardedReqSketch` (local backend) once they ingest
more than ``hot_key_items`` values — per-key isolation for tenants whose
traffic dwarfs the rest, at identical accuracy (Theorem 3).
"""

from __future__ import annotations

import hashlib
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.errors import InvalidParameterError, ServiceError
from repro.fast import FastReqSketch
from repro.fast.wire import peek_header, retained_in_payload

__all__ = ["SketchStore", "spill_filename"]


def spill_filename(key: str) -> str:
    """A filesystem-safe, collision-resistant file name for ``key``.

    Keys are arbitrary UTF-8 up to 64 KiB, so the name is a digest rather
    than an escaping of the key; the key itself lives inside snapshot
    files (:mod:`repro.service.persistence`), never in file names.
    """
    return hashlib.sha256(key.encode("utf-8")).hexdigest() + ".frq1"


class _Entry:
    """One resident key: its sketch plus cached accounting state."""

    __slots__ = ("sketch", "retained", "ingested", "sharded")

    def __init__(self, sketch) -> None:
        self.sketch = sketch
        self.retained = 0
        self.ingested = 0
        self.sharded = False


class SketchStore:
    """Keyed :class:`~repro.fast.FastReqSketch` instances under one budget.

    Args:
        k: Section size for every sketch (even integer >= 2).
        hra: High-rank-accuracy mode for every sketch.
        seed: Base seed; each key derives a distinct deterministic seed
            from it (``None`` = fresh randomness per key, which forfeits
            bit-exact WAL replay).
        memory_budget: Optional cap on total retained items across
            resident sketches; exceeding it spills LRU keys.  Requires a
            spill target (``spill_dir`` or ``spill_save``/``spill_load``).
        spill_dir: Directory for self-contained FRQ1 spill files (created
            on first spill).  Mutually exclusive with explicit callbacks.
        spill_save: ``(key, payload) -> None`` called on eviction.
        spill_load: ``(key) -> Optional[bytes]`` called on a miss; return
            ``None`` if the key was never spilled.
        hot_key_items: Optional ingest-count threshold past which a key is
            promoted to a local-backend :class:`~repro.shard.ShardedReqSketch`.
        hot_shards: Shards per promoted key.
    """

    def __init__(
        self,
        *,
        k: int = 32,
        hra: bool = False,
        seed: Optional[int] = 0,
        memory_budget: Optional[int] = None,
        spill_dir: Optional[str] = None,
        spill_save: Optional[Callable[[str, bytes], None]] = None,
        spill_load: Optional[Callable[[str], Optional[bytes]]] = None,
        hot_key_items: Optional[int] = None,
        hot_shards: int = 4,
        on_spill_load: Optional[Callable[[str, FastReqSketch], None]] = None,
    ) -> None:
        if (spill_save is None) != (spill_load is None):
            raise InvalidParameterError("spill_save and spill_load must be passed together")
        if spill_dir is not None and spill_save is not None:
            raise InvalidParameterError("pass spill_dir or spill_save/spill_load, not both")
        if spill_dir is not None:
            directory = Path(spill_dir)

            def spill_save(key: str, payload: bytes, _dir=directory) -> None:
                _dir.mkdir(parents=True, exist_ok=True)
                path = _dir / spill_filename(key)
                tmp = path.with_suffix(".tmp")
                tmp.write_bytes(payload)
                tmp.replace(path)

            def spill_load(key: str, _dir=directory) -> Optional[bytes]:
                path = _dir / spill_filename(key)
                return path.read_bytes() if path.exists() else None

        if memory_budget is not None:
            if memory_budget < 1:
                raise InvalidParameterError(f"memory_budget must be >= 1, got {memory_budget}")
            if spill_save is None:
                raise InvalidParameterError(
                    "a memory_budget needs somewhere to spill: pass spill_dir "
                    "or spill_save/spill_load (dropping sketches would lose data)"
                )
        if hot_key_items is not None and hot_key_items < 1:
            raise InvalidParameterError(f"hot_key_items must be >= 1, got {hot_key_items}")
        # Fail fast on bad sketch parameters, not on the first ingest.
        FastReqSketch(k, hra=hra)
        self.k = k
        self.hra = bool(hra)
        self.seed = seed
        self.memory_budget = memory_budget
        self.hot_key_items = hot_key_items
        self.hot_shards = hot_shards
        self._spill_save = spill_save
        self._spill_load = spill_load
        self._on_spill_load = on_spill_load
        #: Resident entries in LRU order (most recently used at the end).
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        #: Keys currently living only in the spill target.
        self._spilled: Dict[str, bool] = {}
        self._retained_total = 0
        self.spill_count = 0
        self.load_count = 0
        #: Query-index counters carried by evicted sketches (the live
        #: counters ride on each resident sketch; see query_index_stats).
        self._index_hits_evicted = 0
        self._index_rebuilds_evicted = 0
        #: Reusable coalescing scratch for :meth:`stage_concat` (float64;
        #: grown geometrically, never shrunk — the store is single-writer).
        self._stage_buf: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Key inventory
    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._entries or key in self._spilled

    def __len__(self) -> int:
        return len(self._entries) + len(self._spilled)

    def keys(self) -> List[str]:
        """Every known key, resident or spilled (insertion-ish order)."""
        return list(self._entries) + list(self._spilled)

    def register_spilled(self, key: str) -> None:
        """Declare that ``key`` exists in the spill target (recovery path).

        The first access loads it through ``spill_load`` like any evicted
        key.  No-op if the key is already resident.
        """
        if key not in self._entries:
            self._spilled[key] = True

    def forget_spilled(self, key: str) -> bool:
        """Drop a spilled key from the inventory (the quarantine path).

        When the key's only copy — its snapshot file — fails its
        integrity check, the file is quarantined and the key must stop
        being advertised: after this call the key is simply *unknown*
        (``KeyError`` → ``UNKNOWN_KEY`` on the wire), which is exactly
        the state cluster ``repair()`` heals exactly (FETCH + MERGE into
        empty).  Returns ``False`` if the key was resident or unknown —
        a resident key needs no forgetting, its live sketch is the
        authoritative copy.
        """
        return self._spilled.pop(key, None) is not None

    @property
    def resident_keys(self) -> List[str]:
        return list(self._entries)

    @property
    def spilled_keys(self) -> List[str]:
        return list(self._spilled)

    @property
    def retained_items(self) -> int:
        """Total retained items across resident sketches (the memory metric)."""
        return self._retained_total

    def derive_seed(self, key: str) -> Optional[int]:
        """The deterministic per-key seed (``None`` when the store is unseeded).

        CRC32 of the key, shifted clear of small base-seed deltas, so
        distinct keys (and distinct base seeds) get distinct coin streams.
        """
        if self.seed is None:
            return None
        return (self.seed + (zlib.crc32(key.encode("utf-8")) << 17)) & (2**63 - 1)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get(self, key: str, *, create: bool = False):
        """The sketch for ``key`` (reloading a spilled key transparently).

        Marks the key most-recently-used.  With ``create=True`` a missing
        key gets a fresh empty sketch; otherwise ``KeyError``.
        """
        entry = self._touch(key)
        if entry is None:
            if not create:
                raise KeyError(key)
            entry = self._create(key)
        return entry.sketch

    def peek(self, key: str):
        """``key``'s sketch if resident — no LRU touch, no spill reload."""
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(key)
        return entry.sketch

    def peek_payload(self, key: str) -> bytes:
        """A resident key's ``FRQ1`` payload without touching LRU order.

        The checkpoint path uses this: snapshotting every resident key must
        not rewrite the eviction order the workload established.
        """
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(key)
        return self._payload(entry)

    def is_sharded(self, key: str) -> bool:
        """Whether a resident ``key`` is backed by a sharded plane."""
        entry = self._entries.get(key)
        return entry is not None and entry.sharded

    def _create(self, key: str) -> _Entry:
        sketch = FastReqSketch(self.k, hra=self.hra, seed=self.derive_seed(key))
        entry = _Entry(sketch)
        self._entries[key] = entry
        return entry

    def _touch(self, key: str) -> Optional[_Entry]:
        """Mark ``key`` most-recently-used, reloading it if spilled."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        if key in self._spilled:
            payload = self._spill_load(key) if self._spill_load else None
            if payload is None:
                raise ServiceError(f"spilled key {key!r} is missing from the spill target")
            try:
                sketch = FastReqSketch.from_bytes(payload)
            except Exception as exc:
                raise ServiceError(f"corrupt spill payload for key {key!r}: {exc}") from exc
            del self._spilled[key]
            if self._on_spill_load is not None:
                # Post-load hook; the service uses it to re-seed the RNG
                # deterministically so recovery replay stays bit-exact.
                self._on_spill_load(key, sketch)
            entry = _Entry(sketch)
            entry.ingested = sketch.n
            entry.retained = sketch.num_retained
            self._entries[key] = entry
            self._retained_total += entry.retained
            self.load_count += 1
            # Reloads happen on the read path too (QUERY on a spilled key);
            # the budget must hold there, not just after writes — otherwise
            # a query-only workload grows residency without bound.
            if self.memory_budget is not None and self._retained_total > self.memory_budget:
                self._enforce_budget(keep=key)
            return entry
        return None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def update_many(self, key: str, values) -> int:
        """Feed one batch into ``key``'s sketch (created lazily); returns its ``n``."""
        entry = self._touch(key) or self._create(key)
        entry.sketch.update_many(values)
        entry.ingested += int(np.size(values))
        return self._settle(key, entry)

    def stage_concat(self, arrays) -> np.ndarray:
        """Concatenate per-frame value views into one contiguous batch.

        The server's coalescing path funnels every ``INGEST`` frame a
        connection delivered in one event-loop tick here, then feeds the
        result to a **single** :meth:`update_many` — so the sketch's
        amortized compaction schedule sees one large run instead of many
        small ones, exactly as the paper's cost analysis assumes.

        Returns a view into a reusable scratch buffer: valid until the
        next ``stage_concat`` call.  Callers that persist the batch (the
        WAL) must copy (``tobytes``) before the next tick.  The sketch
        itself copies on ingest (staging block / ``np.sort``), so handing
        the view to ``update_many`` is safe.
        """
        total = 0
        for array in arrays:
            total += int(array.size)
        buf = self._stage_buf
        if buf is None or buf.size < total:
            self._stage_buf = buf = np.empty(max(total, 16384), dtype=np.float64)
        offset = 0
        for array in arrays:
            size = int(array.size)
            buf[offset : offset + size] = array
            offset += size
        return buf[:total]

    def merge_payload(self, key: str, payload: bytes) -> int:
        """Union an ``FRQ1`` payload into ``key`` (created lazily); returns its ``n``.

        The distributed-edge path: sketch at the edge, ship the payload,
        union here.  The donor is decoded once and never retained.
        """
        try:
            donor = FastReqSketch.from_bytes(payload)
        except Exception as exc:
            raise ServiceError(f"cannot decode merge payload for key {key!r}: {exc}") from exc
        return self.merge_sketch(key, donor)

    def merge_sketch(self, key: str, donor) -> int:
        """Union an in-process sketch into ``key`` (created lazily)."""
        entry = self._touch(key) or self._create(key)
        if entry.sharded:
            entry.sketch.absorb(donor)
        else:
            entry.sketch.merge_many((donor,))
        entry.ingested += donor.n
        return self._settle(key, entry)

    def replace_payload(self, key: str, payload: bytes) -> int:
        """Install an ``FRQ1`` payload as ``key``'s entire state; returns its ``n``.

        The migration apply: unlike :meth:`merge_payload` this **discards**
        whatever the store held for ``key`` (resident or spilled) and makes
        the decoded payload the key's summary.  Replace-not-merge is what
        makes a retried state transfer idempotent — pushing the same bundle
        twice (a rebalance restarted after a crash) cannot double-count.
        """
        try:
            donor = FastReqSketch.from_bytes(payload)
        except Exception as exc:
            raise ServiceError(
                f"cannot decode replacement payload for key {key!r}: {exc}"
            ) from exc
        if donor.k != self.k or bool(donor.hra) != self.hra:
            raise ServiceError(
                f"replacement payload has k={donor.k}/hra={donor.hra}; "
                f"this store runs k={self.k}/hra={self.hra}"
            )
        seed = self.derive_seed(key)
        if seed is not None:
            # FRQ1 carries no RNG state.  Pin the replacement's coin stream
            # to the per-key seed: every replica installs the same bundle
            # and derives the same stream, so post-migration compactions
            # stay bit-identical across replicas — and WAL replay of the
            # same record re-derives it, keeping recovery bit-exact too.
            donor._rng = np.random.default_rng(seed)
        old = self._entries.pop(key, None)
        if old is not None:
            self._retained_total -= old.retained
            self._index_hits_evicted += int(getattr(old.sketch, "query_index_hits", 0))
            self._index_rebuilds_evicted += int(getattr(old.sketch, "query_index_rebuilds", 0))
        self._spilled.pop(key, None)
        entry = _Entry(donor)
        entry.ingested = int(donor.n)
        entry.retained = int(donor.num_retained)
        self._entries[key] = entry
        self._retained_total += entry.retained
        if self.memory_budget is not None and self._retained_total > self.memory_budget:
            self._enforce_budget(keep=key)
        return int(donor.n)

    def _settle(self, key: str, entry: _Entry) -> int:
        """Post-write bookkeeping: accounting delta, promotion, budget."""
        if (
            self.hot_key_items is not None
            and not entry.sharded
            and entry.ingested >= self.hot_key_items
        ):
            self._promote(key, entry)
        retained = entry.sketch.num_retained
        self._retained_total += retained - entry.retained
        entry.retained = retained
        if self.memory_budget is not None and self._retained_total > self.memory_budget:
            self._enforce_budget(keep=key)
        return entry.sketch.n

    def _promote(self, key: str, entry: _Entry) -> None:
        """Re-home a hot key onto a local-backend sharded plane."""
        from repro.shard import ShardedReqSketch

        sharded = ShardedReqSketch(
            self.hot_shards,
            k=self.k,
            hra=self.hra,
            seed=self.derive_seed(key),
            backend="local",
        )
        if entry.sketch.n:
            sharded.absorb(entry.sketch)
        # The plane's counters start at zero; fold the replaced sketch's
        # into the store accumulator (like eviction does) so aggregate
        # query-index stats never go backwards on promotion.
        self._index_hits_evicted += int(getattr(entry.sketch, "query_index_hits", 0))
        self._index_rebuilds_evicted += int(getattr(entry.sketch, "query_index_rebuilds", 0))
        entry.sketch = sharded
        entry.sharded = True

    # ------------------------------------------------------------------
    # Queries (the read hot path: index-backed, vectorized)
    # ------------------------------------------------------------------

    @staticmethod
    def evaluate(sketch, kind: str, points) -> np.ndarray:
        """Run one read request against ``sketch``; returns float64 values.

        ``kind`` is ``"quantiles"`` / ``"ranks"`` / ``"cdf"``.  Every kind
        routes through the sketch's version-stamped query index — one
        vectorized ``searchsorted`` per call; ranks are widened to float64
        (exact below 2**53) so every kind shares the wire value format.
        """
        if kind == "quantiles":
            return sketch.quantiles(points)
        if kind == "ranks":
            return np.asarray(sketch.ranks(points), dtype=np.float64)
        if kind == "cdf":
            return sketch.cdf(points)
        raise ServiceError(f"unknown query kind {kind!r}")

    def query(self, key: str, kind: str, points):
        """``(n, error_bound, values, num_retained)`` for one request.

        Reloads a spilled key transparently (the reloaded sketch rebuilds
        its query index on this first read, then serves later reads from
        it).  The error bound comes from the engine's memoized value —
        one bound computation per stream length, not per request — and
        ``num_retained`` rides along as the response footer's source.
        """
        sketch = self.get(key)
        values = self.evaluate(sketch, kind, points)
        return int(sketch.n), float(sketch.error_bound()), values, int(sketch.num_retained)

    def query_batch(self, key: str, kind: str, points: np.ndarray):
        """Uniform batch read: ``points`` is one ``(requests, count)`` matrix.

        All rows are answered with a single index-backed engine call —
        flatten, one vectorized ``searchsorted``, reshape — which is what
        makes a uniform ``MULTI_QUERY`` frame O(total points) instead of
        O(requests) Python dispatches.  Raises (instead of degrading to a
        per-row loop) when any row is invalid; the server then falls back
        to the per-request path so errors attribute to the exact request.
        Row answers are bit-identical to per-row :meth:`query` calls.
        """
        sketch = self.get(key)
        pts = np.ascontiguousarray(points, dtype=np.float64)
        requests, count = pts.shape
        if kind == "quantiles":
            values = sketch.quantiles(pts.reshape(-1)).reshape(requests, count)
        elif kind == "ranks":
            ranks = sketch.ranks(pts.reshape(-1)).reshape(requests, count)
            values = np.asarray(ranks, dtype=np.float64)
        elif kind == "cdf":
            if count == 0:
                raise InvalidParameterError("split_points must be non-empty")
            if (np.diff(pts, axis=1) <= 0).any():
                raise InvalidParameterError("split_points must be strictly increasing")
            # Same operations as FastReqSketch.cdf per row (int64 rank
            # division, then the appended 1.0), so rows stay bit-identical.
            masses = sketch.ranks(pts.reshape(-1)).reshape(requests, count) / sketch.n
            values = np.concatenate([masses, np.ones((requests, 1))], axis=1)
        else:
            raise ServiceError(f"unknown query kind {kind!r}")
        return int(sketch.n), float(sketch.error_bound()), values, int(sketch.num_retained)

    def query_index_stats(self) -> dict:
        """Aggregate query-index counters across the whole keyspace.

        Sums the per-sketch hit/rebuild counters of every resident key
        plus an accumulator absorbed from evicted sketches, so the totals
        are monotonic across spill/reload cycles.  A miss always rebuilds
        (the index is never served stale), so ``misses == rebuilds``.
        """
        hits = self._index_hits_evicted
        rebuilds = self._index_rebuilds_evicted
        for entry in self._entries.values():
            hits += int(getattr(entry.sketch, "query_index_hits", 0))
            rebuilds += int(getattr(entry.sketch, "query_index_rebuilds", 0))
        return {"hits": hits, "misses": rebuilds, "rebuilds": rebuilds}

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def payload(self, key: str) -> bytes:
        """``key``'s current summary as an ``FRQ1`` payload (touches LRU).

        A promoted (sharded) key serializes its union — the payload decodes
        as a plain :class:`~repro.fast.FastReqSketch` anywhere.
        """
        entry = self._touch(key)
        if entry is None:
            raise KeyError(key)
        return self._payload(entry)

    @staticmethod
    def _payload(entry: _Entry) -> bytes:
        if entry.sharded:
            return entry.sketch.collect().to_bytes()
        return entry.sketch.to_bytes()

    def spill(self, key: str) -> None:
        """Explicitly evict one resident key to the spill target."""
        entry = self._entries.get(key)
        if entry is None:
            if key in self._spilled:
                return
            raise KeyError(key)
        self._evict(key, entry)

    def _evict(self, key: str, entry: _Entry) -> None:
        if self._spill_save is None:
            raise ServiceError("no spill target configured")
        self._spill_save(key, self._payload(entry))
        del self._entries[key]
        self._retained_total -= entry.retained
        self._spilled[key] = True
        self.spill_count += 1
        # The reloaded sketch restarts its counters at zero; fold the
        # evicted sketch's into the store accumulator so aggregate
        # query-index stats stay monotonic across spill/reload cycles.
        self._index_hits_evicted += int(getattr(entry.sketch, "query_index_hits", 0))
        self._index_rebuilds_evicted += int(getattr(entry.sketch, "query_index_rebuilds", 0))

    def _enforce_budget(self, *, keep: str) -> None:
        """Spill LRU keys until back under budget (never the active key)."""
        while self._retained_total > self.memory_budget and len(self._entries) > 1:
            victim = next(iter(self._entries))
            if victim == keep:
                # The active key is by definition MRU, so hitting it here
                # means it is the only resident key — handled by the loop
                # bound; this guards against callers racing the ordering.
                break
            self._evict(victim, self._entries[victim])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def key_stats(self, key: str) -> dict:
        """Per-key stats without changing residency or LRU order.

        A spilled key's numbers come from its payload header
        (:func:`~repro.fast.wire.peek_header`) — no decode, no reload.
        """
        entry = self._entries.get(key)
        if entry is not None:
            sketch = entry.sketch
            return {
                "key": key,
                "resident": True,
                "sharded": entry.sharded,
                "n": int(sketch.n),
                "retained": int(sketch.num_retained),
                "levels": int(
                    sketch.num_levels if not entry.sharded else sketch.collect().num_levels
                ),
            }
        if key in self._spilled:
            payload = self._spill_load(key) if self._spill_load else None
            if payload is None:
                raise ServiceError(f"spilled key {key!r} is missing from the spill target")
            header = peek_header(payload)
            return {
                "key": key,
                "resident": False,
                "sharded": False,
                "n": int(header.n),
                "retained": retained_in_payload(payload, header),
                "levels": int(header.num_levels),
                "payload_bytes": len(payload),
            }
        raise KeyError(key)

    def stats(self) -> dict:
        """Store-wide stats (cheap: no decodes, no reloads)."""
        return {
            "keys": len(self),
            "resident": len(self._entries),
            "spilled": len(self._spilled),
            "retained_items": self._retained_total,
            "memory_budget": self.memory_budget,
            "spill_count": self.spill_count,
            "load_count": self.load_count,
            "n_resident": sum(int(e.sketch.n) for e in self._entries.values()),
            "query_index": self.query_index_stats(),
        }

    def items(self) -> Iterator:
        """Iterate ``(key, entry)`` over resident keys (no LRU effect)."""
        return iter(self._entries.items())

"""Deterministic disk-fault injection for the storage plane.

The persistence layer (:class:`~repro.service.persistence.WriteAheadLog`,
:class:`~repro.service.persistence.GroupCommitWal`,
:class:`~repro.service.persistence.SnapshotStore`) performs every byte of
file I/O through an **io layer** — by default the pass-through
:class:`DiskIo` below.  :class:`FaultyDisk` is the chaos double: it
consults a deterministic schedule per operation and can

* raise ``ENOSPC`` or ``EIO`` on a write or fsync,
* truncate a write short (the torn-write shape: some bytes land, then
  the device fails),
* flip a bit on a read (silent bit rot, surfaced only by checksums),
* delay an fsync (a stalling device), and
* go **full** — a sticky ``ENOSPC`` on every write/fsync until
  :meth:`FaultyDisk.free`, the disk-pressure shape that drives the
  server's degraded read-only mode.

Determinism mirrors :mod:`repro.service.faultproxy`: a
:class:`SeededDiskFaults` schedule draws from ``random.Random(seed)``
only — same seed, same operation-level fault sequence — and a
:class:`ScriptedDiskFaults` schedule names the exact operation index to
fault, per operation kind.  Operation indices are per-kind monotonic
counters over the lifetime of the :class:`FaultyDisk` (the 3rd write is
``writes`` index 2 no matter which file it touched), so a test can say
"the 5th write hits ENOSPC" and mean exactly that.

Fault actions (strings or tuples):

* ``"pass"`` — perform the operation unchanged.
* ``"enospc"`` — raise ``OSError(ENOSPC)`` (writes/fsyncs/flushes).
* ``"eio"`` — raise ``OSError(EIO)`` (any operation).
* ``"fill"`` — like ``"enospc"``, but sticky: the disk stays full (every
  later write/flush/fsync fails) until :meth:`FaultyDisk.free`.
* ``("short", nbytes)`` — write only the first ``nbytes``, then raise
  ``ENOSPC`` (a torn write: partial data is on disk).
* ``("delay", seconds)`` — sleep, then perform the operation.
* ``("bitflip", offset)`` — reads only: flip one bit of the byte at
  ``offset % len(data)`` in the returned bytes (the file itself is
  untouched — rot as the reader sees it).

Usage::

    disk = FaultyDisk(schedule=ScriptedDiskFaults(writes={4: "fill"}))
    service = QuantileService(data_dir=tmp, io_layer=disk, ...)
    ...
    disk.free()   # space returns; the server exits degraded mode
"""

from __future__ import annotations

import errno
import os
import random
import shutil
import time
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = [
    "DiskIo",
    "FaultyDisk",
    "ScriptedDiskFaults",
    "SeededDiskFaults",
    "DISK_PASS",
]

DISK_PASS = "pass"

Action = Union[str, tuple]


class DiskIo:
    """The pass-through io layer: real file I/O, no faults.

    One module-level instance (:data:`DEFAULT_IO`) is shared by every
    persistence object that is not explicitly given a layer, so the hot
    path costs one attribute call over direct I/O.
    """

    def write(self, handle, data) -> int:
        """Write ``data`` to an open binary file object."""
        return handle.write(data)

    def flush(self, handle) -> None:
        """Flush a file object's userspace buffer to the OS."""
        handle.flush()

    def fsync(self, handle) -> None:
        """Force a file object's data to the platter."""
        os.fsync(handle.fileno())

    def read_bytes(self, path) -> bytes:
        """Read a whole file (snapshot loads go through here)."""
        return Path(path).read_bytes()

    def disk_free(self, path) -> Optional[int]:
        """Free bytes on the filesystem holding ``path`` (None: unknown)."""
        try:
            return shutil.disk_usage(path).free
        except OSError:
            return None


#: The shared no-fault layer (default for every persistence object).
DEFAULT_IO = DiskIo()


class ScriptedDiskFaults:
    """Explicit per-kind ``{operation_index: action}`` schedules.

    Args:
        writes: Faults for ``write`` operations (indices count every
            write through the layer, across all files).
        flushes: Faults for ``flush`` operations.
        fsyncs: Faults for ``fsync`` operations.
        reads: Faults for ``read_bytes`` operations.
    """

    def __init__(
        self,
        writes: Optional[Dict[int, Action]] = None,
        flushes: Optional[Dict[int, Action]] = None,
        fsyncs: Optional[Dict[int, Action]] = None,
        reads: Optional[Dict[int, Action]] = None,
    ) -> None:
        self._kinds = {
            "write": dict(writes or {}),
            "flush": dict(flushes or {}),
            "fsync": dict(fsyncs or {}),
            "read": dict(reads or {}),
        }

    def action(self, kind: str, index: int) -> Action:
        return self._kinds[kind].get(index, DISK_PASS)


class SeededDiskFaults:
    """A seeded random schedule: each operation independently draws.

    Args:
        seed: The RNG seed — same seed, same fault sequence.
        enospc_rate, eio_rate, short_rate: Per-write probabilities
            (evaluated in that order on one uniform draw).
        delay_rate: Per-fsync probability of a ``("delay", delay)``.
        bitflip_rate: Per-read probability of a single-bit flip at a
            seeded offset.
        delay: Seconds for a delay fault (kept small for fast suites).
        first_faultable: Per-kind operation index before which every
            operation passes — lets recovery/startup I/O through so
            faults land on steady-state traffic.
    """

    def __init__(
        self,
        seed: int,
        *,
        enospc_rate: float = 0.0,
        eio_rate: float = 0.0,
        short_rate: float = 0.0,
        delay_rate: float = 0.0,
        bitflip_rate: float = 0.0,
        delay: float = 0.002,
        first_faultable: int = 0,
    ) -> None:
        self._rng = random.Random(seed)
        self._delay = delay
        self._first = first_faultable
        self._write_bands = []
        edge = 0.0
        for rate, name in (
            (enospc_rate, "enospc"),
            (eio_rate, "eio"),
            (short_rate, "short"),
        ):
            edge += rate
            self._write_bands.append((edge, name))
        if edge > 1.0:
            raise ValueError(f"write fault rates sum to {edge} > 1")
        self._delay_rate = delay_rate
        self._bitflip_rate = bitflip_rate

    def action(self, kind: str, index: int) -> Action:
        # One draw pair per operation regardless of outcome, so the
        # schedule for operation k never depends on which faults fired.
        draw = self._rng.random()
        aux = self._rng.random()
        if index < self._first:
            return DISK_PASS
        if kind in ("write", "flush"):
            for edge, name in self._write_bands:
                if draw < edge:
                    if name == "short":
                        return ("short", 1 + int(aux * 8))
                    return name
            return DISK_PASS
        if kind == "fsync":
            if draw < self._delay_rate:
                return ("delay", self._delay)
            return DISK_PASS
        if kind == "read":
            if draw < self._bitflip_rate:
                return ("bitflip", int(aux * (1 << 20)))
            return DISK_PASS
        return DISK_PASS


def _enospc() -> OSError:
    return OSError(errno.ENOSPC, os.strerror(errno.ENOSPC))


def _eio() -> OSError:
    return OSError(errno.EIO, os.strerror(errno.EIO))


class FaultyDisk(DiskIo):
    """A :class:`DiskIo` that injects scheduled + manual faults.

    Besides the schedule, :meth:`fill`/:meth:`free` drive the sticky
    disk-full state by hand (what the ENOSPC chaos tests use to bound
    exactly when space vanishes and returns), and ``free_bytes`` pins
    the value :meth:`disk_free` reports — the degraded-mode exit probe
    reads it, so a test controls when "space came back" without filling
    a real filesystem.
    """

    def __init__(self, schedule=None, *, free_bytes: Optional[int] = None) -> None:
        self.schedule = schedule if schedule is not None else ScriptedDiskFaults()
        #: When set, :meth:`disk_free` reports this instead of the real fs.
        self.free_bytes = free_bytes
        self._full = False
        self._counts: Dict[str, int] = {"write": 0, "flush": 0, "fsync": 0, "read": 0}
        self.faults: Dict[str, int] = {}

    # -- manual disk-pressure control ----------------------------------

    def fill(self) -> None:
        """Disk full from now on: every write/flush/fsync raises ENOSPC."""
        self._full = True
        if self.free_bytes is None:
            self.free_bytes = 0
        else:
            self.free_bytes = 0

    def free(self, free_bytes: int = 1 << 30) -> None:
        """Space returns; writes succeed again and ``disk_free`` reports
        ``free_bytes``."""
        self._full = False
        self.free_bytes = free_bytes

    @property
    def full(self) -> bool:
        return self._full

    # -- schedule plumbing ---------------------------------------------

    def _next(self, kind: str) -> Action:
        index = self._counts[kind]
        self._counts[kind] = index + 1
        return self.schedule.action(kind, index)

    def _record(self, name: str) -> None:
        self.faults[name] = self.faults.get(name, 0) + 1

    def op_counts(self) -> Dict[str, int]:
        return dict(self._counts)

    # -- the faultable operations --------------------------------------

    def write(self, handle, data) -> int:
        action = self._next("write")
        if self._full:
            self._record("enospc")
            raise _enospc()
        if action == DISK_PASS:
            return handle.write(data)
        if action == "enospc":
            self._record("enospc")
            raise _enospc()
        if action == "eio":
            self._record("eio")
            raise _eio()
        if action == "fill":
            self._record("enospc")
            self.fill()
            raise _enospc()
        if action[0] == "short":
            cut = max(0, min(int(action[1]), len(data) - 1))
            if cut:
                handle.write(data[:cut])
            self._record("short")
            raise _enospc()
        if action[0] == "delay":
            time.sleep(action[1])
            return handle.write(data)
        raise ValueError(f"unknown write fault action {action!r}")

    def flush(self, handle) -> None:
        action = self._next("flush")
        if self._full:
            self._record("enospc")
            raise _enospc()
        if action == DISK_PASS:
            return handle.flush()
        if action == "enospc":
            self._record("enospc")
            raise _enospc()
        if action == "eio":
            self._record("eio")
            raise _eio()
        if action == "fill":
            self._record("enospc")
            self.fill()
            raise _enospc()
        if action[0] == "delay":
            time.sleep(action[1])
            return handle.flush()
        raise ValueError(f"unknown flush fault action {action!r}")

    def fsync(self, handle) -> None:
        action = self._next("fsync")
        if self._full:
            self._record("enospc")
            raise _enospc()
        if action == DISK_PASS:
            return os.fsync(handle.fileno())
        if action == "enospc":
            self._record("enospc")
            raise _enospc()
        if action == "eio":
            self._record("eio")
            raise _eio()
        if action == "fill":
            self._record("enospc")
            self.fill()
            raise _enospc()
        if action[0] == "delay":
            time.sleep(action[1])
            self._record("delay")
            return os.fsync(handle.fileno())
        raise ValueError(f"unknown fsync fault action {action!r}")

    def read_bytes(self, path) -> bytes:
        action = self._next("read")
        data = Path(path).read_bytes()
        if action == DISK_PASS:
            return data
        if action == "eio":
            self._record("eio")
            raise _eio()
        if action[0] == "bitflip" and data:
            self._record("bitflip")
            flipped = bytearray(data)
            flipped[int(action[1]) % len(data)] ^= 0x01
            return bytes(flipped)
        return data

    def disk_free(self, path) -> Optional[int]:
        if self.free_bytes is not None:
            return self.free_bytes
        return super().disk_free(path)

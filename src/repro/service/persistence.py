"""Durable state for the quantile service: snapshots + a write-ahead log.

Two complementary mechanisms, both built on the ``FRQ1`` wire format of
:mod:`repro.fast.wire`, reconstruct every key after a restart:

* **Per-key snapshots** (:class:`SnapshotStore`) — one file per key
  holding the key (snapshots must be enumerable at recovery, so the key
  is embedded; file names are digests), the sequence number of the last
  WAL record folded into it, and the sketch's ``FRQ1`` payload.  Snapshot
  files are written atomically (temp file + rename) so a crash mid-write
  leaves the previous snapshot intact.
* **An append-only batch WAL** (:class:`WriteAheadLog`) — every ingest
  batch (raw float64 values) and merge (an ``FRQ1`` donor payload) is
  appended with a monotonically increasing sequence number and a CRC32
  before it is applied to the store.  Each record is self-delimiting, so
  replay after a crash walks the log and stops cleanly at a torn tail —
  and opening the log truncates that tail away, so records appended after
  a restart are never shadowed behind unreadable bytes.

**Recovery** (:func:`recover`) registers every snapshot, then replays WAL
records whose sequence number exceeds the owning key's snapshot sequence.
Because :class:`~repro.service.SketchStore` derives per-key RNG seeds
deterministically, a key recovered purely from the WAL re-consumes the
exact same coin stream as the original process and ends *bit-identical*;
a key recovered from a snapshot with no later records is trivially
identical (same payload).  Only the snapshot-plus-later-records case
re-randomizes the post-snapshot compaction coins — still inside the
paper's ``(1 ± eps)`` guarantee, per Theorem 3's analysis of resumed
merges.

**Compaction**: after a full snapshot pass every record in the WAL is
covered by some snapshot, so the log is truncated.  Sequence numbers keep
counting up across truncations (they are persisted in the snapshots), so
"newer than the snapshot" stays well-defined forever.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterator, NamedTuple, Optional, Tuple

from repro.errors import ServiceError
from repro.service.store import spill_filename

__all__ = ["WalRecord", "WriteAheadLog", "SnapshotStore", "recover", "WAL_INGEST", "WAL_MERGE"]

#: Record op: ``payload`` is a raw little-endian float64 batch.
WAL_INGEST = 1
#: Record op: ``payload`` is an ``FRQ1`` donor sketch to union in.
WAL_MERGE = 2

#: Per-record framing: body length, CRC32 of the body.
_RECORD_HEAD = struct.Struct("<II")
#: Body prefix: op, sequence number, key length (key + payload follow).
_BODY_HEAD = struct.Struct("<BQH")

_SNAP_HEAD = struct.Struct("<QH")


def _fsync_dir(directory: Path) -> None:
    """Force a directory entry (a just-completed rename) to disk."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WalRecord(NamedTuple):
    op: int
    seq: int
    key: str
    payload: bytes


class WriteAheadLog:
    """An append-only, CRC-guarded record log.

    Records are framed ``<u32 body_len><u32 crc32(body)><body>`` with the
    body ``<u8 op><u64 seq><u16 key_len><key><payload>``.  Appends are
    buffered-write + ``flush()`` by default (data reaches the OS; survives
    a process crash).  Pass ``fsync=True`` for per-append ``os.fsync``
    (survives power loss, at a large throughput cost).

    Opening the log **self-heals a torn tail**: a crash mid-append can
    leave a partial record at the end of the file, and because replay
    stops at the first unreadable record, anything appended *after* that
    tear would be acknowledged yet invisible to every future recovery.
    ``__init__`` therefore trims the file to its longest valid record
    prefix (:attr:`healed_bytes` reports how much was dropped) before the
    append handle opens, keeping "appended" equivalent to "replayable".
    """

    def __init__(self, path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Torn-tail bytes truncated away when this handle opened (0 = clean).
        self.healed_bytes = self._heal_torn_tail()
        self._file = open(self.path, "ab")

    def append(self, op: int, seq: int, key: str, payload: bytes) -> None:
        raw_key = key.encode("utf-8")
        if len(raw_key) > 0xFFFF:
            raise ServiceError(f"key of {len(raw_key)} UTF-8 bytes exceeds the 65535-byte cap")
        body = _BODY_HEAD.pack(op, seq, len(raw_key)) + raw_key + payload
        self._file.write(_RECORD_HEAD.pack(len(body), zlib.crc32(body)))
        self._file.write(body)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())

    def replay(self, *, strict: bool = False) -> Iterator[WalRecord]:
        """Yield every intact record in order.

        A torn tail (truncated record, CRC mismatch) ends iteration
        cleanly — that is the expected state after a crash mid-append.
        With ``strict=True`` it raises :class:`~repro.errors.ServiceError`
        instead (for integrity audits).

        Streams record by record from its own file handle (never the
        whole log at once — recovery after a crash mid-burst must not
        need WAL-sized memory; appends through the live handle keep
        working independently).
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            for record, _end in self._records(handle, strict=strict):
                yield record

    @staticmethod
    def _records(handle, *, strict: bool) -> Iterator[Tuple[WalRecord, int]]:
        """Yield ``(record, end_offset)`` per intact record from ``handle``."""
        offset = 0
        while True:
            head = handle.read(_RECORD_HEAD.size)
            if not head:
                return
            if len(head) < _RECORD_HEAD.size:
                if strict:
                    raise ServiceError(f"torn WAL record header at byte {offset}")
                return
            length, crc = _RECORD_HEAD.unpack(head)
            body = handle.read(length)
            if len(body) < length:
                if strict:
                    raise ServiceError(f"torn WAL record body at byte {offset}")
                return
            if zlib.crc32(body) != crc:
                if strict:
                    raise ServiceError(f"WAL CRC mismatch at byte {offset}")
                return
            try:
                op, seq, key_len = _BODY_HEAD.unpack_from(body, 0)
                raw_key = body[_BODY_HEAD.size : _BODY_HEAD.size + key_len]
                if len(raw_key) != key_len:
                    raise ValueError("record body shorter than its declared key")
                key = raw_key.decode("utf-8")
            except (struct.error, ValueError, UnicodeDecodeError) as exc:
                if strict:
                    raise ServiceError(
                        f"malformed WAL record at byte {offset}: {exc}"
                    ) from exc
                return
            offset += _RECORD_HEAD.size + length
            yield WalRecord(op, seq, key, body[_BODY_HEAD.size + key_len :]), offset

    def _heal_torn_tail(self) -> int:
        """Truncate a torn *tail* left by a crash; returns the bytes dropped.

        Only a genuine torn append is healed: the invalid region must be a
        single record whose declared extent reaches (or overruns) the end
        of the file — the signature of a crash mid-append.  An unreadable
        record with more data *after* its declared end is mid-file
        corruption (bit rot, a bad sector): truncating there would destroy
        every later record, so it raises instead — the operator keeps the
        damaged file for offline repair (``replay(strict=True)`` pinpoints
        the damage).

        The scan re-reads the whole log once before :func:`recover` reads
        it again; recovery is rare (startup only) and the log is bounded
        by the checkpoint interval, so correctness of this path wins over
        saving the extra pass.
        """
        if not self.path.exists():
            return 0
        size = self.path.stat().st_size
        valid = 0
        with open(self.path, "rb") as handle:
            for _record, end in self._records(handle, strict=False):
                valid = end
        torn = size - valid
        if not torn:
            return 0
        with open(self.path, "rb") as handle:
            handle.seek(valid)
            head = handle.read(_RECORD_HEAD.size)
        if len(head) == _RECORD_HEAD.size:
            (length, _crc) = _RECORD_HEAD.unpack(head)
            if valid + _RECORD_HEAD.size + length < size:
                raise ServiceError(
                    f"WAL record at byte {valid} is unreadable but is not the "
                    f"last record ({size - valid} bytes follow): mid-file "
                    "corruption, not a torn append — refusing to truncate "
                    "acknowledged records; repair the log offline "
                    "(replay(strict=True) locates the damage)"
                )
        with open(self.path, "r+b") as handle:
            handle.truncate(valid)
        return torn

    def truncate(self) -> None:
        """Drop every record (call only when all are covered by snapshots)."""
        self._file.close()
        self._file = open(self.path, "wb")
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())

    @property
    def size_bytes(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SnapshotStore:
    """Per-key snapshot files: ``<u64 seq><u16 key_len><key><FRQ1 payload>``.

    With ``fsync=True`` every save is forced to disk (file data before the
    rename, the directory entry after it), matching the power-loss
    durability of an ``fsync``-ing WAL — required when a snapshot is about
    to justify truncating the WAL records it covers.
    """

    def __init__(self, directory, *, fsync: bool = False) -> None:
        self.directory = Path(directory)
        self.fsync = fsync

    def save(self, key: str, seq: int, payload: bytes) -> None:
        """Atomically write ``key``'s snapshot (temp file + rename)."""
        raw_key = key.encode("utf-8")
        if len(raw_key) > 0xFFFF:
            raise ServiceError(f"key of {len(raw_key)} UTF-8 bytes exceeds the 65535-byte cap")
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / spill_filename(key)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            handle.write(_SNAP_HEAD.pack(seq, len(raw_key)) + raw_key + payload)
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())
        tmp.replace(path)
        if self.fsync:
            _fsync_dir(self.directory)

    def load(self, key: str) -> Optional[Tuple[int, bytes]]:
        """``(seq, payload)`` for ``key``, or ``None`` if never snapshotted."""
        path = self.directory / spill_filename(key)
        if not path.exists():
            return None
        seq, _key, payload = self._parse(path)
        return seq, payload

    def load_all(self) -> Dict[str, Tuple[int, bytes]]:
        """Every snapshot on disk, ``{key: (seq, payload)}``."""
        if not self.directory.exists():
            return {}
        result: Dict[str, Tuple[int, bytes]] = {}
        for path in sorted(self.directory.glob("*.frq1")):
            seq, key, payload = self._parse(path)
            result[key] = (seq, payload)
        return result

    def iter_meta(self):
        """Yield ``(key, seq)`` per snapshot, reading only the file heads.

        Recovery registers every snapshotted key without touching its
        payload (keys load lazily through the store's spill path), so
        startup I/O stays O(keys), not O(total snapshot bytes).
        """
        if not self.directory.exists():
            return
        for path in sorted(self.directory.glob("*.frq1")):
            with open(path, "rb") as handle:
                head = handle.read(_SNAP_HEAD.size)
                try:
                    seq, key_len = _SNAP_HEAD.unpack(head)
                    raw_key = handle.read(key_len)
                    if len(raw_key) != key_len:
                        raise ValueError("snapshot shorter than its declared key")
                    key = raw_key.decode("utf-8")
                except (struct.error, ValueError, UnicodeDecodeError) as exc:
                    raise ServiceError(f"corrupt snapshot file {path}: {exc}") from exc
            yield key, seq

    @staticmethod
    def _parse(path: Path) -> Tuple[int, str, bytes]:
        data = path.read_bytes()
        try:
            seq, key_len = _SNAP_HEAD.unpack_from(data, 0)
            raw_key = data[_SNAP_HEAD.size : _SNAP_HEAD.size + key_len]
            if len(raw_key) != key_len:
                raise ValueError("snapshot shorter than its declared key")
            key = raw_key.decode("utf-8")
        except (struct.error, ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(f"corrupt snapshot file {path}: {exc}") from exc
        return seq, key, data[_SNAP_HEAD.size + key_len :]


def recover(
    store,
    wal: WriteAheadLog,
    snapshots: SnapshotStore,
    applied_seq: Dict[str, int],
    snap_seq: Dict[str, int],
) -> int:
    """Rebuild ``store`` from disk; returns the next free sequence number.

    Every snapshotted key is registered with the store as *spilled* (its
    payload loads lazily through the store's spill callbacks, which the
    server wires to ``snapshots`` — so recovery cost is O(WAL), not
    O(keyspace)).  WAL records newer than the owning key's snapshot are
    then re-applied in order; applying loads keys into residency and the
    store's normal LRU budget enforcement handles any overflow.

    ``applied_seq`` and ``snap_seq`` are the caller's live sequence maps,
    filled in place.  Each record's sequence is entered into
    ``applied_seq`` *before* it is applied: applying can trigger an LRU
    spill, and the spill callback snapshots with ``applied_seq[key]`` —
    recording the pre-apply sequence there would stamp a snapshot that
    already contains the record as not containing it, double-applying it
    on the next recovery.
    """
    import numpy as np

    max_seq = 0
    for key, seq in snapshots.iter_meta():
        snap_seq[key] = seq
        applied_seq[key] = seq
        max_seq = max(max_seq, seq)
        store.register_spilled(key)
    for record in wal.replay():
        max_seq = max(max_seq, record.seq)
        if record.seq <= snap_seq.get(record.key, -1):
            continue
        applied_seq[record.key] = record.seq
        try:
            if record.op == WAL_INGEST:
                store.update_many(record.key, np.frombuffer(record.payload, dtype="<f8"))
            elif record.op == WAL_MERGE:
                store.merge_payload(record.key, record.payload)
            else:
                raise ServiceError(f"unknown WAL op {record.op}")
        except Exception as exc:
            raise ServiceError(
                f"WAL record seq={record.seq} key={record.key!r} cannot be "
                f"applied ({exc}); the log is inconsistent with the store "
                "configuration — refusing to start with partial state"
            ) from exc
    return max_seq + 1

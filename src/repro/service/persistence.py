"""Durable state for the quantile service: snapshots + a write-ahead log.

Two complementary mechanisms, both built on the ``FRQ1`` wire format of
:mod:`repro.fast.wire`, reconstruct every key after a restart:

* **Per-key snapshots** (:class:`SnapshotStore`) — one file per key
  holding the key (snapshots must be enumerable at recovery, so the key
  is embedded; file names are digests), the sequence number of the last
  WAL record folded into it, and the sketch's ``FRQ1`` payload.  Snapshot
  files are written atomically (temp file + rename) so a crash mid-write
  leaves the previous snapshot intact.
* **An append-only batch WAL** (:class:`WriteAheadLog`) — every ingest
  batch (raw float64 values) and merge (an ``FRQ1`` donor payload) is
  appended with a monotonically increasing sequence number and a CRC32
  before it is applied to the store.  Each record is self-delimiting, so
  replay after a crash walks the log and stops cleanly at a torn tail —
  and opening the log truncates that tail away, so records appended after
  a restart are never shadowed behind unreadable bytes.
  :class:`GroupCommitWal` wraps the same log with a background writer
  thread and **group commit**: appends enqueue and return a commit
  ticket, the writer drains the queue and pays one flush/fsync per
  batch, and acknowledgements gate on the ticket — identical replay
  semantics, amortized durability cost.

**Recovery** (:func:`recover`) registers every snapshot, then replays WAL
records whose sequence number exceeds the owning key's snapshot sequence.
Because :class:`~repro.service.SketchStore` derives per-key RNG seeds
deterministically, a key recovered purely from the WAL re-consumes the
exact same coin stream as the original process and ends *bit-identical*;
a key recovered from a snapshot with no later records is trivially
identical (same payload).  Only the snapshot-plus-later-records case
re-randomizes the post-snapshot compaction coins — still inside the
paper's ``(1 ± eps)`` guarantee, per Theorem 3's analysis of resumed
merges.

**Compaction**: after a full snapshot pass every record in the WAL is
covered by some snapshot, so the log is truncated.  Sequence numbers keep
counting up across truncations (they are persisted in the snapshots), so
"newer than the snapshot" stays well-defined forever.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from collections import deque
from concurrent.futures import Future
from pathlib import Path
from typing import Dict, Iterator, NamedTuple, Optional, Tuple

from repro.errors import ServiceError, SnapshotCorruptError
from repro.service.faultdisk import DEFAULT_IO
from repro.service.log import logger as _log
from repro.service.store import spill_filename

__all__ = [
    "WalRecord",
    "WriteAheadLog",
    "GroupCommitWal",
    "SnapshotStore",
    "recover",
    "WAL_INGEST",
    "WAL_MERGE",
    "WAL_SEQ_INGEST",
    "WAL_WINDOW_INGEST",
    "WAL_SEQ_WINDOW_INGEST",
    "WAL_MIGRATE_SET",
    "pack_session_header",
    "unpack_session_header",
]

#: Record op: ``payload`` is a raw little-endian float64 batch.
WAL_INGEST = 1
#: Record op: ``payload`` is an ``FRQ1`` donor sketch to union in.
WAL_MERGE = 2
#: Record op: an ingest batch from a sequenced (exactly-once) session.
#: ``payload`` is ``<u16 sid_len><sid><u64 max_frame_seq>`` followed by
#: the raw float64 batch; replay folds the session mark back into the
#: :class:`~repro.service.resilience.SessionTable` — **even for records
#: the key's snapshot already covers** — so dedup survives restarts.
WAL_SEQ_INGEST = 3
#: Record op: a *windowed* ingest batch.  ``payload`` is the timestamps
#: then the values, as two equal-length raw little-endian float64 halves
#: — timestamps ride in the log so replay rebuilds the identical ring
#: (bucketing is a pure function of the payload, never of replay time).
WAL_WINDOW_INGEST = 4
#: Windowed ingest from a sequenced (exactly-once) session: the
#: ``WAL_SEQ_INGEST`` session header followed by the windowed halves.
WAL_SEQ_WINDOW_INGEST = 5
#: Record op: a migration state transfer.  ``payload`` is an ``MB1``
#: bundle (:func:`repro.service.protocol.pack_migration_bundle`): the
#: key's FRQ1 payload, its per-session high-water marks, and its FRW1
#: windowed rings.  Replay **replaces** the key's state (replace, not
#: merge, so a re-pushed bundle after an aborted rebalance is
#: idempotent) and folds the marks into the session table — even for
#: records a snapshot already covers, mirroring ``WAL_SEQ_INGEST``.
WAL_MIGRATE_SET = 6

#: Per-record framing: body length, CRC32 of the body.
_RECORD_HEAD = struct.Struct("<II")
#: Body prefix: op, sequence number, key length (key + payload follow).
_BODY_HEAD = struct.Struct("<BQH")

_SNAP_HEAD = struct.Struct("<QH")

#: Snapshot file framing: magic, then the legacy body, then a CRC32
#: footer over the body.  Files written before the framing existed start
#: straight at the body and carry no checksum; they still load (scrub
#: reports them as unverifiable) and are rewritten framed on next save.
_SNAP_MAGIC = b"FRS1"
_SNAP_CRC = struct.Struct("<I")

#: ``WAL_SEQ_INGEST`` payload prefix: session-id length (id + u64 seq follow).
_SESSION_HEAD = struct.Struct("<H")
_SESSION_SEQ = struct.Struct("<Q")


def pack_session_header(sid: str, seq: int) -> bytes:
    """The ``WAL_SEQ_INGEST`` payload prefix for ``(sid, seq)``."""
    raw = sid.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ServiceError(f"session id of {len(raw)} UTF-8 bytes exceeds the 65535-byte cap")
    return _SESSION_HEAD.pack(len(raw)) + raw + _SESSION_SEQ.pack(seq)


def unpack_session_header(payload) -> Tuple[str, int, int]:
    """Decode a session header; returns ``(sid, seq, values_offset)``."""
    try:
        (sid_len,) = _SESSION_HEAD.unpack_from(payload, 0)
        raw = bytes(payload[_SESSION_HEAD.size : _SESSION_HEAD.size + sid_len])
        if len(raw) != sid_len:
            raise ValueError("payload shorter than its declared session id")
        sid = raw.decode("utf-8")
        (seq,) = _SESSION_SEQ.unpack_from(payload, _SESSION_HEAD.size + sid_len)
    except (struct.error, ValueError, UnicodeDecodeError) as exc:
        raise ServiceError(f"corrupt WAL session header: {exc}") from exc
    return sid, seq, _SESSION_HEAD.size + sid_len + _SESSION_SEQ.size


def _fsync_dir(directory: Path) -> None:
    """Force a directory entry (a just-completed rename) to disk."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WalRecord(NamedTuple):
    op: int
    seq: int
    key: str
    payload: bytes


class WriteAheadLog:
    """An append-only, CRC-guarded record log.

    Records are framed ``<u32 body_len><u32 crc32(body)><body>`` with the
    body ``<u8 op><u64 seq><u16 key_len><key><payload>``.  Appends are
    buffered-write + ``flush()`` by default (data reaches the OS; survives
    a process crash).  Pass ``fsync=True`` for per-append ``os.fsync``
    (survives power loss, at a large throughput cost).

    Opening the log **self-heals a torn tail**: a crash mid-append can
    leave a partial record at the end of the file, and because replay
    stops at the first unreadable record, anything appended *after* that
    tear would be acknowledged yet invisible to every future recovery.
    ``__init__`` therefore trims the file to its longest valid record
    prefix (:attr:`healed_bytes` reports how much was dropped) before the
    append handle opens, keeping "appended" equivalent to "replayable".

    A failed write **poisons** the log, exactly like the group-commit
    writer: the failure may have left a partial record mid-file, and
    appending past it would shadow acknowledged records behind bytes
    replay cannot cross.  All further appends raise; recovery heals the
    torn tail at next open (the partial record was never acknowledged,
    so truncating it loses nothing).

    ``io`` routes every byte of file I/O (defaults to the real-disk
    pass-through); chaos tests inject a
    :class:`~repro.service.faultdisk.FaultyDisk` here.
    """

    def __init__(self, path, *, fsync: bool = False, io=None) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.io = DEFAULT_IO if io is None else io
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Torn-tail bytes truncated away when this handle opened (0 = clean).
        self.healed_bytes = self._heal_torn_tail()
        self._file = open(self.path, "ab")
        #: First write failure; once set the log is poisoned.
        self._failed: Optional[BaseException] = None

    @property
    def failed(self) -> Optional[BaseException]:
        return self._failed

    def _check_usable(self) -> None:
        if self._failed is not None:
            raise ServiceError(
                f"write-ahead log failed and is poisoned: {self._failed} — "
                "appending past a failed write could leave a torn record "
                "mid-file that shadows later records from replay"
            )

    def append(self, op: int, seq: int, key: str, payload: bytes, *, flush: bool = True) -> None:
        """Append one record.  ``flush=False`` defers the buffered-write
        flush (and any fsync) to a later :meth:`commit` — the group-commit
        writer uses this to pay one flush/fsync for a whole batch."""
        self._check_usable()
        raw_key = key.encode("utf-8")
        if len(raw_key) > 0xFFFF:
            raise ServiceError(f"key of {len(raw_key)} UTF-8 bytes exceeds the 65535-byte cap")
        body = _BODY_HEAD.pack(op, seq, len(raw_key)) + raw_key + payload
        try:
            self.io.write(self._file, _RECORD_HEAD.pack(len(body), zlib.crc32(body)))
            self.io.write(self._file, body)
            if flush:
                self.io.flush(self._file)
                if self.fsync:
                    self.io.fsync(self._file)
        except Exception as exc:
            self._failed = exc
            raise

    def commit(self, *, fsync: Optional[bool] = None) -> None:
        """Flush buffered appends to the OS (and optionally the platter)."""
        self._check_usable()
        try:
            self.io.flush(self._file)
            if self.fsync if fsync is None else fsync:
                self.io.fsync(self._file)
        except Exception as exc:
            self._failed = exc
            raise

    def replay(self, *, strict: bool = False) -> Iterator[WalRecord]:
        """Yield every intact record in order.

        A torn tail (truncated record, CRC mismatch) ends iteration
        cleanly — that is the expected state after a crash mid-append.
        With ``strict=True`` it raises :class:`~repro.errors.ServiceError`
        instead (for integrity audits).

        Streams record by record from its own file handle (never the
        whole log at once — recovery after a crash mid-burst must not
        need WAL-sized memory; appends through the live handle keep
        working independently).
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            for record, _end in self._records(handle, strict=strict):
                yield record

    @staticmethod
    def _records(handle, *, strict: bool) -> Iterator[Tuple[WalRecord, int]]:
        """Yield ``(record, end_offset)`` per intact record from ``handle``."""
        offset = 0
        while True:
            head = handle.read(_RECORD_HEAD.size)
            if not head:
                return
            if len(head) < _RECORD_HEAD.size:
                if strict:
                    raise ServiceError(f"torn WAL record header at byte {offset}")
                return
            length, crc = _RECORD_HEAD.unpack(head)
            body = handle.read(length)
            if len(body) < length:
                if strict:
                    raise ServiceError(f"torn WAL record body at byte {offset}")
                return
            if zlib.crc32(body) != crc:
                if strict:
                    raise ServiceError(f"WAL CRC mismatch at byte {offset}")
                return
            try:
                op, seq, key_len = _BODY_HEAD.unpack_from(body, 0)
                raw_key = body[_BODY_HEAD.size : _BODY_HEAD.size + key_len]
                if len(raw_key) != key_len:
                    raise ValueError("record body shorter than its declared key")
                key = raw_key.decode("utf-8")
            except (struct.error, ValueError, UnicodeDecodeError) as exc:
                if strict:
                    raise ServiceError(
                        f"malformed WAL record at byte {offset}: {exc}"
                    ) from exc
                return
            offset += _RECORD_HEAD.size + length
            yield WalRecord(op, seq, key, body[_BODY_HEAD.size + key_len :]), offset

    def _heal_torn_tail(self) -> int:
        """Truncate a torn *tail* left by a crash; returns the bytes dropped.

        Only a genuine torn append is healed: the invalid region must be a
        single record whose declared extent reaches (or overruns) the end
        of the file — the signature of a crash mid-append.  An unreadable
        record with more data *after* its declared end is mid-file
        corruption (bit rot, a bad sector): truncating there would destroy
        every later record, so it raises instead — the operator keeps the
        damaged file for offline repair (``replay(strict=True)`` pinpoints
        the damage).

        The scan re-reads the whole log once before :func:`recover` reads
        it again; recovery is rare (startup only) and the log is bounded
        by the checkpoint interval, so correctness of this path wins over
        saving the extra pass.
        """
        if not self.path.exists():
            return 0
        size = self.path.stat().st_size
        valid = 0
        with open(self.path, "rb") as handle:
            for _record, end in self._records(handle, strict=False):
                valid = end
        torn = size - valid
        if not torn:
            return 0
        with open(self.path, "rb") as handle:
            handle.seek(valid)
            head = handle.read(_RECORD_HEAD.size)
        if len(head) == _RECORD_HEAD.size:
            (length, _crc) = _RECORD_HEAD.unpack(head)
            if valid + _RECORD_HEAD.size + length < size:
                raise ServiceError(
                    f"WAL record at byte {valid} is unreadable but is not the "
                    f"last record ({size - valid} bytes follow): mid-file "
                    "corruption, not a torn append — refusing to truncate "
                    "acknowledged records; repair the log offline "
                    "(replay(strict=True) locates the damage)"
                )
        with open(self.path, "r+b") as handle:
            handle.truncate(valid)
        return torn

    def truncate(self) -> None:
        """Drop every record (call only when all are covered by snapshots)."""
        self._check_usable()
        self._file.close()
        self._file = open(self.path, "wb")
        self.io.flush(self._file)
        if self.fsync:
            self.io.fsync(self._file)

    @property
    def size_bytes(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class GroupCommitWal:
    """A :class:`WriteAheadLog` with an off-loop writer and group commit.

    :meth:`append` enqueues the record and returns a **commit ticket** (a
    :class:`concurrent.futures.Future`) immediately — no file I/O on the
    caller's thread.  A dedicated writer thread drains the whole queue,
    writes every queued record, then pays **one** flush (and one
    ``os.fsync`` when ``fsync=True``) for the batch before resolving the
    tickets.  Callers that acknowledge writes (the server) release the ack
    only once the ticket resolves, so the durability contract is identical
    to the synchronous log — acknowledged means replayable — while the
    fsync cost is amortized across every record that arrived during the
    previous commit.

    Records hit the file in append order (single FIFO queue), so replay
    and torn-tail healing are exactly :class:`WriteAheadLog`'s.  A crash
    loses at most the queued-but-uncommitted suffix — records whose
    tickets never resolved and whose writes were therefore never
    acknowledged.

    Thread model: appends come from one thread (the asyncio event loop);
    the writer thread owns the file between barriers.  :meth:`barrier`
    blocks until everything queued is durable — checkpoints call it before
    truncating so no covered record can land after the truncate.
    """

    def __init__(self, path, *, fsync: bool = False, max_queue: int = 65536, io=None) -> None:
        # The inner log never fsyncs per append; this class owns commits.
        self._inner = WriteAheadLog(path, fsync=False, io=io)
        self.fsync = fsync
        self.max_queue = max_queue
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._open_ticket: Optional[Future] = None
        self._committing = False
        self._closed = False
        self._crashed = False
        #: First commit failure; once set the log is poisoned (see _run).
        self._failed: Optional[BaseException] = None
        self.commit_count = 0
        self.committed_records = 0
        self.max_commit_batch = 0
        self.last_commit_batch = 0
        self.last_commit_seconds = 0.0
        self.total_commit_seconds = 0.0
        self._thread = threading.Thread(
            target=self._run, name="wal-group-commit", daemon=True
        )
        self._thread.start()

    # -- WriteAheadLog surface (recovery + introspection) --------------

    @property
    def path(self) -> Path:
        return self._inner.path

    @property
    def healed_bytes(self) -> int:
        return self._inner.healed_bytes

    @property
    def io(self):
        return self._inner.io

    @property
    def failed(self) -> Optional[BaseException]:
        """The poisoning commit failure, or ``None`` while healthy."""
        with self._cond:
            return self._failed

    @property
    def size_bytes(self) -> int:
        return self._inner.size_bytes

    def replay(self, *, strict: bool = False) -> Iterator[WalRecord]:
        return self._inner.replay(strict=strict)

    # -- the off-loop append path --------------------------------------

    def append(self, op: int, seq: int, key: str, payload: bytes) -> Future:
        """Enqueue one record; returns its commit ticket.

        The ticket resolves (``result() is None``) once the record — and
        every record queued with it — is flushed (and fsynced when
        configured).  It carries the write error if the commit failed.
        ``payload`` must be an owned buffer: it is written after this call
        returns, so a view into a reusable scratch would tear.
        """
        with self._cond:
            self._check_usable()
            if len(self._queue) >= self.max_queue:
                # Backpressure: the producer (event loop) outran the disk.
                # Block briefly rather than growing without bound; the
                # writer drains whole queues per wakeup, so this clears in
                # one commit.
                while (
                    len(self._queue) >= self.max_queue
                    and not self._closed
                    and not self._crashed
                    and self._failed is None
                ):
                    self._cond.wait(0.05)
                # The wait can end because the log died, not because the
                # queue drained — enqueueing then would strand the record
                # (and its ticket) forever.
                self._check_usable()
            ticket = self._open_ticket
            if ticket is None:
                ticket = self._open_ticket = Future()
            self._queue.append((op, seq, key, payload))
            self._cond.notify_all()
        return ticket

    def _check_usable(self) -> None:
        """Raise (under the lock) when the log cannot accept appends."""
        if self._failed is not None:
            raise ServiceError(
                f"write-ahead log failed and is poisoned: {self._failed} — "
                "appending past a failed commit could leave a torn record "
                "mid-file that shadows later records from replay"
            )
        if self._closed or self._crashed:
            raise ServiceError("write-ahead log is closed")

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not (self._closed or self._crashed):
                    self._cond.wait()
                if self._crashed:
                    return
                if not self._queue:  # closed and drained
                    return
                batch = list(self._queue)
                self._queue.clear()
                ticket = self._open_ticket
                self._open_ticket = None
                self._committing = True
                self._cond.notify_all()
            started = time.perf_counter()
            error: Optional[BaseException] = None
            try:
                for op, seq, key, payload in batch:
                    self._inner.append(op, seq, key, payload, flush=False)
                self._inner.commit(fsync=self.fsync)
            except BaseException as exc:  # disk full, handle revoked, ...
                error = exc
            elapsed = time.perf_counter() - started
            with self._cond:
                self._committing = False
                if error is None:
                    self.commit_count += 1
                    self.committed_records += len(batch)
                    self.last_commit_batch = len(batch)
                    self.max_commit_batch = max(self.max_commit_batch, len(batch))
                    self.last_commit_seconds = elapsed
                    self.total_commit_seconds += elapsed
                else:
                    # POISON the log.  The failed write may have left a
                    # partial record mid-file; appending (and committing)
                    # anything after it would put acknowledged records
                    # behind bytes replay cannot cross — the torn-tail
                    # healer only heals a *tail*.  Refuse all further
                    # appends, fail everything still queued, and leave
                    # the file for recovery to heal at next open.
                    self._failed = error
                    _log.error(
                        "WAL group commit failed, log poisoned: path=%s "
                        "batch=%d error=%s",
                        self._inner.path,
                        len(batch),
                        error,
                    )
                    abandoned_ticket = self._open_ticket
                    self._open_ticket = None
                    self._queue.clear()
                self._cond.notify_all()
            if ticket is not None:
                if error is None:
                    ticket.set_result(None)
                else:
                    ticket.set_exception(error)
            if error is not None:
                if abandoned_ticket is not None:
                    abandoned_ticket.set_exception(
                        ServiceError(f"write-ahead log poisoned by earlier failure: {error}")
                    )
                return

    # -- barriers, truncation, shutdown --------------------------------

    def barrier(self, timeout: Optional[float] = 30.0) -> None:
        """Block until every queued record is committed."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._queue or self._committing:
                if self._closed and not self._queue and not self._committing:
                    return
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise ServiceError("WAL commit barrier timed out")
                self._cond.wait(remaining)

    def truncate(self) -> None:
        """Drop every record (after a barrier — nothing in flight survives)."""
        self.barrier()
        self._inner.truncate()
        if self.fsync:
            self._inner.io.fsync(self._inner._file)

    def close(self) -> None:
        """Drain the queue, commit, stop the writer, close the file."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=30)
        self._inner.close()

    def _abandon(self) -> None:
        """Test hook: simulate a crash — queued records are LOST.

        Stops the writer without draining, so anything enqueued after the
        last commit never reaches the file, exactly like power loss
        between ack-staging and the group fsync.
        """
        with self._cond:
            self._crashed = True
            self._queue.clear()
            self._cond.notify_all()
        self._thread.join(timeout=30)
        self._inner.close()

    def stats(self) -> dict:
        """Commit-pipeline counters for STATS reporting."""
        with self._cond:
            count = self.commit_count
            return {
                "queue_depth": len(self._queue),
                "commit_count": count,
                "committed_records": self.committed_records,
                "last_commit_batch": self.last_commit_batch,
                "max_commit_batch": self.max_commit_batch,
                "mean_commit_batch": round(self.committed_records / count, 2) if count else 0.0,
                "last_commit_ms": round(self.last_commit_seconds * 1e3, 3),
                "mean_commit_ms": round(self.total_commit_seconds / count * 1e3, 3)
                if count
                else 0.0,
            }

    def __enter__(self) -> "GroupCommitWal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SnapshotStore:
    """Per-key snapshot files with CRC32-footered ``FRS1`` framing.

    Each file is ``FRS1`` + ``<u64 seq><u16 key_len><key><FRQ1 payload>``
    + ``<u32 crc32>`` over everything between magic and footer.  The WAL
    already CRC-guards every record; the framing closes the snapshot
    plane's bit-rot blind spot — a flipped bit anywhere in the body fails
    the load (:class:`~repro.errors.SnapshotCorruptError`) instead of
    silently decoding into a wrong sketch.  Files written before the
    framing existed (no magic) still parse, carry no checksum to verify,
    and are rewritten framed by their next save.

    With ``fsync=True`` every save is forced to disk (file data before the
    rename, the directory entry after it), matching the power-loss
    durability of an ``fsync``-ing WAL — required when a snapshot is about
    to justify truncating the WAL records it covers.
    """

    def __init__(self, directory, *, fsync: bool = False, io=None) -> None:
        self.directory = Path(directory)
        self.fsync = fsync
        self.io = DEFAULT_IO if io is None else io

    def save(self, key: str, seq: int, payload: bytes) -> None:
        """Atomically write ``key``'s snapshot (temp file + rename)."""
        raw_key = key.encode("utf-8")
        if len(raw_key) > 0xFFFF:
            raise ServiceError(f"key of {len(raw_key)} UTF-8 bytes exceeds the 65535-byte cap")
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / spill_filename(key)
        tmp = path.with_suffix(".tmp")
        body = _SNAP_HEAD.pack(seq, len(raw_key)) + raw_key + payload
        try:
            with open(tmp, "wb") as handle:
                self.io.write(handle, _SNAP_MAGIC + body + _SNAP_CRC.pack(zlib.crc32(body)))
                if self.fsync:
                    self.io.flush(handle)
                    self.io.fsync(handle)
        except Exception:
            # A failed save (ENOSPC mid-write) must not leave a partial
            # temp file to confuse a later rename; the previous snapshot
            # is still intact under the real name.
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        tmp.replace(path)
        if self.fsync:
            _fsync_dir(self.directory)

    def load(self, key: str) -> Optional[Tuple[int, bytes]]:
        """``(seq, payload)`` for ``key``, or ``None`` if never snapshotted.

        Verifies the CRC footer before trusting a framed file — recovery
        and the lazy spill path never decode rotten bytes into a sketch.
        """
        path = self.directory / spill_filename(key)
        if not path.exists():
            return None
        seq, _key, payload = self._parse(path)
        return seq, payload

    def load_all(self, *, on_corrupt=None) -> Dict[str, Tuple[int, bytes]]:
        """Every snapshot on disk, ``{key: (seq, payload)}``.

        ``on_corrupt(path, exc)``: called per unreadable file instead of
        aborting the whole load — one rotten snapshot must not take down
        recovery of every other key.  ``None`` keeps the raising
        behavior (integrity audits).
        """
        if not self.directory.exists():
            return {}
        result: Dict[str, Tuple[int, bytes]] = {}
        for path in sorted(self.directory.glob("*.frq1")):
            try:
                seq, key, payload = self._parse(path)
            except SnapshotCorruptError as exc:
                if on_corrupt is None:
                    raise
                on_corrupt(path, exc)
                continue
            result[key] = (seq, payload)
        return result

    def iter_meta(self, *, on_corrupt=None):
        """Yield ``(key, seq)`` per snapshot, reading only the file heads.

        Recovery registers every snapshotted key without touching its
        payload (keys load lazily through the store's spill path), so
        startup I/O stays O(keys), not O(total snapshot bytes).  The CRC
        footer is therefore **not** checked here — the payload read
        (:meth:`load`) and the background scrub do that; this pass only
        validates the structural head.  ``on_corrupt(path, exc)`` skips
        an unreadable file instead of raising.
        """
        if not self.directory.exists():
            return
        for path in sorted(self.directory.glob("*.frq1")):
            with open(path, "rb") as handle:
                try:
                    head = handle.read(len(_SNAP_MAGIC))
                    if head != _SNAP_MAGIC:
                        head += handle.read(_SNAP_HEAD.size - len(head))
                    else:
                        head = handle.read(_SNAP_HEAD.size)
                    seq, key_len = _SNAP_HEAD.unpack(head)
                    raw_key = handle.read(key_len)
                    if len(raw_key) != key_len:
                        raise ValueError("snapshot shorter than its declared key")
                    key = raw_key.decode("utf-8")
                except (struct.error, ValueError, UnicodeDecodeError) as exc:
                    corrupt = SnapshotCorruptError(path, str(exc))
                    corrupt.__cause__ = exc
                    if on_corrupt is None:
                        raise corrupt from exc
                    on_corrupt(path, corrupt)
                    continue
            yield key, seq

    def verify(self, path) -> Tuple[int, str, bytes]:
        """Fully read and checksum one snapshot file (the scrub primitive).

        Returns ``(seq, key, payload)``; raises
        :class:`~repro.errors.SnapshotCorruptError` on any damage.
        """
        return self._parse(path)

    def _parse(self, path) -> Tuple[int, str, bytes]:
        path = Path(path)
        data = self.io.read_bytes(path)
        if data[: len(_SNAP_MAGIC)] == _SNAP_MAGIC:
            if len(data) < len(_SNAP_MAGIC) + _SNAP_CRC.size:
                raise SnapshotCorruptError(path, "truncated FRS1 snapshot")
            body = data[len(_SNAP_MAGIC) : -_SNAP_CRC.size]
            (crc,) = _SNAP_CRC.unpack(data[-_SNAP_CRC.size :])
            if zlib.crc32(body) != crc:
                raise SnapshotCorruptError(path, "FRS1 CRC mismatch (bit rot or torn write)")
        else:
            # Pre-FRS1 snapshot: no checksum to verify, structure only.
            body = data
        try:
            seq, key_len = _SNAP_HEAD.unpack_from(body, 0)
            raw_key = body[_SNAP_HEAD.size : _SNAP_HEAD.size + key_len]
            if len(raw_key) != key_len:
                raise ValueError("snapshot shorter than its declared key")
            key = raw_key.decode("utf-8")
        except (struct.error, ValueError, UnicodeDecodeError) as exc:
            raise SnapshotCorruptError(path, str(exc)) from exc
        return seq, key, body[_SNAP_HEAD.size + key_len :]


def recover(
    store,
    wal: WriteAheadLog,
    snapshots: SnapshotStore,
    applied_seq: Dict[str, int],
    snap_seq: Dict[str, int],
    sessions=None,
    *,
    window_apply=None,
    window_restore=None,
    window_snap_seq: Optional[Dict[str, int]] = None,
    window_applied_seq: Optional[Dict[str, int]] = None,
    on_corrupt=None,
) -> int:
    """Rebuild ``store`` from disk; returns the next free sequence number.

    Every snapshotted key is registered with the store as *spilled* (its
    payload loads lazily through the store's spill callbacks, which the
    server wires to ``snapshots`` — so recovery cost is O(WAL), not
    O(keyspace)).  WAL records newer than the owning key's snapshot are
    then re-applied in order; applying loads keys into residency and the
    store's normal LRU budget enforcement handles any overflow.

    ``applied_seq`` and ``snap_seq`` are the caller's live sequence maps,
    filled in place.  Each record's sequence is entered into
    ``applied_seq`` *before* it is applied: applying can trigger an LRU
    spill, and the spill callback snapshots with ``applied_seq[key]`` —
    recording the pre-apply sequence there would stamp a snapshot that
    already contains the record as not containing it, double-applying it
    on the next recovery.

    ``sessions`` (a :class:`~repro.service.resilience.SessionTable`, or
    ``None``) receives every ``WAL_SEQ_INGEST`` record's session mark —
    including records skipped because a snapshot covers them, since the
    mark must survive regardless of which durability artifact carried
    the values.

    Windowed records (``WAL_WINDOW_INGEST`` / ``WAL_SEQ_WINDOW_INGEST``)
    route through ``window_apply(key, payload)`` and keep their own
    sequence maps (``window_snap_seq`` / ``window_applied_seq``): the
    windowed plane snapshots into a separate store on its own cadence,
    so a key's plain and windowed cover points advance independently.
    The caller is expected to have loaded its windowed snapshots before
    calling.  A log carrying windowed records while ``window_apply`` is
    ``None`` refuses to start — dropping acked writes on a config change
    would be silent data loss.

    ``WAL_MIGRATE_SET`` records (a pushed migration bundle) *replace* the
    key's plain state via ``store.replace_payload`` and its windowed rings
    via ``window_restore(key, frw1_payload)``, each side honoring its own
    snapshot cover; the bundle's session marks always fold into
    ``sessions``, like ``WAL_SEQ_INGEST`` marks do.

    ``on_corrupt(path, exc)``: called per unreadable snapshot file
    instead of aborting recovery of every other key (the server wires
    this to its quarantine hook); ``None`` keeps the raising behavior.
    """
    import numpy as np

    max_seq = 0
    for key, seq in snapshots.iter_meta(on_corrupt=on_corrupt):
        snap_seq[key] = seq
        applied_seq[key] = seq
        max_seq = max(max_seq, seq)
        store.register_spilled(key)
    for record in wal.replay():
        max_seq = max(max_seq, record.seq)
        payload = record.payload
        if record.op in (WAL_SEQ_INGEST, WAL_SEQ_WINDOW_INGEST):
            sid, frame_seq, offset = unpack_session_header(payload)
            if sessions is not None:
                sessions.observe(sid, record.key, frame_seq)
            payload = payload[offset:]
        if record.op == WAL_MIGRATE_SET:
            from repro.service.protocol import unpack_migration_bundle

            try:
                _n, sketch, marks, window = unpack_migration_bundle(payload)
            except Exception as exc:
                raise ServiceError(
                    f"WAL record seq={record.seq} key={record.key!r} carries "
                    f"a corrupt migration bundle ({exc}) — refusing to start "
                    "with partial state"
                ) from exc
            if sessions is not None:
                for sid, mark in marks.items():
                    sessions.observe(sid, record.key, mark)
            if window is not None and record.seq > (window_snap_seq or {}).get(record.key, -1):
                if window_restore is None:
                    raise ServiceError(
                        f"WAL record seq={record.seq} key={record.key!r} is a "
                        "migration with windowed state but the windowed plane "
                        "is disabled — refusing to start and silently drop "
                        "acked writes"
                    )
                if window_applied_seq is not None:
                    window_applied_seq[record.key] = record.seq
                window_restore(record.key, window)
            if sketch is not None and record.seq > snap_seq.get(record.key, -1):
                applied_seq[record.key] = record.seq
                try:
                    store.replace_payload(record.key, sketch)
                except Exception as exc:
                    raise ServiceError(
                        f"WAL record seq={record.seq} key={record.key!r} cannot "
                        f"be applied ({exc}); the log is inconsistent with the "
                        "store configuration — refusing to start with partial state"
                    ) from exc
            continue
        if record.op in (WAL_WINDOW_INGEST, WAL_SEQ_WINDOW_INGEST):
            if record.seq <= (window_snap_seq or {}).get(record.key, -1):
                continue
            if window_apply is None:
                raise ServiceError(
                    f"WAL record seq={record.seq} key={record.key!r} is a "
                    "windowed ingest but the windowed plane is disabled — "
                    "refusing to start and silently drop acked writes"
                )
            if window_applied_seq is not None:
                window_applied_seq[record.key] = record.seq
            try:
                window_apply(record.key, payload)
            except Exception as exc:
                raise ServiceError(
                    f"WAL record seq={record.seq} key={record.key!r} cannot "
                    f"be applied ({exc}); the log is inconsistent with the "
                    "store configuration — refusing to start with partial state"
                ) from exc
            continue
        if record.seq <= snap_seq.get(record.key, -1):
            continue
        applied_seq[record.key] = record.seq
        try:
            if record.op in (WAL_INGEST, WAL_SEQ_INGEST):
                store.update_many(record.key, np.frombuffer(payload, dtype="<f8"))
            elif record.op == WAL_MERGE:
                store.merge_payload(record.key, record.payload)
            else:
                raise ServiceError(f"unknown WAL op {record.op}")
        except Exception as exc:
            raise ServiceError(
                f"WAL record seq={record.seq} key={record.key!r} cannot be "
                f"applied ({exc}); the log is inconsistent with the store "
                "configuration — refusing to start with partial state"
            ) from exc
    return max_seq + 1

"""Clients for the quantile service (sync sockets and asyncio).

Both clients speak the framed protocol of :mod:`repro.service.protocol`
and expose the same surface: ``ingest`` ships a batch straight into the
server's ``update_many`` path, ``ingest_stream`` pipelines a large batch
as a **window** of in-flight frames (no per-frame round trip — the lever
that closes the service/engine throughput gap), ``ingest_multi`` packs
several keys' batches into one ``MULTI_INGEST`` frame (fan-in),
``ingest_one`` buffers scalars per key and auto-flushes full batches
(batching is THE lever for socket throughput — one frame per value would
spend everything on framing), ``query``/``cdf``/``rank`` read quantiles,
CDF masses, and rank estimates, ``query_many`` packs many keys' reads
into one ``MULTI_QUERY`` frame (per-request statuses: a missing key
never fails the batch), ``query_stream`` pipelines windows of uniform
query frames — the read-side mirror of ``ingest_stream``, sharing its
windowing state machine, with vectorized encode/decode on both sides —
``merge`` ships a locally built sketch's ``FRQ1`` payload for
server-side union (the distributed-edge pattern), and ``stats`` /
``snapshot`` / ``ping`` cover operations.

Error handling: a non-OK response status raises
:class:`~repro.errors.ServiceError` carrying the server's message (and a
``status`` attribute); transport failures surface as the usual
``ConnectionError`` family.  ``ingest_stream`` maps error acks back to
the offending frame: the raised error carries ``batch_index`` /
``value_offset`` / ``count`` attributes plus an ``errors`` list when
several frames failed (frames already in flight behind a failed one are
still processed independently by the server).

Example::

    from repro.service import QuantileClient

    with QuantileClient(port=7379) as client:
        client.ingest_stream("tenant-a/latency", latencies)   # pipelined
        result = client.query("tenant-a/latency", [0.5, 0.99])
        p99 = result.quantiles[1]
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Dict, List, NamedTuple, Optional, Sequence

import numpy as np

from repro.errors import ServiceError
from repro.service import protocol as wire

__all__ = ["QueryResult", "BatchQueryResult", "QuantileClient", "AsyncQuantileClient"]

#: ``ingest_one`` flushes a key's buffer at this many staged values.
DEFAULT_BATCH = 8192

#: ``ingest_stream`` defaults: values per frame / frames in flight.
DEFAULT_FRAME_VALUES = 8192
DEFAULT_WINDOW = 32

#: ``query_stream`` defaults: requests per MULTI_QUERY frame / frames in
#: flight.  Queries are answered from the cached index in microseconds,
#: so frames amortize framing and the window only needs to hide one RTT.
DEFAULT_FRAME_REQUESTS = 512
DEFAULT_QUERY_WINDOW = 8


class QueryResult(NamedTuple):
    """One QUERY/CDF/RANK answer: ``n``, a-priori eps, values, retained.

    ``quantiles`` holds whatever the request asked for — quantile values,
    rank estimates (as exact float64), or CDF masses; :attr:`values` is
    the kind-neutral alias.  ``num_retained`` is the server sketch's
    retained-item count (the response footer), there so dashboards can
    watch summary size without a separate STATS round trip.
    """

    n: int
    error_bound: float
    quantiles: np.ndarray
    num_retained: int = 0

    @property
    def values(self) -> np.ndarray:
        """Kind-neutral alias for :attr:`quantiles`."""
        return self.quantiles


class BatchQueryResult(NamedTuple):
    """A ``query_stream`` answer: one matrix row per request.

    ``values[i]`` answers request ``i`` (for ``kind="cdf"`` each row has
    one extra trailing ``1.0`` mass).  ``n`` / ``error_bound`` /
    ``num_retained`` describe the key as of the **last** frame (between
    frames a concurrent writer may advance the key; within one frame the
    server is atomic).
    """

    n: int
    error_bound: float
    values: np.ndarray
    num_retained: int = 0


def _decode_query_response(payload) -> QueryResult:
    n, eps, values, retained, _ = wire.unpack_query_result(payload, 0)
    # Copy: the payload may live in a reusable receive scratch buffer.
    return QueryResult(n, eps, np.array(values), retained)


def _decode_multi_query_list(payload, *, expected: int, base_index: int = 0):
    """Decode a ``MULTI_QUERY`` response into per-request results.

    Returns a list (one entry per request, in order) of
    :class:`QueryResult` for OK records and :class:`ServiceError` —
    carrying ``status`` and ``request_index`` — for failed ones, so one
    bad key surfaces next to its neighbours' answers instead of masking
    them.
    """
    try:
        (count,) = wire._COUNT.unpack_from(payload, 0)
    except Exception as exc:  # struct.error
        raise ServiceError(f"truncated MULTI_QUERY response: {exc}") from exc
    if count != expected:
        raise ServiceError(f"MULTI_QUERY response covers {count} requests, expected {expected}")
    offset = wire._COUNT.size
    out: List[object] = []
    for index in range(count):
        if offset >= len(payload):
            raise ServiceError(f"truncated MULTI_QUERY response record {index}")
        status = payload[offset]
        offset += 1
        if status == wire.STATUS_OK:
            n, eps, values, retained, offset = wire.unpack_query_result(payload, offset)
            out.append(QueryResult(n, eps, np.array(values), retained))
        else:
            blob, offset = wire.unpack_blob(payload, offset)
            exc = ServiceError(blob.decode("utf-8", errors="replace") or f"status {status}")
            exc.status = status
            exc.request_index = base_index + index
            out.append(exc)
    return out


def _normalize_query_request(request):
    """``(key, points)`` or ``(key, kind, points)`` -> ``(key, kind, points)``."""
    if len(request) == 2:
        key, points = request
        return key, "quantiles", points
    if len(request) == 3:
        return request
    raise ServiceError(
        f"query requests are (key, points) or (key, kind, points) tuples, "
        f"got {len(request)} elements"
    )


class _WindowedStream:
    """The I/O-agnostic send-window state machine of the pipelined paths.

    Shared by :class:`_IngestStream` and :class:`_QueryStream` (and thus
    by the sync and async clients): owns the in-flight frame accounting
    and error collection so reads and writes pipeline through the same
    discipline and the four stream entry points differ only in how bytes
    move and what a frame means.  Drive it with :meth:`next_window` (a
    :class:`memoryview` to send, or ``None`` when the window is full /
    the data is exhausted), feed every received response body to
    :meth:`ack`, and call :meth:`finish` once :attr:`done`.
    """

    __slots__ = ("_window", "_scratch", "_outstanding", "_errors", "_position", "_total")

    def __init__(self, total: int, window: int, scratch: bytearray) -> None:
        if window < 1:
            raise ServiceError(f"window must be >= 1, got {window}")
        self._window = window
        self._scratch = scratch
        self._outstanding: deque = deque()
        self._errors: List[ServiceError] = []
        self._position = 0
        self._total = total

    @property
    def done(self) -> bool:
        return self._position >= self._total and not self._outstanding

    def next_window(self):
        """The next window of encoded frames to send, or ``None`` to read
        an ack first.  The view aliases the reusable scratch: release it
        (and be done sending) before the next call."""
        room = self._window - len(self._outstanding)
        if room <= 0 or self._position >= self._total:
            return None
        return self._fill(room)

    def ack(self, body) -> None:
        """Consume one response body for the oldest in-flight frame."""
        self._consume(body, self._outstanding.popleft())

    def _raise_errors(self) -> None:
        if self._errors:
            first = self._errors[0]
            first.errors = self._errors
            raise first


class _IngestStream(_WindowedStream):
    """The core of ``ingest_stream``: frame building + error-ack attribution."""

    __slots__ = ("_key", "_array", "_frame_values", "_frame_index", "last_n")

    def __init__(self, key: str, values, frame_values: int, window: int, scratch: bytearray):
        array = np.ascontiguousarray(values, dtype=wire.WIRE_DTYPE).reshape(-1)
        if array.size == 0:
            raise ServiceError("empty ingest stream")
        super().__init__(int(array.size), window, scratch)
        self._array = array
        self._frame_values = frame_values
        self._key = key
        self._frame_index = 0
        self.last_n = 0

    def _fill(self, room: int):
        take = min(room * self._frame_values, self._total - self._position)
        view, counts = wire.build_ingest_frames(
            self._key,
            self._array[self._position : self._position + take],
            frame_values=self._frame_values,
            out=self._scratch,
        )
        for count in counts:
            self._outstanding.append((self._frame_index, self._position, count))
            self._frame_index += 1
            self._position += count
        return view

    def _consume(self, body, token) -> None:
        index, value_offset, count = token
        try:
            payload = wire.raise_for_status(body)
            self.last_n, _ = wire.unpack_n(payload, 0)
        except ServiceError as exc:
            exc.batch_index = index
            exc.value_offset = value_offset
            exc.count = count
            self._errors.append(exc)

    def finish(self) -> int:
        """The key's final ``n`` — or the first failed frame's error,
        carrying every failure in ``.errors``."""
        self._raise_errors()
        return self.last_n


class _QueryStream(_WindowedStream):
    """The core of ``query_stream``: windows of uniform ``MULTI_QUERY`` frames.

    One row of the points matrix per request; frames are built vectorized
    (:func:`~repro.service.protocol.build_query_frames`) and answers land
    by row into one preallocated result matrix — the uniform-response
    fast path decodes a whole frame with two vectorized compares and one
    matrix copy, so neither side loops per request.
    """

    __slots__ = ("_key", "_kind", "_points", "_frame_requests", "_values", "_n", "_eps", "_retained")

    def __init__(self, key: str, kind, points, frame_requests: int, window: int, scratch: bytearray):
        kind = wire.kind_code(kind)
        pts = np.ascontiguousarray(points, dtype=wire.WIRE_DTYPE)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        if pts.ndim != 2 or pts.size == 0:
            raise ServiceError("empty query stream")
        if frame_requests < 1:
            raise ServiceError(f"frame_requests must be >= 1, got {frame_requests}")
        super().__init__(int(pts.shape[0]), window, scratch)
        self._key = key
        self._kind = kind
        self._points = pts
        self._frame_requests = frame_requests
        width = pts.shape[1] + 1 if kind == wire.KIND_CDF else pts.shape[1]
        self._values = np.empty((pts.shape[0], width), dtype=np.float64)
        self._n = 0
        self._eps = 0.0
        self._retained = 0

    def _fill(self, room: int):
        take = min(room * self._frame_requests, self._total - self._position)
        view, counts = wire.build_query_frames(
            self._key,
            self._kind,
            self._points[self._position : self._position + take],
            frame_requests=self._frame_requests,
            out=self._scratch,
        )
        for count in counts:
            self._outstanding.append((self._position, count))
            self._position += count
        return view

    def _consume(self, body, token) -> None:
        start, count = token
        try:
            payload = wire.raise_for_status(body)
        except ServiceError as exc:
            # The whole frame was refused (decode error): attribute it to
            # its first request; ``count`` says how many rows it covered.
            exc.request_index = start
            exc.count = count
            self._errors.append(exc)
            return
        fast = wire.decode_uniform_query_response(payload, count)
        if fast is not None:
            n, eps, values, retained = fast
            if values.shape[1] != self._values.shape[1]:
                raise ServiceError(
                    f"response rows carry {values.shape[1]} values, "
                    f"expected {self._values.shape[1]}"
                )
            self._values[start : start + count] = values
            self._n, self._eps, self._retained = n, eps, retained
            return
        for index, entry in enumerate(
            _decode_multi_query_list(payload, expected=count, base_index=start)
        ):
            if isinstance(entry, ServiceError):
                self._errors.append(entry)
            else:
                self._values[start + index] = entry.quantiles
                self._n, self._eps, self._retained = entry.n, entry.error_bound, entry.num_retained

    def finish(self) -> BatchQueryResult:
        """The stacked answers — or the first failed request's error,
        carrying every failure in ``.errors`` (each with ``request_index``)."""
        self._raise_errors()
        return BatchQueryResult(self._n, self._eps, self._values, self._retained)


def _decode_multi_response(payload) -> List[int]:
    try:
        (groups,) = wire._COUNT.unpack_from(payload, 0)
    except Exception as exc:  # struct.error
        raise ServiceError(f"truncated MULTI_INGEST response: {exc}") from exc
    offset = wire._COUNT.size
    totals = []
    for _ in range(groups):
        n, offset = wire.unpack_n(payload, offset)
        totals.append(n)
    return totals


class _RequestEncoder:
    """Request-body builders shared by both clients."""

    @staticmethod
    def ingest(key: str, values) -> bytes:
        return bytes([wire.OP_INGEST]) + wire.pack_key(key) + wire.pack_values(values)

    @staticmethod
    def query(key: str, fractions) -> bytes:
        return bytes([wire.OP_QUERY]) + wire.pack_key(key) + wire.pack_values(fractions)

    @staticmethod
    def cdf(key: str, points) -> bytes:
        return bytes([wire.OP_CDF]) + wire.pack_key(key) + wire.pack_values(points)

    @staticmethod
    def rank(key: str, values) -> bytes:
        return bytes([wire.OP_RANK]) + wire.pack_key(key) + wire.pack_values(values)

    @staticmethod
    def merge(key: str, payload: bytes) -> bytes:
        return bytes([wire.OP_MERGE]) + wire.pack_key(key) + wire.pack_blob(payload)

    @staticmethod
    def stats(key: Optional[str]) -> bytes:
        return bytes([wire.OP_STATS]) + wire.pack_key(key or "")

    @staticmethod
    def snapshot() -> bytes:
        return bytes([wire.OP_SNAPSHOT])

    @staticmethod
    def ping() -> bytes:
        return bytes([wire.OP_PING])


def _merge_payload(sketch_or_bytes) -> bytes:
    if isinstance(sketch_or_bytes, (bytes, bytearray, memoryview)):
        return bytes(sketch_or_bytes)
    return sketch_or_bytes.to_bytes()


class QuantileClient:
    """Blocking client over one TCP connection.

    Args:
        host, port: Server address.
        batch_size: ``ingest_one`` buffer size per key.
        timeout: Socket timeout in seconds (``None`` = block forever).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7379,
        *,
        batch_size: int = DEFAULT_BATCH,
        timeout: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.batch_size = batch_size
        self._buffers: Dict[str, List[float]] = {}
        #: Reusable encode scratch (zero allocations per window once warm).
        self._tx = bytearray()
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            # A large send buffer lets a whole pipeline window enter the
            # kernel in one sendall, so the stream never stalls on acks.
            self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 1 << 21)
        except OSError:  # pragma: no cover - platform quirk, not fatal
            pass
        #: Buffered reader: one recv drains a whole window of acks.
        self._frames = wire.FrameReader(self._sock)

    def _request(self, body: bytes):
        self._sock.sendall(wire.encode_frame(body))
        return wire.raise_for_status(self._frames.read_frame())

    # -- ingestion -----------------------------------------------------

    def ingest(self, key: str, values) -> int:
        """Ship one batch; returns the key's total ``n`` on the server."""
        payload = self._request(_RequestEncoder.ingest(key, values))
        n, _ = wire.unpack_n(payload, 0)
        return n

    def ingest_stream(
        self,
        key: str,
        values,
        *,
        frame_values: int = DEFAULT_FRAME_VALUES,
        window: int = DEFAULT_WINDOW,
    ) -> int:
        """Pipelined ingest: stream ``values`` as many in-flight frames.

        Up to ``window`` frames ride the wire before the first ack is
        awaited, so throughput is bounded by bandwidth + server work, not
        by round trips; each window is encoded into one reusable buffer
        and shipped with a single ``sendall``.  The server coalesces the
        frames it receives per event-loop tick into single sketch/WAL
        batches, so larger windows also amortize compaction.

        Returns the key's total ``n`` after the last frame.  On error
        acks, raises :class:`~repro.errors.ServiceError` for the *first*
        offending frame with ``batch_index`` (frame number), ``value_offset``
        (index of its first value in ``values``), ``count``, and
        ``errors`` (every failed frame) attributes — frames after a failed
        one are still processed by the server, so a caller can retry
        exactly the failed slices.
        """
        stream = _IngestStream(key, values, frame_values, window, self._tx)
        while not stream.done:
            window_view = stream.next_window()
            if window_view is not None:
                try:
                    self._sock.sendall(window_view)
                finally:
                    window_view.release()  # free the scratch for reuse
            else:
                stream.ack(self._frames.read_frame())
        return stream.finish()

    def ingest_multi(self, batches) -> Dict[str, int]:
        """Ship several keys' batches in ONE ``MULTI_INGEST`` frame.

        ``batches`` is a mapping (or ``(key, values)`` pairs).  The whole
        frame is applied atomically-per-key server-side and acked with one
        round trip; returns ``{key: n_after}`` (for a repeated key, the
        total after its *last* group).
        """
        items = list(batches.items()) if hasattr(batches, "items") else list(batches)
        payload = self._request(wire.pack_multi_ingest(items))
        totals = _decode_multi_response(payload)
        return {key: n for (key, _values), n in zip(items, totals)}

    def ingest_one(self, key: str, value: float) -> None:
        """Buffer one value; a full buffer ships as a single batch.

        Same contract as :meth:`flush`: if shipping fails, the batch is
        re-attached to the buffer so a retry cannot silently lose it.
        """
        buffer = self._buffers.setdefault(key, [])
        buffer.append(float(value))
        if len(buffer) >= self.batch_size:
            del self._buffers[key]
            try:
                self.ingest(key, buffer)
            except BaseException:
                self._buffers[key] = buffer
                raise

    def flush(self) -> None:
        """Ship every buffered ``ingest_one`` value.

        Each key's buffer is detached only once its batch is accepted; on
        a failure the failing key's values are re-attached and the rest
        stay buffered, so nothing is silently lost and the caller can
        retry.
        """
        for key in list(self._buffers):
            values = self._buffers.pop(key)
            if not values:
                continue
            try:
                self.ingest(key, values)
            except BaseException:
                self._buffers[key] = values
                raise

    def merge(self, key: str, sketch_or_bytes) -> int:
        """Union a local sketch (or its ``FRQ1`` payload) into a server key."""
        payload = self._request(_RequestEncoder.merge(key, _merge_payload(sketch_or_bytes)))
        n, _ = wire.unpack_n(payload, 0)
        return n

    # -- queries -------------------------------------------------------

    def query(self, key: str, fractions: Sequence[float]) -> QueryResult:
        return _decode_query_response(self._request(_RequestEncoder.query(key, fractions)))

    def quantile(self, key: str, q: float) -> float:
        return float(self.query(key, [q]).quantiles[0])

    def cdf(self, key: str, split_points: Sequence[float]) -> QueryResult:
        return _decode_query_response(self._request(_RequestEncoder.cdf(key, split_points)))

    def rank(self, key: str, values: Sequence[float]) -> QueryResult:
        """Estimated ranks of ``values`` (as exact float64 integers)."""
        return _decode_query_response(self._request(_RequestEncoder.rank(key, values)))

    def query_many(self, requests) -> List[object]:
        """Ship many read requests in ONE ``MULTI_QUERY`` frame.

        ``requests`` is an iterable of ``(key, points)`` (quantiles) or
        ``(key, kind, points)`` tuples, ``kind`` one of ``"quantiles"`` /
        ``"ranks"`` / ``"cdf"``.  Returns one entry per request, in
        order: a :class:`QueryResult`, or a
        :class:`~repro.errors.ServiceError` (with ``status`` and
        ``request_index``) for requests that failed — a missing key
        never fails its neighbours.  One round trip for the whole batch.
        """
        items = [_normalize_query_request(request) for request in requests]
        payload = self._request(wire.pack_multi_query(items))
        return _decode_multi_query_list(payload, expected=len(items))

    def query_stream(
        self,
        key: str,
        points,
        *,
        kind: str = "quantiles",
        frame_requests: int = DEFAULT_FRAME_REQUESTS,
        window: int = DEFAULT_QUERY_WINDOW,
    ) -> BatchQueryResult:
        """Pipelined reads: one request per row of ``points``.

        The read-side mirror of :meth:`ingest_stream` (same windowing
        machinery): up to ``window`` ``MULTI_QUERY`` frames of
        ``frame_requests`` uniform requests ride the wire before the
        first response is awaited, so read throughput is bounded by
        bandwidth + server work, not round trips.  Frames encode and
        decode vectorized end to end (no per-request loop on either
        side).  With ``window=1`` this degrades to batched round trips —
        one frame at a time — which is the right shape for a single
        dashboard refresh.

        Returns a :class:`BatchQueryResult` whose ``values[i]`` answers
        ``points[i]``.  Per-request error responses raise
        :class:`~repro.errors.ServiceError` for the first failed request
        with ``request_index`` and an ``errors`` list carrying the rest.
        """
        stream = _QueryStream(key, kind, points, frame_requests, window, self._tx)
        while not stream.done:
            window_view = stream.next_window()
            if window_view is not None:
                try:
                    self._sock.sendall(window_view)
                finally:
                    window_view.release()  # free the scratch for reuse
            else:
                stream.ack(self._frames.read_frame())
        return stream.finish()

    # -- operations ----------------------------------------------------

    def stats(self, key: Optional[str] = None) -> dict:
        import json

        blob, _ = wire.unpack_blob(self._request(_RequestEncoder.stats(key)), 0)
        return json.loads(blob.decode("utf-8"))

    def snapshot(self) -> int:
        """Force a full checkpoint; returns the number of keys written."""
        payload = self._request(_RequestEncoder.snapshot())
        return int.from_bytes(payload[:4], "little")

    def ping(self) -> str:
        """Server liveness + version string."""
        blob, _ = wire.unpack_blob(self._request(_RequestEncoder.ping()), 0)
        return blob.decode("utf-8")

    def close(self) -> None:
        try:
            self.flush()
        finally:
            self._sock.close()

    def __enter__(self) -> "QuantileClient":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is not None:
            # The connection may be mid-frame; don't try to flush over it.
            self._buffers = {}
        self.close()


class AsyncQuantileClient:
    """Asyncio client over one TCP connection (same surface, ``await``-ed).

    Construct then ``await connect()``, or use it as an async context
    manager::

        async with AsyncQuantileClient(port=7379) as client:
            await client.ingest("key", values)
            result = await client.query("key", [0.5, 0.99])
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7379,
        *,
        batch_size: int = DEFAULT_BATCH,
    ) -> None:
        self.host = host
        self.port = port
        self.batch_size = batch_size
        self._buffers: Dict[str, List[float]] = {}
        self._reader = None
        self._writer = None

    async def connect(self) -> "AsyncQuantileClient":
        import asyncio

        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def _read_frame(self) -> bytes:
        """One frame body off the stream (shared by requests and acks)."""
        header = await self._reader.readexactly(4)
        length = int.from_bytes(header, "little")
        if length > wire.MAX_FRAME:
            raise ServiceError(f"peer announced a {length}-byte frame (cap {wire.MAX_FRAME})")
        return await self._reader.readexactly(length)

    async def _request(self, body: bytes) -> bytes:
        if self._writer is None:
            await self.connect()
        self._writer.write(wire.encode_frame(body))
        await self._writer.drain()
        return wire.raise_for_status(await self._read_frame())

    async def ingest(self, key: str, values) -> int:
        payload = await self._request(_RequestEncoder.ingest(key, values))
        n, _ = wire.unpack_n(payload, 0)
        return n

    async def ingest_stream(
        self,
        key: str,
        values,
        *,
        frame_values: int = DEFAULT_FRAME_VALUES,
        window: int = DEFAULT_WINDOW,
    ) -> int:
        """Pipelined ingest (same contract as
        :meth:`QuantileClient.ingest_stream`): up to ``window`` frames in
        flight, one buffer build + one write per window, error acks mapped
        back to the offending frame via ``batch_index``/``value_offset``.
        The windowing/attribution state machine is shared with the sync
        client (:class:`_IngestStream`); only the I/O differs."""
        if self._writer is None:
            await self.connect()
        stream = _IngestStream(key, values, frame_values, window, bytearray())
        while not stream.done:
            window_view = stream.next_window()
            if window_view is not None:
                try:
                    # bytes(): the transport may buffer past this tick,
                    # and the view aliases the reusable scratch.
                    self._writer.write(bytes(window_view))
                finally:
                    window_view.release()
                await self._writer.drain()
            else:
                stream.ack(await self._read_frame())
        return stream.finish()

    async def ingest_multi(self, batches) -> Dict[str, int]:
        """One ``MULTI_INGEST`` frame for several keys' batches (see
        :meth:`QuantileClient.ingest_multi`)."""
        items = list(batches.items()) if hasattr(batches, "items") else list(batches)
        payload = await self._request(wire.pack_multi_ingest(items))
        totals = _decode_multi_response(payload)
        return {key: n for (key, _values), n in zip(items, totals)}

    async def ingest_one(self, key: str, value: float) -> None:
        """Buffer one value (same keep-on-failure contract as
        :meth:`QuantileClient.ingest_one`).

        On failure the batch is *merged* back, not assigned: another task
        may have started a fresh buffer for the key while ``ingest`` was
        awaiting, and overwriting it would lose those values.
        """
        buffer = self._buffers.setdefault(key, [])
        buffer.append(float(value))
        if len(buffer) >= self.batch_size:
            del self._buffers[key]
            try:
                await self.ingest(key, buffer)
            except BaseException:
                buffer.extend(self._buffers.pop(key, []))
                self._buffers[key] = buffer
                raise

    async def flush(self) -> None:
        """Ship every buffered value (same keep-on-failure contract as
        :meth:`QuantileClient.flush`; values staged by other tasks during
        the await are merged, not overwritten)."""
        for key in list(self._buffers):
            values = self._buffers.pop(key)
            if not values:
                continue
            try:
                await self.ingest(key, values)
            except BaseException:
                values.extend(self._buffers.pop(key, []))
                self._buffers[key] = values
                raise

    async def merge(self, key: str, sketch_or_bytes) -> int:
        payload = await self._request(
            _RequestEncoder.merge(key, _merge_payload(sketch_or_bytes))
        )
        n, _ = wire.unpack_n(payload, 0)
        return n

    async def query(self, key: str, fractions: Sequence[float]) -> QueryResult:
        return _decode_query_response(await self._request(_RequestEncoder.query(key, fractions)))

    async def quantile(self, key: str, q: float) -> float:
        return float((await self.query(key, [q])).quantiles[0])

    async def cdf(self, key: str, split_points: Sequence[float]) -> QueryResult:
        return _decode_query_response(await self._request(_RequestEncoder.cdf(key, split_points)))

    async def rank(self, key: str, values: Sequence[float]) -> QueryResult:
        """Estimated ranks of ``values`` (as exact float64 integers)."""
        return _decode_query_response(await self._request(_RequestEncoder.rank(key, values)))

    async def query_many(self, requests) -> List[object]:
        """One ``MULTI_QUERY`` frame for many read requests (see
        :meth:`QuantileClient.query_many`)."""
        items = [_normalize_query_request(request) for request in requests]
        payload = await self._request(wire.pack_multi_query(items))
        return _decode_multi_query_list(payload, expected=len(items))

    async def query_stream(
        self,
        key: str,
        points,
        *,
        kind: str = "quantiles",
        frame_requests: int = DEFAULT_FRAME_REQUESTS,
        window: int = DEFAULT_QUERY_WINDOW,
    ) -> BatchQueryResult:
        """Pipelined reads (same contract as
        :meth:`QuantileClient.query_stream`); the windowing state machine
        is shared with the sync client and ``ingest_stream``."""
        if self._writer is None:
            await self.connect()
        stream = _QueryStream(key, kind, points, frame_requests, window, bytearray())
        while not stream.done:
            window_view = stream.next_window()
            if window_view is not None:
                try:
                    # bytes(): the transport may buffer past this tick,
                    # and the view aliases the reusable scratch.
                    self._writer.write(bytes(window_view))
                finally:
                    window_view.release()
                await self._writer.drain()
            else:
                stream.ack(await self._read_frame())
        return stream.finish()

    async def stats(self, key: Optional[str] = None) -> dict:
        import json

        blob, _ = wire.unpack_blob(await self._request(_RequestEncoder.stats(key)), 0)
        return json.loads(blob.decode("utf-8"))

    async def snapshot(self) -> int:
        payload = await self._request(_RequestEncoder.snapshot())
        return int.from_bytes(payload[:4], "little")

    async def ping(self) -> str:
        blob, _ = wire.unpack_blob(await self._request(_RequestEncoder.ping()), 0)
        return blob.decode("utf-8")

    async def close(self) -> None:
        if self._writer is not None:
            try:
                await self.flush()
            finally:
                self._writer.close()
                try:
                    await self._writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                    pass
                self._writer = None
                self._reader = None

    async def __aenter__(self) -> "AsyncQuantileClient":
        return await self.connect()

    async def __aexit__(self, exc_type, *exc_info) -> None:
        if exc_type is not None:
            self._buffers = {}
        await self.close()

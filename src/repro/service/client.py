"""Clients for the quantile service (sync sockets and asyncio).

Both clients speak the framed protocol of :mod:`repro.service.protocol`
and expose the same surface: ``ingest`` ships a batch straight into the
server's ``update_many`` path, ``ingest_stream`` pipelines a large batch
as a **window** of in-flight frames (no per-frame round trip — the lever
that closes the service/engine throughput gap), ``ingest_multi`` packs
several keys' batches into one ``MULTI_INGEST`` frame (fan-in),
``ingest_one`` buffers scalars per key and auto-flushes full batches
(batching is THE lever for socket throughput — one frame per value would
spend everything on framing), ``query``/``cdf``/``rank`` read quantiles,
CDF masses, and rank estimates, ``query_many`` packs many keys' reads
into one ``MULTI_QUERY`` frame (per-request statuses: a missing key
never fails the batch), ``query_stream`` pipelines windows of uniform
query frames — the read-side mirror of ``ingest_stream``, sharing its
windowing state machine, with vectorized encode/decode on both sides —
``merge`` ships a locally built sketch's ``FRQ1`` payload for
server-side union (the distributed-edge pattern), and ``stats`` /
``snapshot`` / ``ping`` cover operations.

Error handling: a non-OK response status raises
:class:`~repro.errors.ServiceError` carrying the server's message (and a
``status`` attribute); transport failures surface as the usual
``ConnectionError`` family.  ``ingest_stream`` maps error acks back to
the offending frame: the raised error carries ``batch_index`` /
``value_offset`` / ``count`` attributes plus an ``errors`` list when
several frames failed (frames already in flight behind a failed one are
still processed independently by the server).

Example::

    from repro.service import QuantileClient

    with QuantileClient(port=7379) as client:
        client.ingest_stream("tenant-a/latency", latencies)   # pipelined
        result = client.query("tenant-a/latency", [0.5, 0.99])
        p99 = result.quantiles[1]
"""

from __future__ import annotations

import os
import socket
import time
from collections import deque
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServiceError, TransportError
from repro.service import protocol as wire
from repro.service.resilience import RetryPolicy
from repro.windowed import parse_duration

__all__ = [
    "QueryResult",
    "BatchQueryResult",
    "BucketEvent",
    "QuantileClient",
    "AsyncQuantileClient",
]

#: Exceptions that mean "the connection is gone" (sync client).  Note
#: :class:`~repro.errors.TransportError` subclasses ``ConnectionError``,
#: so mid-frame EOFs land here too; ``socket.timeout`` is an ``OSError``,
#: so a retry policy's timeout drives the same reconnect path.
_TRANSPORT_ERRORS = (ConnectionError, OSError)


def _new_session_id() -> str:
    """A fresh exactly-once session id (random; uniqueness is all that
    matters — the server keys its dedup table on it)."""
    return "c-" + os.urandom(8).hex()

#: ``ingest_one`` flushes a key's buffer at this many staged values.
DEFAULT_BATCH = 8192

#: ``ingest_stream`` defaults: values per frame / frames in flight.
DEFAULT_FRAME_VALUES = 8192
DEFAULT_WINDOW = 32

#: ``query_stream`` defaults: requests per MULTI_QUERY frame / frames in
#: flight.  Queries are answered from the cached index in microseconds,
#: so frames amortize framing and the window only needs to hide one RTT.
DEFAULT_FRAME_REQUESTS = 512
DEFAULT_QUERY_WINDOW = 8


class QueryResult(NamedTuple):
    """One QUERY/CDF/RANK answer: ``n``, a-priori eps, values, retained.

    ``quantiles`` holds whatever the request asked for — quantile values,
    rank estimates (as exact float64), or CDF masses; :attr:`values` is
    the kind-neutral alias.  ``num_retained`` is the server sketch's
    retained-item count (the response footer), there so dashboards can
    watch summary size without a separate STATS round trip.
    """

    n: int
    error_bound: float
    quantiles: np.ndarray
    num_retained: int = 0

    @property
    def values(self) -> np.ndarray:
        """Kind-neutral alias for :attr:`quantiles`."""
        return self.quantiles


class BatchQueryResult(NamedTuple):
    """A ``query_stream`` answer: one matrix row per request.

    ``values[i]`` answers request ``i`` (for ``kind="cdf"`` each row has
    one extra trailing ``1.0`` mass).  ``n`` / ``error_bound`` /
    ``num_retained`` describe the key as of the **last** frame (between
    frames a concurrent writer may advance the key; within one frame the
    server is atomic).
    """

    n: int
    error_bound: float
    values: np.ndarray
    num_retained: int = 0


class BucketEvent(NamedTuple):
    """One closed window bucket, as pushed to a subscriber.

    ``values`` holds the bucket's quantiles at the subscription's
    fractions; ``[start, end)`` are the bucket's wall-clock bounds and
    ``index`` its ring index (``floor(start / bucket_seconds)``) — the
    resume cursor for :meth:`QuantileClient.subscribe`.
    """

    index: int
    start: float
    end: float
    n: int
    error_bound: float
    values: np.ndarray


def _decode_bucket_event(payload, offset: int = 0) -> BucketEvent:
    index, start, end, n, eps, values, _ = wire.unpack_bucket_event(payload, offset)
    # Copy: the payload may live in a reusable receive scratch buffer.
    return BucketEvent(index, start, end, n, eps, np.array(values))


def _resolve_horizon(start, end, last, now) -> Tuple[float, float]:
    """``[start, end)`` wall-clock bounds from explicit bounds or ``last``.

    ``last`` is a trailing duration (``"5m"``, ``300``, ``"1h30m"``)
    anchored at ``now`` (default: the client's wall clock) — the
    dashboard shape.  Explicit ``start``/``end`` and ``last`` are
    mutually exclusive.
    """
    if last is not None:
        if start is not None or end is not None:
            raise ServiceError("pass either start/end or last=, not both")
        anchor = float(now) if now is not None else time.time()
        return anchor - parse_duration(last), anchor
    if start is None:
        raise ServiceError("query_horizon needs start= (with optional end=) or last=")
    if end is None:
        end = float(now) if now is not None else time.time()
    return float(start), float(end)


def _decode_query_response(payload) -> QueryResult:
    n, eps, values, retained, _ = wire.unpack_query_result(payload, 0)
    # Copy: the payload may live in a reusable receive scratch buffer.
    return QueryResult(n, eps, np.array(values), retained)


def _decode_multi_query_list(payload, *, expected: int, base_index: int = 0):
    """Decode a ``MULTI_QUERY`` response into per-request results.

    Returns a list (one entry per request, in order) of
    :class:`QueryResult` for OK records and :class:`ServiceError` —
    carrying ``status`` and ``request_index`` — for failed ones, so one
    bad key surfaces next to its neighbours' answers instead of masking
    them.
    """
    try:
        (count,) = wire._COUNT.unpack_from(payload, 0)
    except Exception as exc:  # struct.error
        raise ServiceError(f"truncated MULTI_QUERY response: {exc}") from exc
    if count != expected:
        raise ServiceError(f"MULTI_QUERY response covers {count} requests, expected {expected}")
    offset = wire._COUNT.size
    out: List[object] = []
    for index in range(count):
        if offset >= len(payload):
            raise ServiceError(f"truncated MULTI_QUERY response record {index}")
        status = payload[offset]
        offset += 1
        if status == wire.STATUS_OK:
            n, eps, values, retained, offset = wire.unpack_query_result(payload, offset)
            out.append(QueryResult(n, eps, np.array(values), retained))
        else:
            blob, offset = wire.unpack_blob(payload, offset)
            exc = ServiceError(blob.decode("utf-8", errors="replace") or f"status {status}")
            exc.status = status
            exc.request_index = base_index + index
            out.append(exc)
    return out


def _normalize_query_request(request):
    """``(key, points)`` or ``(key, kind, points)`` -> ``(key, kind, points)``."""
    if len(request) == 2:
        key, points = request
        return key, "quantiles", points
    if len(request) == 3:
        return request
    raise ServiceError(
        f"query requests are (key, points) or (key, kind, points) tuples, "
        f"got {len(request)} elements"
    )


class _WindowedStream:
    """The I/O-agnostic send-window state machine of the pipelined paths.

    Shared by :class:`_IngestStream` and :class:`_QueryStream` (and thus
    by the sync and async clients): owns the in-flight frame accounting
    and error collection so reads and writes pipeline through the same
    discipline and the four stream entry points differ only in how bytes
    move and what a frame means.  Drive it with :meth:`next_window` (a
    :class:`memoryview` to send, or ``None`` when the window is full /
    the data is exhausted), feed every received response body to
    :meth:`ack`, and call :meth:`finish` once :attr:`done`.
    """

    __slots__ = ("_window", "_scratch", "_outstanding", "_errors", "_position", "_total")

    def __init__(self, total: int, window: int, scratch: bytearray) -> None:
        if window < 1:
            raise ServiceError(f"window must be >= 1, got {window}")
        self._window = window
        self._scratch = scratch
        self._outstanding: deque = deque()
        self._errors: List[ServiceError] = []
        self._position = 0
        self._total = total

    @property
    def done(self) -> bool:
        return self._position >= self._total and not self._outstanding

    @property
    def outstanding(self) -> int:
        """Frames sent but not yet acknowledged."""
        return len(self._outstanding)

    def next_window(self):
        """The next window of encoded frames to send, or ``None`` to read
        an ack first.  The view aliases the reusable scratch: release it
        (and be done sending) before the next call."""
        room = self._window - len(self._outstanding)
        if room <= 0 or self._position >= self._total:
            return None
        return self._fill(room)

    def ack(self, body) -> None:
        """Consume one response body for the oldest in-flight frame."""
        self._consume(body, self._outstanding.popleft())

    def _raise_errors(self) -> None:
        if self._errors:
            first = self._errors[0]
            first.errors = self._errors
            raise first


class _IngestStream(_WindowedStream):
    """The core of ``ingest_stream``: frame building + error-ack attribution.

    With ``start_seq`` set the frames are ``SEQ_INGEST`` (exactly-once):
    frame ``i`` always carries sequence ``start_seq + i``, and because
    frame boundaries are a pure function of ``frame_values`` and the
    slice offset, a :meth:`rewind` replays byte-identical frames with
    identical sequence numbers — which is what lets the server's session
    table deduplicate them.  ``RETRY_LATER`` acks are collected in
    :attr:`shed` (instead of the error list) for the pump to rewind and
    back off; without ``start_seq`` they are plain error acks, because
    auto-rewinding unsequenced frames could double-apply ones the server
    already counted.
    """

    __slots__ = ("_key", "_array", "_frame_values", "_frame_index", "last_n",
                 "_start_seq", "shed", "num_frames")

    def __init__(
        self,
        key: str,
        values,
        frame_values: int,
        window: int,
        scratch: bytearray,
        *,
        start_seq: Optional[int] = None,
    ):
        array = np.ascontiguousarray(values, dtype=wire.WIRE_DTYPE).reshape(-1)
        if array.size == 0:
            raise ServiceError("empty ingest stream")
        super().__init__(int(array.size), window, scratch)
        self._array = array
        self._frame_values = frame_values
        self._key = key
        self._frame_index = 0
        self.last_n = 0
        self._start_seq = start_seq
        #: Tokens of frames the server shed with RETRY_LATER (seq mode).
        self.shed: List[tuple] = []
        self.num_frames = -(-int(array.size) // int(frame_values))

    def _fill(self, room: int):
        take = min(room * self._frame_values, self._total - self._position)
        start_seq = (
            None if self._start_seq is None else self._start_seq + self._frame_index
        )
        view, counts = wire.build_ingest_frames(
            self._key,
            self._array[self._position : self._position + take],
            frame_values=self._frame_values,
            out=self._scratch,
            start_seq=start_seq,
        )
        for count in counts:
            self._outstanding.append((self._frame_index, self._position, count))
            self._frame_index += 1
            self._position += count
        return view

    def rewind(self) -> bool:
        """Reset to the oldest frame not positively acknowledged.

        After a reconnect (everything in flight is of unknown fate) or a
        shed drain (everything from the first shed frame on was refused),
        replaying from here re-sends byte-identical frames; the session
        table applies each exactly once.  Returns ``False`` when there is
        nothing to replay.
        """
        token = self.shed[0] if self.shed else (
            self._outstanding[0] if self._outstanding else None
        )
        if token is None:
            return False
        index, position, _count = token
        self._frame_index = index
        self._position = position
        self._outstanding.clear()
        self.shed.clear()
        return True

    def _consume(self, body, token) -> None:
        index, value_offset, count = token
        try:
            payload = wire.raise_for_status(body)
            self.last_n, _ = wire.unpack_n(payload, 0)
        except ServiceError as exc:
            if (
                self._start_seq is not None
                and getattr(exc, "status", None) == wire.STATUS_RETRY_LATER
            ):
                self.shed.append(token)
                return
            exc.batch_index = index
            exc.value_offset = value_offset
            exc.count = count
            self._errors.append(exc)

    def finish(self) -> int:
        """The key's final ``n`` — or the first failed frame's error,
        carrying every failure in ``.errors``."""
        self._raise_errors()
        return self.last_n


class _QueryStream(_WindowedStream):
    """The core of ``query_stream``: windows of uniform ``MULTI_QUERY`` frames.

    One row of the points matrix per request; frames are built vectorized
    (:func:`~repro.service.protocol.build_query_frames`) and answers land
    by row into one preallocated result matrix — the uniform-response
    fast path decodes a whole frame with two vectorized compares and one
    matrix copy, so neither side loops per request.
    """

    __slots__ = ("_key", "_kind", "_points", "_frame_requests", "_values", "_n", "_eps", "_retained")

    def __init__(self, key: str, kind, points, frame_requests: int, window: int, scratch: bytearray):
        kind = wire.kind_code(kind)
        pts = np.ascontiguousarray(points, dtype=wire.WIRE_DTYPE)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        if pts.ndim != 2 or pts.size == 0:
            raise ServiceError("empty query stream")
        if frame_requests < 1:
            raise ServiceError(f"frame_requests must be >= 1, got {frame_requests}")
        super().__init__(int(pts.shape[0]), window, scratch)
        self._key = key
        self._kind = kind
        self._points = pts
        self._frame_requests = frame_requests
        width = pts.shape[1] + 1 if kind == wire.KIND_CDF else pts.shape[1]
        self._values = np.empty((pts.shape[0], width), dtype=np.float64)
        self._n = 0
        self._eps = 0.0
        self._retained = 0

    def _fill(self, room: int):
        take = min(room * self._frame_requests, self._total - self._position)
        view, counts = wire.build_query_frames(
            self._key,
            self._kind,
            self._points[self._position : self._position + take],
            frame_requests=self._frame_requests,
            out=self._scratch,
        )
        for count in counts:
            self._outstanding.append((self._position, count))
            self._position += count
        return view

    def rewind(self) -> bool:
        """Reset to the oldest unanswered request row (reads are
        idempotent, so replaying after a reconnect is always safe)."""
        if not self._outstanding:
            return False
        start, _count = self._outstanding[0]
        self._position = start
        self._outstanding.clear()
        return True

    def _consume(self, body, token) -> None:
        start, count = token
        try:
            payload = wire.raise_for_status(body)
        except ServiceError as exc:
            # The whole frame was refused (decode error): attribute it to
            # its first request; ``count`` says how many rows it covered.
            exc.request_index = start
            exc.count = count
            self._errors.append(exc)
            return
        fast = wire.decode_uniform_query_response(payload, count)
        if fast is not None:
            n, eps, values, retained = fast
            if values.shape[1] != self._values.shape[1]:
                raise ServiceError(
                    f"response rows carry {values.shape[1]} values, "
                    f"expected {self._values.shape[1]}"
                )
            self._values[start : start + count] = values
            self._n, self._eps, self._retained = n, eps, retained
            return
        for index, entry in enumerate(
            _decode_multi_query_list(payload, expected=count, base_index=start)
        ):
            if isinstance(entry, ServiceError):
                self._errors.append(entry)
            else:
                self._values[start + index] = entry.quantiles
                self._n, self._eps, self._retained = entry.n, entry.error_bound, entry.num_retained

    def finish(self) -> BatchQueryResult:
        """The stacked answers — or the first failed request's error,
        carrying every failure in ``.errors`` (each with ``request_index``)."""
        self._raise_errors()
        return BatchQueryResult(self._n, self._eps, self._values, self._retained)


def _decode_multi_response(payload) -> List[int]:
    try:
        (groups,) = wire._COUNT.unpack_from(payload, 0)
    except Exception as exc:  # struct.error
        raise ServiceError(f"truncated MULTI_INGEST response: {exc}") from exc
    offset = wire._COUNT.size
    totals = []
    for _ in range(groups):
        n, offset = wire.unpack_n(payload, offset)
        totals.append(n)
    return totals


class _RequestEncoder:
    """Request-body builders shared by both clients."""

    @staticmethod
    def ingest(key: str, values) -> bytes:
        return bytes([wire.OP_INGEST]) + wire.pack_key(key) + wire.pack_values(values)

    @staticmethod
    def query(key: str, fractions) -> bytes:
        return bytes([wire.OP_QUERY]) + wire.pack_key(key) + wire.pack_values(fractions)

    @staticmethod
    def cdf(key: str, points) -> bytes:
        return bytes([wire.OP_CDF]) + wire.pack_key(key) + wire.pack_values(points)

    @staticmethod
    def rank(key: str, values) -> bytes:
        return bytes([wire.OP_RANK]) + wire.pack_key(key) + wire.pack_values(values)

    @staticmethod
    def merge(key: str, payload: bytes) -> bytes:
        return bytes([wire.OP_MERGE]) + wire.pack_key(key) + wire.pack_blob(payload)

    @staticmethod
    def stats(key: Optional[str]) -> bytes:
        return bytes([wire.OP_STATS]) + wire.pack_key(key or "")

    @staticmethod
    def fetch(key: str) -> bytes:
        return bytes([wire.OP_FETCH]) + wire.pack_key(key)

    @staticmethod
    def snapshot() -> bytes:
        return bytes([wire.OP_SNAPSHOT])

    @staticmethod
    def ping() -> bytes:
        return bytes([wire.OP_PING])


def _merge_payload(sketch_or_bytes) -> bytes:
    if isinstance(sketch_or_bytes, (bytes, bytearray, memoryview)):
        return bytes(sketch_or_bytes)
    return sketch_or_bytes.to_bytes()


class QuantileClient:
    """Blocking client over one TCP connection.

    Args:
        host, port: Server address.
        batch_size: ``ingest_one`` buffer size per key.
        timeout: Socket timeout in seconds (``None`` defers to the retry
            policy's timeout, or blocks forever without one).
        retry: A :class:`~repro.service.resilience.RetryPolicy` enabling
            automatic reconnect + replay.  Reads (idempotent) are always
            retried; ingest is retried only once an exactly-once session
            is negotiated (see ``session``) — against an old server that
            refuses ``HELLO`` the client degrades to retrying reads only.
            ``STATUS_RETRY_LATER`` responses back off and resend.
        session: Exactly-once session id.  Auto-generated when a retry
            policy is given; pass an explicit id to resume a previous
            client's session (the server's high-water marks then suppress
            any frames it already counted).  Must not be shared by two
            live clients — frame sequence numbers are per session.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7379,
        *,
        batch_size: int = DEFAULT_BATCH,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        session: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.batch_size = batch_size
        self._buffers: Dict[str, List[float]] = {}
        #: Reusable encode scratch (zero allocations per window once warm).
        self._tx = bytearray()
        self._retry = retry
        self._retry_state = retry.start() if retry is not None else None
        if retry is not None and timeout is None:
            timeout = retry.timeout
        self._timeout = timeout
        self.session_id = session if session is not None else (
            _new_session_id() if retry is not None else None
        )
        #: True once the server granted the exactly-once session.
        self.exactly_once = False
        self._next_seq = 1
        self._closed = False
        self._sock: Optional[socket.socket] = None
        self._frames = None
        self._open_connection()

    # -- connection lifecycle ------------------------------------------

    def _open_connection(self) -> None:
        sock = socket.create_connection((self.host, self.port), timeout=self._timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            # A large send buffer lets a whole pipeline window enter the
            # kernel in one sendall, so the stream never stalls on acks.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 1 << 21)
        except OSError:  # pragma: no cover - platform quirk, not fatal
            pass
        self._sock = sock
        #: Buffered reader: one recv drains a whole window of acks.
        self._frames = wire.FrameReader(sock)
        if self.session_id is not None:
            try:
                self._hello()
            except BaseException:
                # A connection whose HELLO never completed must not
                # survive: reusing it would send sequenced frames into a
                # session the server never opened.  (Reachable when the
                # network eats the HELLO exchange without severing TCP.)
                self._drop_connection()
                raise

    def _hello(self) -> None:
        """Negotiate the exactly-once session on a fresh connection.

        An old server answers the unknown opcode with ``BAD_REQUEST``;
        the client then runs without exactly-once (ingest retries are
        unsafe and disabled, idempotent reads still retry).
        """
        self._sock.sendall(wire.encode_frame(wire.pack_hello(self.session_id)))
        try:
            payload = wire.raise_for_status(self._frames.read_frame())
        except ServiceError as exc:
            if (
                not isinstance(exc, _TRANSPORT_ERRORS)
                and getattr(exc, "status", None) == wire.STATUS_BAD_REQUEST
            ):
                self.exactly_once = False
                return
            raise
        granted, high_water = wire.unpack_hello_response(payload)
        self.exactly_once = bool(granted & wire.FLAG_EXACTLY_ONCE)
        # Resuming a session: never reuse a sequence number the server
        # has already seen (it would be silently deduplicated).
        if high_water >= self._next_seq:
            self._next_seq = high_water + 1

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass
        self._sock = None
        self._frames = None

    def _reconnect(self, cause: Optional[BaseException] = None) -> None:
        """Reconnect (and re-HELLO) with backoff; spends retry budget."""
        self._drop_connection()
        state = self._retry_state
        attempt = 0
        while True:
            state.spend(cause)
            time.sleep(state.delay(attempt))
            attempt += 1
            try:
                self._open_connection()
                return
            except _TRANSPORT_ERRORS as exc:
                cause = exc
                if attempt > self._retry.retries:
                    raise

    def _reserve_seq(self, frames: int = 1) -> int:
        """Claim ``frames`` consecutive sequence numbers (never reused —
        even a failed operation's numbers may have reached the server)."""
        seq = self._next_seq
        self._next_seq = seq + frames
        return seq

    def _request_once(self, body: bytes):
        if self._sock is None:
            raise TransportError("client connection is closed")
        self._sock.sendall(wire.encode_frame(body))
        return wire.raise_for_status(self._frames.read_frame())

    def _request(self, body: bytes, *, idempotent: bool = False):
        """One request/response, with the retry policy applied.

        Transport errors reconnect + resend only for ``idempotent``
        bodies (reads, or sequenced ingest the server deduplicates);
        ``RETRY_LATER`` answers always back off + resend — the server
        guarantees a shed frame was not applied.
        """
        if self._retry is None:
            return self._request_once(body)
        attempt = 0
        while True:
            try:
                if self._sock is None:
                    self._open_connection()
                return self._request_once(body)
            except _TRANSPORT_ERRORS as exc:
                self._drop_connection()
                if not idempotent:
                    raise
                self._reconnect(exc)
            except ServiceError as exc:
                if (
                    getattr(exc, "status", None) != wire.STATUS_RETRY_LATER
                    or attempt >= self._retry.retries
                ):
                    raise
                self._retry_state.spend(exc)
                time.sleep(self._retry_state.delay(attempt))
                attempt += 1

    # -- ingestion -----------------------------------------------------

    def ingest(self, key: str, values) -> int:
        """Ship one batch; returns the key's total ``n`` on the server."""
        if self.exactly_once:
            body = wire.pack_seq_ingest(self._reserve_seq(), key, values)
            payload = self._request(body, idempotent=True)
        else:
            payload = self._request(_RequestEncoder.ingest(key, values))
        n, _ = wire.unpack_n(payload, 0)
        return n

    def ingest_stream(
        self,
        key: str,
        values,
        *,
        frame_values: int = DEFAULT_FRAME_VALUES,
        window: int = DEFAULT_WINDOW,
    ) -> int:
        """Pipelined ingest: stream ``values`` as many in-flight frames.

        Up to ``window`` frames ride the wire before the first ack is
        awaited, so throughput is bounded by bandwidth + server work, not
        by round trips; each window is encoded into one reusable buffer
        and shipped with a single ``sendall``.  The server coalesces the
        frames it receives per event-loop tick into single sketch/WAL
        batches, so larger windows also amortize compaction.

        Returns the key's total ``n`` after the last frame.  On error
        acks, raises :class:`~repro.errors.ServiceError` for the *first*
        offending frame with ``batch_index`` (frame number), ``value_offset``
        (index of its first value in ``values``), ``count``, and
        ``errors`` (every failed frame) attributes — frames after a failed
        one are still processed by the server, so a caller can retry
        exactly the failed slices.

        With an exactly-once session (``retry=`` + negotiated ``HELLO``)
        the frames are sequenced: a dropped connection reconnects and
        replays every unacknowledged frame (the server deduplicates any
        it already counted), and ``RETRY_LATER`` acks drain the window,
        rewind to the first shed frame, back off, and resume.
        """
        if self.exactly_once and self._retry is not None:
            stream = _IngestStream(key, values, frame_values, window, self._tx)
            stream._start_seq = self._reserve_seq(stream.num_frames)
            return self._pump_resilient(stream, shed_retries=True)
        stream = _IngestStream(key, values, frame_values, window, self._tx)
        while not stream.done:
            window_view = stream.next_window()
            if window_view is not None:
                try:
                    self._sock.sendall(window_view)
                finally:
                    window_view.release()  # free the scratch for reuse
            else:
                stream.ack(self._frames.read_frame())
        return stream.finish()

    def _pump_resilient(self, stream, *, shed_retries: bool):
        """Drive a windowed stream with reconnect-and-replay.

        Transport errors reconnect, rewind to the oldest frame of unknown
        fate, and resend (safe: the frames are sequenced, or are reads).
        With ``shed_retries`` a ``RETRY_LATER`` ack stops new sends,
        drains the remaining in-flight acks (the server's shed floor
        guarantees they were all shed too), rewinds, and backs off.
        """
        shed_attempt = 0
        while not stream.done:
            try:
                if shed_retries and stream.shed:
                    if stream.outstanding:
                        stream.ack(self._frames.read_frame())
                        continue
                    if shed_attempt >= self._retry.retries:
                        raise ServiceError(
                            f"server still shedding after {shed_attempt} retries"
                        )
                    stream.rewind()
                    self._retry_state.spend()
                    time.sleep(self._retry_state.delay(shed_attempt))
                    shed_attempt += 1
                    continue
                window_view = stream.next_window()
                if window_view is not None:
                    try:
                        self._sock.sendall(window_view)
                    finally:
                        window_view.release()
                else:
                    stream.ack(self._frames.read_frame())
            except _TRANSPORT_ERRORS as exc:
                self._reconnect(exc)
                stream.rewind()
        return stream.finish()

    def ingest_multi(self, batches) -> Dict[str, int]:
        """Ship several keys' batches in ONE ``MULTI_INGEST`` frame.

        ``batches`` is a mapping (or ``(key, values)`` pairs).  The whole
        frame is applied atomically-per-key server-side and acked with one
        round trip; returns ``{key: n_after}`` (for a repeated key, the
        total after its *last* group).
        """
        items = list(batches.items()) if hasattr(batches, "items") else list(batches)
        if self.exactly_once:
            body = wire.pack_seq_multi_ingest(self._reserve_seq(), items)
            payload = self._request(body, idempotent=True)
        else:
            payload = self._request(wire.pack_multi_ingest(items))
        totals = _decode_multi_response(payload)
        return {key: n for (key, _values), n in zip(items, totals)}

    def ingest_one(self, key: str, value: float) -> None:
        """Buffer one value; a full buffer ships as a single batch.

        Same contract as :meth:`flush`: if shipping fails, the batch is
        re-attached to the buffer so a retry cannot silently lose it.
        """
        buffer = self._buffers.setdefault(key, [])
        buffer.append(float(value))
        if len(buffer) >= self.batch_size:
            del self._buffers[key]
            try:
                self.ingest(key, buffer)
            except BaseException:
                self._buffers[key] = buffer
                raise

    def flush(self) -> None:
        """Ship every buffered ``ingest_one`` value.

        Each key's buffer is detached only once its batch is accepted; on
        a failure the failing key's values are re-attached and the rest
        stay buffered, so nothing is silently lost and the caller can
        retry.
        """
        for key in list(self._buffers):
            values = self._buffers.pop(key)
            if not values:
                continue
            try:
                self.ingest(key, values)
            except BaseException:
                self._buffers[key] = values
                raise

    def merge(self, key: str, sketch_or_bytes) -> int:
        """Union a local sketch (or its ``FRQ1`` payload) into a server key."""
        payload = self._request(_RequestEncoder.merge(key, _merge_payload(sketch_or_bytes)))
        n, _ = wire.unpack_n(payload, 0)
        return n

    def fetch(self, key: str) -> Tuple[int, bytes]:
        """``(n, FRQ1 payload)`` for ``key`` — the anti-entropy read path.

        The payload decodes with
        :meth:`repro.fast.FastReqSketch.from_bytes` and embeds unchanged
        in a :meth:`merge` call against any compatible service.
        """
        payload = self._request(_RequestEncoder.fetch(key), idempotent=True)
        n, offset = wire.unpack_n(payload, 0)
        blob, _ = wire.unpack_blob(payload, offset)
        return n, bytes(blob)

    # -- windowed quantiles --------------------------------------------

    def ingest_windowed(self, key: str, timestamps, values) -> int:
        """Ship timestamped values into ``key``'s window rings.

        ``timestamps`` (epoch seconds) and ``values`` are parallel
        arrays; one call is one **batch** — the server's lateness window
        is judged per batch, so values that arrive together are admitted
        together.  Returns the key's lifetime accepted count (finest
        ring), which is also the duplicate-ack value under exactly-once.
        """
        if self.exactly_once:
            body = wire.pack_seq_window_ingest(self._reserve_seq(), key, timestamps, values)
            payload = self._request(body, idempotent=True)
        else:
            payload = self._request(wire.pack_window_ingest(key, timestamps, values))
        n, _ = wire.unpack_n(payload, 0)
        return n

    def query_horizon(
        self,
        key: str,
        points: Sequence[float] = (0.5, 0.9, 0.99),
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
        last=None,
        kind: str = "quantiles",
        resolution: float = 0.0,
        now: Optional[float] = None,
    ) -> QueryResult:
        """Query the merge of every bucket overlapping a time horizon.

        Bounds come either from ``start``/``end`` (epoch seconds; ``end``
        defaults to now) or from ``last`` — a trailing duration such as
        ``"5m"`` or ``"1h30m"`` — never both.  ``resolution`` picks the
        ring (``0.0`` = finest); ``kind`` is ``"quantiles"`` / ``"ranks"``
        / ``"cdf"`` as in :meth:`query_many`.  The answer is exactly what
        a fresh ``merge_many`` over the retained buckets would give
        (full mergeability: same a-priori error bound as one sketch over
        the horizon's values).
        """
        lo, hi = _resolve_horizon(start, end, last, now)
        payload = self._request(
            wire.pack_window_query(key, kind, resolution, lo, hi, points),
            idempotent=True,
        )
        return _decode_query_response(payload)

    def subscribe(
        self,
        key: str,
        fractions: Sequence[float] = (0.5, 0.99),
        *,
        resolution: float = 0.0,
        resume_from: int = 0,
    ):
        """Live bucket-close stream: yields one :class:`BucketEvent` per
        closed window bucket, oldest first, forever.

        Opens a **dedicated** connection (after the SUBSCRIBE ack the
        server turns it into a push stream).  The ack replays retained
        closed buckets from ``resume_from`` before any live push, and the
        client tracks the next expected index across reconnects — with a
        retry policy a dropped connection resumes from the cursor and
        duplicate replays are filtered, so each bucket index is yielded
        at most once per generator.  Close the generator to unsubscribe.
        """
        fractions = [float(f) for f in fractions]
        next_index = int(resume_from)
        attempt = 0
        while True:
            sock = None
            try:
                sock = socket.create_connection((self.host, self.port), timeout=self._timeout)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                frames = wire.FrameReader(sock)
                sock.sendall(
                    wire.encode_frame(
                        wire.pack_subscribe(key, resolution, next_index, fractions)
                    )
                )
                payload = wire.raise_for_status(frames.read_frame())
                _resolved, cursor, encoded_events = wire.unpack_subscribe_response(payload)
                attempt = 0
                for encoded in encoded_events:
                    event = _decode_bucket_event(encoded)
                    if event.index < next_index:
                        continue
                    next_index = event.index + 1
                    yield event
                next_index = max(next_index, cursor)
                # Live pushes can be arbitrarily far apart: block forever
                # (the request timeout only covered connect + ack).
                sock.settimeout(None)
                while True:
                    payload = wire.raise_for_status(frames.read_frame())
                    event = _decode_bucket_event(payload)
                    if event.index < next_index:
                        continue
                    next_index = event.index + 1
                    yield event
            except _TRANSPORT_ERRORS as exc:
                if self._retry is None:
                    raise
                self._retry_state.spend(exc)
                time.sleep(self._retry_state.delay(attempt))
                attempt += 1
            finally:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:  # pragma: no cover - close never matters
                        pass

    # -- queries -------------------------------------------------------

    def query(self, key: str, fractions: Sequence[float]) -> QueryResult:
        return _decode_query_response(
            self._request(_RequestEncoder.query(key, fractions), idempotent=True)
        )

    def quantile(self, key: str, q: float) -> float:
        return float(self.query(key, [q]).quantiles[0])

    def cdf(self, key: str, split_points: Sequence[float]) -> QueryResult:
        return _decode_query_response(
            self._request(_RequestEncoder.cdf(key, split_points), idempotent=True)
        )

    def rank(self, key: str, values: Sequence[float]) -> QueryResult:
        """Estimated ranks of ``values`` (as exact float64 integers)."""
        return _decode_query_response(
            self._request(_RequestEncoder.rank(key, values), idempotent=True)
        )

    def query_many(self, requests) -> List[object]:
        """Ship many read requests in ONE ``MULTI_QUERY`` frame.

        ``requests`` is an iterable of ``(key, points)`` (quantiles) or
        ``(key, kind, points)`` tuples, ``kind`` one of ``"quantiles"`` /
        ``"ranks"`` / ``"cdf"``.  Returns one entry per request, in
        order: a :class:`QueryResult`, or a
        :class:`~repro.errors.ServiceError` (with ``status`` and
        ``request_index``) for requests that failed — a missing key
        never fails its neighbours.  One round trip for the whole batch.
        """
        items = [_normalize_query_request(request) for request in requests]
        payload = self._request(wire.pack_multi_query(items), idempotent=True)
        return _decode_multi_query_list(payload, expected=len(items))

    def query_stream(
        self,
        key: str,
        points,
        *,
        kind: str = "quantiles",
        frame_requests: int = DEFAULT_FRAME_REQUESTS,
        window: int = DEFAULT_QUERY_WINDOW,
    ) -> BatchQueryResult:
        """Pipelined reads: one request per row of ``points``.

        The read-side mirror of :meth:`ingest_stream` (same windowing
        machinery): up to ``window`` ``MULTI_QUERY`` frames of
        ``frame_requests`` uniform requests ride the wire before the
        first response is awaited, so read throughput is bounded by
        bandwidth + server work, not round trips.  Frames encode and
        decode vectorized end to end (no per-request loop on either
        side).  With ``window=1`` this degrades to batched round trips —
        one frame at a time — which is the right shape for a single
        dashboard refresh.

        Returns a :class:`BatchQueryResult` whose ``values[i]`` answers
        ``points[i]``.  Per-request error responses raise
        :class:`~repro.errors.ServiceError` for the first failed request
        with ``request_index`` and an ``errors`` list carrying the rest.
        """
        stream = _QueryStream(key, kind, points, frame_requests, window, self._tx)
        if self._retry is not None:
            # Reads are idempotent: reconnect-and-replay is always safe,
            # no session needed.
            return self._pump_resilient(stream, shed_retries=False)
        while not stream.done:
            window_view = stream.next_window()
            if window_view is not None:
                try:
                    self._sock.sendall(window_view)
                finally:
                    window_view.release()  # free the scratch for reuse
            else:
                stream.ack(self._frames.read_frame())
        return stream.finish()

    # -- operations ----------------------------------------------------

    def stats(self, key: Optional[str] = None) -> dict:
        import json

        blob, _ = wire.unpack_blob(
            self._request(_RequestEncoder.stats(key), idempotent=True), 0
        )
        return json.loads(blob.decode("utf-8"))

    def snapshot(self) -> int:
        """Force a full checkpoint; returns the number of keys written."""
        payload = self._request(_RequestEncoder.snapshot(), idempotent=True)
        return int.from_bytes(payload[:4], "little")

    def ping(self) -> str:
        """Server liveness + version string."""
        blob, _ = wire.unpack_blob(self._request(_RequestEncoder.ping(), idempotent=True), 0)
        return blob.decode("utf-8")

    def health(self) -> dict:
        """The server's readiness: ``state`` (``ready`` / ``overloaded``
        / ``draining``) plus operational detail (open connections, WAL
        queue depth, shed counts)."""
        import json

        payload = self._request(wire.pack_health(), idempotent=True)
        _state, blob = wire.unpack_health_response(payload)
        return json.loads(blob.decode("utf-8"))

    # -- topology & live migration (the reshard control surface) -------

    def topology(self) -> str:
        """The node's installed topology as JSON (``""`` when none)."""
        blob, _ = wire.unpack_blob(
            self._request(wire.pack_topology(), idempotent=True), 0
        )
        return blob.decode("utf-8")

    def set_topology(self, map_json: str) -> str:
        """Install a topology on the node; returns the installed JSON.

        Idempotent (re-installing the same or an older map than the one
        already installed is a no-op server-side), so it is safe to retry.
        """
        blob, _ = wire.unpack_blob(
            self._request(wire.pack_topology(map_json), idempotent=True), 0
        )
        return blob.decode("utf-8")

    def migrate_keys(self) -> List[str]:
        """Every key the node holds state for (plain or windowed)."""
        payload = self._request(wire.pack_migrate(wire.MIGRATE_KEYS), idempotent=True)
        return wire.unpack_keys_response(payload)

    def migrate_begin(self, key: str) -> bytes:
        """Capture ``key``'s MB1 bundle and put it into forwarding state."""
        payload = self._request(
            wire.pack_migrate(wire.MIGRATE_BEGIN, key), idempotent=True
        )
        blob, _ = wire.unpack_blob(payload, 0)
        return bytes(blob)

    def migrate_drain(self, key: str, *, freeze: bool = False):
        """``(frozen, entries)`` — collect ``key``'s forwarded writes.

        Not retried on transport errors: a resend after an indeterminate
        outcome could silently skip a buffer the first attempt already
        cleared; the coordinator handles the failure explicitly.
        """
        payload = self._request(
            wire.pack_migrate(wire.MIGRATE_DRAIN, key, freeze=freeze)
        )
        return wire.unpack_drain_response(payload)

    def migrate_commit(self, key: str) -> None:
        """End ``key``'s migration on this (source) node.  Idempotent."""
        self._request(wire.pack_migrate(wire.MIGRATE_COMMIT, key), idempotent=True)

    def migrate_abort(self, key: str) -> None:
        """Abandon ``key``'s migration; the node stays authoritative."""
        self._request(wire.pack_migrate(wire.MIGRATE_ABORT, key), idempotent=True)

    def migrate_push(self, key: str, bundle: bytes) -> int:
        """Install an MB1 bundle as ``key``'s state on this (destination)
        node; returns the resulting ``n``.  REPLACE semantics server-side
        make a retried push idempotent, so transport retries are safe."""
        payload = self._request(wire.pack_migrate_push(key, bundle), idempotent=True)
        n, _ = wire.unpack_n(payload, 0)
        return n

    def close(self) -> None:
        """Flush buffered values and close the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._sock is not None:
                self.flush()
        finally:
            self._drop_connection()

    def __enter__(self) -> "QuantileClient":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is not None:
            # The connection may be mid-frame; don't try to flush over it.
            self._buffers = {}
        self.close()


class AsyncQuantileClient:
    """Asyncio client over one TCP connection (same surface, ``await``-ed).

    Construct then ``await connect()``, or use it as an async context
    manager::

        async with AsyncQuantileClient(port=7379) as client:
            await client.ingest("key", values)
            result = await client.query("key", [0.5, 0.99])
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7379,
        *,
        batch_size: int = DEFAULT_BATCH,
        retry: Optional[RetryPolicy] = None,
        session: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.batch_size = batch_size
        self._buffers: Dict[str, List[float]] = {}
        self._reader = None
        self._writer = None
        self._retry = retry
        self._retry_state = retry.start() if retry is not None else None
        self.session_id = session if session is not None else (
            _new_session_id() if retry is not None else None
        )
        self.exactly_once = False
        self._next_seq = 1
        self._closed = False

    #: Exceptions that mean "the connection is gone" (async client): the
    #: sync family plus the stream reader's mid-frame EOFs
    #: (``IncompleteReadError`` subclasses ``EOFError``).  A wait_for
    #: timeout raises ``TimeoutError``, an ``OSError`` since 3.10.
    _ASYNC_TRANSPORT_ERRORS = (ConnectionError, OSError, EOFError)

    async def connect(self) -> "AsyncQuantileClient":
        import asyncio

        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        if self.session_id is not None:
            try:
                await self._hello()
            except BaseException:
                # Same rule as the sync client: a connection whose HELLO
                # never completed must not survive to carry sequenced
                # frames into a session the server never opened.
                self._drop_connection()
                raise
        return self

    async def _hello(self) -> None:
        """Negotiate the exactly-once session (old servers answer the
        unknown opcode with ``BAD_REQUEST``; we degrade gracefully)."""
        self._writer.write(wire.encode_frame(wire.pack_hello(self.session_id)))
        await self._writer.drain()
        try:
            payload = wire.raise_for_status(await self._read_frame())
        except ServiceError as exc:
            if (
                not isinstance(exc, self._ASYNC_TRANSPORT_ERRORS)
                and getattr(exc, "status", None) == wire.STATUS_BAD_REQUEST
            ):
                self.exactly_once = False
                return
            raise
        granted, high_water = wire.unpack_hello_response(payload)
        self.exactly_once = bool(granted & wire.FLAG_EXACTLY_ONCE)
        if high_water >= self._next_seq:
            self._next_seq = high_water + 1

    def _drop_connection(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        self._writer = None
        self._reader = None

    async def _reconnect(self, cause: Optional[BaseException] = None) -> None:
        """Reconnect (and re-HELLO) with backoff; spends retry budget."""
        import asyncio

        self._drop_connection()
        state = self._retry_state
        attempt = 0
        while True:
            state.spend(cause)
            await asyncio.sleep(state.delay(attempt))
            attempt += 1
            try:
                await self.connect()
                return
            except self._ASYNC_TRANSPORT_ERRORS as exc:
                cause = exc
                if attempt > self._retry.retries:
                    raise

    def _reserve_seq(self, frames: int = 1) -> int:
        seq = self._next_seq
        self._next_seq = seq + frames
        return seq

    async def _read_frame(self) -> bytes:
        """One frame body off the stream (shared by requests and acks).

        With a retry policy carrying a timeout, a stalled read times out
        (and the caller's retry path reconnects) instead of hanging.
        """
        import asyncio

        if self._retry is not None and self._retry.timeout is not None:
            return await asyncio.wait_for(self._read_frame_raw(), self._retry.timeout)
        return await self._read_frame_raw()

    async def _read_frame_raw(self) -> bytes:
        header = await self._reader.readexactly(4)
        length = int.from_bytes(header, "little")
        if length > wire.MAX_FRAME:
            raise ServiceError(f"peer announced a {length}-byte frame (cap {wire.MAX_FRAME})")
        return await self._reader.readexactly(length)

    async def _request_once(self, body: bytes) -> bytes:
        if self._writer is None:
            await self.connect()
        self._writer.write(wire.encode_frame(body))
        await self._writer.drain()
        return wire.raise_for_status(await self._read_frame())

    async def _request(self, body: bytes, *, idempotent: bool = False) -> bytes:
        """One request/response with the retry policy applied (same
        contract as :meth:`QuantileClient._request`)."""
        import asyncio

        if self._retry is None:
            return await self._request_once(body)
        attempt = 0
        while True:
            try:
                return await self._request_once(body)
            except self._ASYNC_TRANSPORT_ERRORS as exc:
                self._drop_connection()
                if not idempotent:
                    raise
                await self._reconnect(exc)
            except ServiceError as exc:
                if (
                    getattr(exc, "status", None) != wire.STATUS_RETRY_LATER
                    or attempt >= self._retry.retries
                ):
                    raise
                self._retry_state.spend(exc)
                await asyncio.sleep(self._retry_state.delay(attempt))
                attempt += 1

    async def ingest(self, key: str, values) -> int:
        if self.exactly_once:
            body = wire.pack_seq_ingest(self._reserve_seq(), key, values)
            payload = await self._request(body, idempotent=True)
        else:
            payload = await self._request(_RequestEncoder.ingest(key, values))
        n, _ = wire.unpack_n(payload, 0)
        return n

    async def ingest_stream(
        self,
        key: str,
        values,
        *,
        frame_values: int = DEFAULT_FRAME_VALUES,
        window: int = DEFAULT_WINDOW,
    ) -> int:
        """Pipelined ingest (same contract as
        :meth:`QuantileClient.ingest_stream`): up to ``window`` frames in
        flight, one buffer build + one write per window, error acks mapped
        back to the offending frame via ``batch_index``/``value_offset``.
        The windowing/attribution state machine is shared with the sync
        client (:class:`_IngestStream`); only the I/O differs.  With an
        exactly-once session, dropped connections replay unacknowledged
        frames and ``RETRY_LATER`` acks rewind + back off, exactly as in
        the sync client."""
        if self._writer is None:
            await self.connect()
        stream = _IngestStream(key, values, frame_values, window, bytearray())
        if self.exactly_once and self._retry is not None:
            stream._start_seq = self._reserve_seq(stream.num_frames)
            return await self._pump_resilient(stream, shed_retries=True)
        while not stream.done:
            window_view = stream.next_window()
            if window_view is not None:
                try:
                    # bytes(): the transport may buffer past this tick,
                    # and the view aliases the reusable scratch.
                    self._writer.write(bytes(window_view))
                finally:
                    window_view.release()
                await self._writer.drain()
            else:
                stream.ack(await self._read_frame())
        return stream.finish()

    async def _pump_resilient(self, stream, *, shed_retries: bool):
        """Async twin of :meth:`QuantileClient._pump_resilient`."""
        import asyncio

        shed_attempt = 0
        while not stream.done:
            try:
                if shed_retries and stream.shed:
                    if stream.outstanding:
                        stream.ack(await self._read_frame())
                        continue
                    if shed_attempt >= self._retry.retries:
                        raise ServiceError(
                            f"server still shedding after {shed_attempt} retries"
                        )
                    stream.rewind()
                    self._retry_state.spend()
                    await asyncio.sleep(self._retry_state.delay(shed_attempt))
                    shed_attempt += 1
                    continue
                window_view = stream.next_window()
                if window_view is not None:
                    try:
                        self._writer.write(bytes(window_view))
                    finally:
                        window_view.release()
                    await self._writer.drain()
                else:
                    stream.ack(await self._read_frame())
            except self._ASYNC_TRANSPORT_ERRORS as exc:
                await self._reconnect(exc)
                stream.rewind()
        return stream.finish()

    async def ingest_multi(self, batches) -> Dict[str, int]:
        """One ``MULTI_INGEST`` frame for several keys' batches (see
        :meth:`QuantileClient.ingest_multi`)."""
        items = list(batches.items()) if hasattr(batches, "items") else list(batches)
        if self.exactly_once:
            body = wire.pack_seq_multi_ingest(self._reserve_seq(), items)
            payload = await self._request(body, idempotent=True)
        else:
            payload = await self._request(wire.pack_multi_ingest(items))
        totals = _decode_multi_response(payload)
        return {key: n for (key, _values), n in zip(items, totals)}

    async def ingest_one(self, key: str, value: float) -> None:
        """Buffer one value (same keep-on-failure contract as
        :meth:`QuantileClient.ingest_one`).

        On failure the batch is *merged* back, not assigned: another task
        may have started a fresh buffer for the key while ``ingest`` was
        awaiting, and overwriting it would lose those values.
        """
        buffer = self._buffers.setdefault(key, [])
        buffer.append(float(value))
        if len(buffer) >= self.batch_size:
            del self._buffers[key]
            try:
                await self.ingest(key, buffer)
            except BaseException:
                buffer.extend(self._buffers.pop(key, []))
                self._buffers[key] = buffer
                raise

    async def flush(self) -> None:
        """Ship every buffered value (same keep-on-failure contract as
        :meth:`QuantileClient.flush`; values staged by other tasks during
        the await are merged, not overwritten)."""
        for key in list(self._buffers):
            values = self._buffers.pop(key)
            if not values:
                continue
            try:
                await self.ingest(key, values)
            except BaseException:
                values.extend(self._buffers.pop(key, []))
                self._buffers[key] = values
                raise

    async def merge(self, key: str, sketch_or_bytes) -> int:
        payload = await self._request(
            _RequestEncoder.merge(key, _merge_payload(sketch_or_bytes))
        )
        n, _ = wire.unpack_n(payload, 0)
        return n

    async def fetch(self, key: str) -> Tuple[int, bytes]:
        """``(n, FRQ1 payload)`` for ``key`` (see
        :meth:`QuantileClient.fetch`)."""
        payload = await self._request(_RequestEncoder.fetch(key), idempotent=True)
        n, offset = wire.unpack_n(payload, 0)
        blob, _ = wire.unpack_blob(payload, offset)
        return n, bytes(blob)

    async def ingest_windowed(self, key: str, timestamps, values) -> int:
        """Timestamped ingest into ``key``'s window rings (see
        :meth:`QuantileClient.ingest_windowed`)."""
        if self.exactly_once:
            body = wire.pack_seq_window_ingest(self._reserve_seq(), key, timestamps, values)
            payload = await self._request(body, idempotent=True)
        else:
            payload = await self._request(wire.pack_window_ingest(key, timestamps, values))
        n, _ = wire.unpack_n(payload, 0)
        return n

    async def query_horizon(
        self,
        key: str,
        points: Sequence[float] = (0.5, 0.9, 0.99),
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
        last=None,
        kind: str = "quantiles",
        resolution: float = 0.0,
        now: Optional[float] = None,
    ) -> QueryResult:
        """Merge-on-query over a time horizon (see
        :meth:`QuantileClient.query_horizon`)."""
        lo, hi = _resolve_horizon(start, end, last, now)
        payload = await self._request(
            wire.pack_window_query(key, kind, resolution, lo, hi, points),
            idempotent=True,
        )
        return _decode_query_response(payload)

    async def subscribe(
        self,
        key: str,
        fractions: Sequence[float] = (0.5, 0.99),
        *,
        resolution: float = 0.0,
        resume_from: int = 0,
    ):
        """Async bucket-close stream (same contract as
        :meth:`QuantileClient.subscribe`): a dedicated push connection,
        catch-up replay before live events, at-most-once per index across
        reconnects."""
        import asyncio

        fractions = [float(f) for f in fractions]
        next_index = int(resume_from)
        attempt = 0
        while True:
            writer = None
            try:
                reader, writer = await asyncio.open_connection(self.host, self.port)
                writer.write(
                    wire.encode_frame(
                        wire.pack_subscribe(key, resolution, next_index, fractions)
                    )
                )
                await writer.drain()
                header = await reader.readexactly(4)
                payload = wire.raise_for_status(
                    await reader.readexactly(int.from_bytes(header, "little"))
                )
                _resolved, cursor, encoded_events = wire.unpack_subscribe_response(payload)
                attempt = 0
                for encoded in encoded_events:
                    event = _decode_bucket_event(encoded)
                    if event.index < next_index:
                        continue
                    next_index = event.index + 1
                    yield event
                next_index = max(next_index, cursor)
                while True:
                    header = await reader.readexactly(4)
                    payload = wire.raise_for_status(
                        await reader.readexactly(int.from_bytes(header, "little"))
                    )
                    event = _decode_bucket_event(payload)
                    if event.index < next_index:
                        continue
                    next_index = event.index + 1
                    yield event
            except self._ASYNC_TRANSPORT_ERRORS as exc:
                if self._retry is None:
                    raise
                self._retry_state.spend(exc)
                await asyncio.sleep(self._retry_state.delay(attempt))
                attempt += 1
            finally:
                if writer is not None:
                    writer.close()

    async def query(self, key: str, fractions: Sequence[float]) -> QueryResult:
        return _decode_query_response(
            await self._request(_RequestEncoder.query(key, fractions), idempotent=True)
        )

    async def quantile(self, key: str, q: float) -> float:
        return float((await self.query(key, [q])).quantiles[0])

    async def cdf(self, key: str, split_points: Sequence[float]) -> QueryResult:
        return _decode_query_response(
            await self._request(_RequestEncoder.cdf(key, split_points), idempotent=True)
        )

    async def rank(self, key: str, values: Sequence[float]) -> QueryResult:
        """Estimated ranks of ``values`` (as exact float64 integers)."""
        return _decode_query_response(
            await self._request(_RequestEncoder.rank(key, values), idempotent=True)
        )

    async def query_many(self, requests) -> List[object]:
        """One ``MULTI_QUERY`` frame for many read requests (see
        :meth:`QuantileClient.query_many`)."""
        items = [_normalize_query_request(request) for request in requests]
        payload = await self._request(wire.pack_multi_query(items), idempotent=True)
        return _decode_multi_query_list(payload, expected=len(items))

    async def query_stream(
        self,
        key: str,
        points,
        *,
        kind: str = "quantiles",
        frame_requests: int = DEFAULT_FRAME_REQUESTS,
        window: int = DEFAULT_QUERY_WINDOW,
    ) -> BatchQueryResult:
        """Pipelined reads (same contract as
        :meth:`QuantileClient.query_stream`); the windowing state machine
        is shared with the sync client and ``ingest_stream``."""
        if self._writer is None:
            await self.connect()
        stream = _QueryStream(key, kind, points, frame_requests, window, bytearray())
        if self._retry is not None:
            return await self._pump_resilient(stream, shed_retries=False)
        while not stream.done:
            window_view = stream.next_window()
            if window_view is not None:
                try:
                    # bytes(): the transport may buffer past this tick,
                    # and the view aliases the reusable scratch.
                    self._writer.write(bytes(window_view))
                finally:
                    window_view.release()
                await self._writer.drain()
            else:
                stream.ack(await self._read_frame())
        return stream.finish()

    async def stats(self, key: Optional[str] = None) -> dict:
        import json

        blob, _ = wire.unpack_blob(
            await self._request(_RequestEncoder.stats(key), idempotent=True), 0
        )
        return json.loads(blob.decode("utf-8"))

    async def snapshot(self) -> int:
        payload = await self._request(_RequestEncoder.snapshot(), idempotent=True)
        return int.from_bytes(payload[:4], "little")

    async def ping(self) -> str:
        blob, _ = wire.unpack_blob(
            await self._request(_RequestEncoder.ping(), idempotent=True), 0
        )
        return blob.decode("utf-8")

    async def health(self) -> dict:
        """The server's readiness state + operational detail (see
        :meth:`QuantileClient.health`)."""
        import json

        payload = await self._request(wire.pack_health(), idempotent=True)
        _state, blob = wire.unpack_health_response(payload)
        return json.loads(blob.decode("utf-8"))

    # -- topology & live migration (async twin of QuantileClient) ------

    async def topology(self) -> str:
        blob, _ = wire.unpack_blob(
            await self._request(wire.pack_topology(), idempotent=True), 0
        )
        return blob.decode("utf-8")

    async def set_topology(self, map_json: str) -> str:
        blob, _ = wire.unpack_blob(
            await self._request(wire.pack_topology(map_json), idempotent=True), 0
        )
        return blob.decode("utf-8")

    async def migrate_keys(self) -> List[str]:
        payload = await self._request(
            wire.pack_migrate(wire.MIGRATE_KEYS), idempotent=True
        )
        return wire.unpack_keys_response(payload)

    async def migrate_begin(self, key: str) -> bytes:
        payload = await self._request(
            wire.pack_migrate(wire.MIGRATE_BEGIN, key), idempotent=True
        )
        blob, _ = wire.unpack_blob(payload, 0)
        return bytes(blob)

    async def migrate_drain(self, key: str, *, freeze: bool = False):
        payload = await self._request(
            wire.pack_migrate(wire.MIGRATE_DRAIN, key, freeze=freeze)
        )
        return wire.unpack_drain_response(payload)

    async def migrate_commit(self, key: str) -> None:
        await self._request(
            wire.pack_migrate(wire.MIGRATE_COMMIT, key), idempotent=True
        )

    async def migrate_abort(self, key: str) -> None:
        await self._request(
            wire.pack_migrate(wire.MIGRATE_ABORT, key), idempotent=True
        )

    async def migrate_push(self, key: str, bundle: bytes) -> int:
        payload = await self._request(
            wire.pack_migrate_push(key, bundle), idempotent=True
        )
        n, _ = wire.unpack_n(payload, 0)
        return n

    async def close(self) -> None:
        """Flush buffered values and close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            try:
                await self.flush()
            finally:
                writer = self._writer
                self._writer = None
                self._reader = None
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                    pass

    async def __aenter__(self) -> "AsyncQuantileClient":
        return await self.connect()

    async def __aexit__(self, exc_type, *exc_info) -> None:
        if exc_type is not None:
            self._buffers = {}
        await self.close()

"""Clients for the quantile service (sync sockets and asyncio).

Both clients speak the framed protocol of :mod:`repro.service.protocol`
and expose the same surface: ``ingest`` ships a batch straight into the
server's ``update_many`` path, ``ingest_one`` buffers scalars per key and
auto-flushes full batches (batching is THE lever for socket throughput —
one frame per value would spend everything on framing), ``query``/``cdf``
read quantiles, ``merge`` ships a locally built sketch's ``FRQ1`` payload
for server-side union (the distributed-edge pattern), and ``stats`` /
``snapshot`` / ``ping`` cover operations.

Error handling: a non-OK response status raises
:class:`~repro.errors.ServiceError` carrying the server's message (and a
``status`` attribute); transport failures surface as the usual
``ConnectionError`` family.

Example::

    from repro.service import QuantileClient

    with QuantileClient(port=7379) as client:
        client.ingest("tenant-a/latency", latencies)
        result = client.query("tenant-a/latency", [0.5, 0.99])
        p99 = result.quantiles[1]
"""

from __future__ import annotations

import socket
from typing import Dict, List, NamedTuple, Optional, Sequence

import numpy as np

from repro.service import protocol as wire

__all__ = ["QueryResult", "QuantileClient", "AsyncQuantileClient"]

#: ``ingest_one`` flushes a key's buffer at this many staged values.
DEFAULT_BATCH = 8192


class QueryResult(NamedTuple):
    """One QUERY/CDF answer: stream length, a-priori eps, and the values."""

    n: int
    error_bound: float
    quantiles: np.ndarray


def _decode_query_response(payload: bytes) -> QueryResult:
    n, offset = wire.unpack_n(payload, 0)
    eps = float(np.frombuffer(payload, dtype="<f8", count=1, offset=offset)[0])
    values, _ = wire.unpack_values(payload, offset + 8)
    return QueryResult(n, eps, values)


class _RequestEncoder:
    """Request-body builders shared by both clients."""

    @staticmethod
    def ingest(key: str, values) -> bytes:
        return bytes([wire.OP_INGEST]) + wire.pack_key(key) + wire.pack_values(values)

    @staticmethod
    def query(key: str, fractions) -> bytes:
        return bytes([wire.OP_QUERY]) + wire.pack_key(key) + wire.pack_values(fractions)

    @staticmethod
    def cdf(key: str, points) -> bytes:
        return bytes([wire.OP_CDF]) + wire.pack_key(key) + wire.pack_values(points)

    @staticmethod
    def merge(key: str, payload: bytes) -> bytes:
        return bytes([wire.OP_MERGE]) + wire.pack_key(key) + wire.pack_blob(payload)

    @staticmethod
    def stats(key: Optional[str]) -> bytes:
        return bytes([wire.OP_STATS]) + wire.pack_key(key or "")

    @staticmethod
    def snapshot() -> bytes:
        return bytes([wire.OP_SNAPSHOT])

    @staticmethod
    def ping() -> bytes:
        return bytes([wire.OP_PING])


def _merge_payload(sketch_or_bytes) -> bytes:
    if isinstance(sketch_or_bytes, (bytes, bytearray, memoryview)):
        return bytes(sketch_or_bytes)
    return sketch_or_bytes.to_bytes()


class QuantileClient:
    """Blocking client over one TCP connection.

    Args:
        host, port: Server address.
        batch_size: ``ingest_one`` buffer size per key.
        timeout: Socket timeout in seconds (``None`` = block forever).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7379,
        *,
        batch_size: int = DEFAULT_BATCH,
        timeout: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.batch_size = batch_size
        self._buffers: Dict[str, List[float]] = {}
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def _request(self, body: bytes) -> bytes:
        self._sock.sendall(wire.encode_frame(body))
        return wire.raise_for_status(wire.read_frame_sync(self._sock))

    # -- ingestion -----------------------------------------------------

    def ingest(self, key: str, values) -> int:
        """Ship one batch; returns the key's total ``n`` on the server."""
        payload = self._request(_RequestEncoder.ingest(key, values))
        n, _ = wire.unpack_n(payload, 0)
        return n

    def ingest_one(self, key: str, value: float) -> None:
        """Buffer one value; a full buffer ships as a single batch.

        Same contract as :meth:`flush`: if shipping fails, the batch is
        re-attached to the buffer so a retry cannot silently lose it.
        """
        buffer = self._buffers.setdefault(key, [])
        buffer.append(float(value))
        if len(buffer) >= self.batch_size:
            del self._buffers[key]
            try:
                self.ingest(key, buffer)
            except BaseException:
                self._buffers[key] = buffer
                raise

    def flush(self) -> None:
        """Ship every buffered ``ingest_one`` value.

        Each key's buffer is detached only once its batch is accepted; on
        a failure the failing key's values are re-attached and the rest
        stay buffered, so nothing is silently lost and the caller can
        retry.
        """
        for key in list(self._buffers):
            values = self._buffers.pop(key)
            if not values:
                continue
            try:
                self.ingest(key, values)
            except BaseException:
                self._buffers[key] = values
                raise

    def merge(self, key: str, sketch_or_bytes) -> int:
        """Union a local sketch (or its ``FRQ1`` payload) into a server key."""
        payload = self._request(_RequestEncoder.merge(key, _merge_payload(sketch_or_bytes)))
        n, _ = wire.unpack_n(payload, 0)
        return n

    # -- queries -------------------------------------------------------

    def query(self, key: str, fractions: Sequence[float]) -> QueryResult:
        return _decode_query_response(self._request(_RequestEncoder.query(key, fractions)))

    def quantile(self, key: str, q: float) -> float:
        return float(self.query(key, [q]).quantiles[0])

    def cdf(self, key: str, split_points: Sequence[float]) -> QueryResult:
        return _decode_query_response(self._request(_RequestEncoder.cdf(key, split_points)))

    # -- operations ----------------------------------------------------

    def stats(self, key: Optional[str] = None) -> dict:
        import json

        blob, _ = wire.unpack_blob(self._request(_RequestEncoder.stats(key)), 0)
        return json.loads(blob.decode("utf-8"))

    def snapshot(self) -> int:
        """Force a full checkpoint; returns the number of keys written."""
        payload = self._request(_RequestEncoder.snapshot())
        return int.from_bytes(payload[:4], "little")

    def ping(self) -> str:
        """Server liveness + version string."""
        blob, _ = wire.unpack_blob(self._request(_RequestEncoder.ping()), 0)
        return blob.decode("utf-8")

    def close(self) -> None:
        try:
            self.flush()
        finally:
            self._sock.close()

    def __enter__(self) -> "QuantileClient":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is not None:
            # The connection may be mid-frame; don't try to flush over it.
            self._buffers = {}
        self.close()


class AsyncQuantileClient:
    """Asyncio client over one TCP connection (same surface, ``await``-ed).

    Construct then ``await connect()``, or use it as an async context
    manager::

        async with AsyncQuantileClient(port=7379) as client:
            await client.ingest("key", values)
            result = await client.query("key", [0.5, 0.99])
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7379,
        *,
        batch_size: int = DEFAULT_BATCH,
    ) -> None:
        self.host = host
        self.port = port
        self.batch_size = batch_size
        self._buffers: Dict[str, List[float]] = {}
        self._reader = None
        self._writer = None

    async def connect(self) -> "AsyncQuantileClient":
        import asyncio

        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def _request(self, body: bytes) -> bytes:
        if self._writer is None:
            await self.connect()
        self._writer.write(wire.encode_frame(body))
        await self._writer.drain()
        header = await self._reader.readexactly(4)
        length = int.from_bytes(header, "little")
        if length > wire.MAX_FRAME:
            from repro.errors import ServiceError

            raise ServiceError(f"peer announced a {length}-byte frame (cap {wire.MAX_FRAME})")
        return wire.raise_for_status(await self._reader.readexactly(length))

    async def ingest(self, key: str, values) -> int:
        payload = await self._request(_RequestEncoder.ingest(key, values))
        n, _ = wire.unpack_n(payload, 0)
        return n

    async def ingest_one(self, key: str, value: float) -> None:
        """Buffer one value (same keep-on-failure contract as
        :meth:`QuantileClient.ingest_one`).

        On failure the batch is *merged* back, not assigned: another task
        may have started a fresh buffer for the key while ``ingest`` was
        awaiting, and overwriting it would lose those values.
        """
        buffer = self._buffers.setdefault(key, [])
        buffer.append(float(value))
        if len(buffer) >= self.batch_size:
            del self._buffers[key]
            try:
                await self.ingest(key, buffer)
            except BaseException:
                buffer.extend(self._buffers.pop(key, []))
                self._buffers[key] = buffer
                raise

    async def flush(self) -> None:
        """Ship every buffered value (same keep-on-failure contract as
        :meth:`QuantileClient.flush`; values staged by other tasks during
        the await are merged, not overwritten)."""
        for key in list(self._buffers):
            values = self._buffers.pop(key)
            if not values:
                continue
            try:
                await self.ingest(key, values)
            except BaseException:
                values.extend(self._buffers.pop(key, []))
                self._buffers[key] = values
                raise

    async def merge(self, key: str, sketch_or_bytes) -> int:
        payload = await self._request(
            _RequestEncoder.merge(key, _merge_payload(sketch_or_bytes))
        )
        n, _ = wire.unpack_n(payload, 0)
        return n

    async def query(self, key: str, fractions: Sequence[float]) -> QueryResult:
        return _decode_query_response(await self._request(_RequestEncoder.query(key, fractions)))

    async def quantile(self, key: str, q: float) -> float:
        return float((await self.query(key, [q])).quantiles[0])

    async def cdf(self, key: str, split_points: Sequence[float]) -> QueryResult:
        return _decode_query_response(await self._request(_RequestEncoder.cdf(key, split_points)))

    async def stats(self, key: Optional[str] = None) -> dict:
        import json

        blob, _ = wire.unpack_blob(await self._request(_RequestEncoder.stats(key)), 0)
        return json.loads(blob.decode("utf-8"))

    async def snapshot(self) -> int:
        payload = await self._request(_RequestEncoder.snapshot())
        return int.from_bytes(payload[:4], "little")

    async def ping(self) -> str:
        blob, _ = wire.unpack_blob(await self._request(_RequestEncoder.ping()), 0)
        return blob.decode("utf-8")

    async def close(self) -> None:
        if self._writer is not None:
            try:
                await self.flush()
            finally:
                self._writer.close()
                try:
                    await self._writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                    pass
                self._writer = None
                self._reader = None

    async def __aenter__(self) -> "AsyncQuantileClient":
        return await self.connect()

    async def __aexit__(self, exc_type, *exc_info) -> None:
        if exc_type is not None:
            self._buffers = {}
        await self.close()

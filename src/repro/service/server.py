"""The quantile service: durable keyed sketches behind an asyncio server.

Two layers:

* :class:`QuantileService` — the sans-io core: a
  :class:`~repro.service.SketchStore` composed with the WAL and snapshot
  store of :mod:`repro.service.persistence`.  Every mutation appends to
  the WAL before touching the store; eviction spills through the snapshot
  files, so an evicted key's checkpoint doubles as its durable state.
  Usable directly in-process (tests, embedded deployments, benchmarks
  with ``data_dir=None`` for a pure in-memory service).
* :class:`QuantileServer` — an ``asyncio`` TCP front speaking the
  length-prefixed protocol of :mod:`repro.service.protocol`.  Sketch
  operations are vectorized numpy on tiny summaries — microseconds — so
  a single event loop serves many connections without worker threads;
  each ``INGEST`` frame carries a whole batch into one ``update_many``
  call, which is what makes the socket path fast (the clients batch;
  see :mod:`repro.service.client`).

Consistency notes (single event loop, no locks needed):

* Request handlers never await between reading a frame and writing its
  response, so each request is atomic with respect to every other.
* ``snapshot_all`` is a plain synchronous method — no awaits — so the
  "write every dirty key, then truncate the WAL" sequence cannot
  interleave with an ingest that would be lost by the truncation.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro._version import __version__
from repro.errors import EmptySketchError, InvalidParameterError, ReproError, ServiceError
from repro.service import protocol as wire
from repro.service.persistence import (
    WAL_INGEST,
    WAL_MERGE,
    SnapshotStore,
    WriteAheadLog,
    recover,
)
from repro.service.store import SketchStore

__all__ = ["QuantileService", "QuantileServer", "ServerThread", "run_server"]


class QuantileService:
    """A durable multi-tenant sketch store (no networking).

    Args:
        data_dir: Durability root (``wal.log`` + ``snapshots/``).  ``None``
            runs fully in memory — no WAL, no snapshots, eviction needs a
            ``memory_budget`` of ``None`` or spills are refused.
        k, hra, seed: Sketch parameters for every key (``seed`` defaults
            to ``0`` so WAL replay is bit-exact; pass ``None`` for fresh
            randomness at the cost of exact-replay determinism).
        memory_budget: Retained-item cap across resident sketches; LRU
            keys past it spill to the snapshot files.
        hot_key_items: Optional per-key ingest threshold for promotion to
            a local :class:`~repro.shard.ShardedReqSketch`.
        hot_shards: Shards per promoted key.
        fsync: ``os.fsync`` on every WAL append and snapshot save, so
            acknowledged writes survive power loss — including across a
            checkpoint, where the snapshots are forced to disk before the
            WAL truncation that makes them load-bearing.
    """

    def __init__(
        self,
        data_dir: Optional[str] = None,
        *,
        k: int = 32,
        hra: bool = False,
        seed: Optional[int] = 0,
        memory_budget: Optional[int] = None,
        hot_key_items: Optional[int] = None,
        hot_shards: int = 4,
        fsync: bool = False,
    ) -> None:
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self._applied_seq: Dict[str, int] = {}
        self._snap_seq: Dict[str, int] = {}
        self._seq = 1
        if self.data_dir is None:
            if memory_budget is not None:
                raise InvalidParameterError(
                    "a memory_budget needs a data_dir to spill into "
                    "(in-memory services cannot evict without losing data)"
                )
            self.wal = None
            self.snapshots = None
            spill_save = spill_load = None
        else:
            self.wal = WriteAheadLog(self.data_dir / "wal.log", fsync=fsync)
            self.snapshots = SnapshotStore(self.data_dir / "snapshots", fsync=fsync)

            def spill_save(key: str, payload: bytes) -> None:
                seq = self._applied_seq.get(key, 0)
                self.snapshots.save(key, seq, payload)
                self._snap_seq[key] = seq

            def spill_load(key: str) -> Optional[bytes]:
                loaded = self.snapshots.load(key)
                return None if loaded is None else loaded[1]

        self.store = SketchStore(
            k=k,
            hra=hra,
            seed=seed,
            memory_budget=memory_budget,
            spill_save=spill_save,
            spill_load=spill_load,
            hot_key_items=hot_key_items,
            hot_shards=hot_shards,
            on_spill_load=self._reseed_from_epoch,
        )
        if self.wal is not None:
            if self.wal.healed_bytes:
                import sys

                print(
                    f"WARNING: truncated {self.wal.healed_bytes} torn bytes from "
                    f"the WAL tail at {self.wal.path} (crash mid-append); the "
                    "partially-written final record is gone (never durable; "
                    "never acknowledged when fsync is on), all earlier records "
                    "replay normally",
                    file=sys.stderr,
                )
            self._seq = recover(
                self.store, self.wal, self.snapshots, self._applied_seq, self._snap_seq
            )
        self.started_at = time.time()
        self.ingested_values = 0
        self.query_count = 0
        self.merge_count = 0

    # ------------------------------------------------------------------
    # Mutations (WAL first, then the store)
    # ------------------------------------------------------------------

    def ingest(self, key: str, values) -> int:
        """Apply one batch to ``key``; returns the key's total ``n``.

        Validation happens *before* the WAL append — a rejected batch
        (NaN, empty) must not poison replay.
        """
        self._check_key(key)
        array = np.ascontiguousarray(values, dtype=np.float64).reshape(-1)
        if array.size == 0:
            raise InvalidParameterError("empty ingest batch")
        if np.isnan(array).any():
            raise InvalidParameterError("cannot insert NaN: items must form a total order")
        if self.wal is not None:
            seq = self._seq
            self._seq += 1
            self.wal.append(WAL_INGEST, seq, key, array.astype("<f8", copy=False).tobytes())
            self._applied_seq[key] = seq
        n = self.store.update_many(key, array)
        self.ingested_values += array.size
        return n

    @staticmethod
    def _check_key(key: str) -> None:
        """Refuse to create the empty key.

        The wire ``STATS`` opcode reads an empty key as "server-wide", so
        an empty-keyed sketch would be ingestible yet unreachable for
        per-key stats; rejecting it at creation keeps every stored key
        addressable by every opcode.
        """
        if not key:
            raise ServiceError(
                "the empty key is reserved (STATS uses it for server-wide stats)"
            )

    def merge(self, key: str, payload: bytes) -> int:
        """Union an ``FRQ1`` donor payload into ``key``; returns its ``n``."""
        self._check_key(key)
        # Decode first: a corrupt payload must fail before it reaches the WAL.
        from repro.fast import FastReqSketch

        donor = FastReqSketch.from_bytes(payload)
        if donor.k != self.store.k or donor.hra != self.store.hra or donor.n_bound is not None:
            # Every merge-incompatibility must be rejected HERE: once a
            # record reaches the WAL it is replayed on every restart, and a
            # record that cannot apply would brick recovery permanently.
            raise ServiceError(
                f"merge payload has k={donor.k}/hra={donor.hra}/"
                f"n_bound={donor.n_bound}; this service runs "
                f"k={self.store.k}/hra={self.store.hra}/n_bound=None"
            )
        if self.wal is not None:
            seq = self._seq
            self._seq += 1
            self.wal.append(WAL_MERGE, seq, key, bytes(payload))
            self._applied_seq[key] = seq
        n = self.store.merge_sketch(key, donor)
        self.merge_count += 1
        return n

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _sketch(self, key: str):
        return self.store.get(key)

    def query(self, key: str, fractions):
        """``(n, error_bound, quantiles)`` for ``key``."""
        sketch = self._sketch(key)
        self.query_count += 1
        return sketch.n, sketch.error_bound(), sketch.quantiles(fractions)

    def cdf(self, key: str, split_points):
        """``(n, error_bound, masses)`` for ``key`` (masses has one extra entry)."""
        sketch = self._sketch(key)
        self.query_count += 1
        return sketch.n, sketch.error_bound(), sketch.cdf(split_points)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def _epoch_seed(self, key: str, seq: int) -> Optional[int]:
        """The deterministic RNG seed for ``key``'s post-``seq`` coin stream."""
        base = self.store.derive_seed(key)
        if base is None:
            return None
        return (base ^ (seq * 0x9E3779B97F4A7C15)) & (2**63 - 1)

    def _reseed_from_epoch(self, key: str, sketch) -> None:
        """Pin ``sketch``'s coin stream to its durable history.

        Called after a snapshot is written (live side) and after one is
        loaded (recovery/reload side).  ``FRQ1`` does not carry RNG state,
        so without this a key recovered from a snapshot plus a WAL tail
        would replay its post-snapshot compactions with different coins
        and settle on slightly different (still in-guarantee) answers.
        Re-seeding both sides from ``(key, snapshot seq)`` makes the coin
        stream a deterministic function of the key's durable history, so
        recovery is bit-exact in every case.  Skipped for unseeded stores
        (no determinism was promised) and for promoted hot keys (their
        snapshot is a collapsed union; exact replay is not claimed).
        """
        seed = self._epoch_seed(key, self._snap_seq.get(key, 0))
        if seed is None:
            return
        sketch._rng = np.random.default_rng(seed)

    def snapshot_all(self) -> int:
        """Checkpoint every dirty key, then truncate the WAL.

        Returns the number of snapshot files written.  Spilled keys are
        clean by construction (eviction snapshots them); resident keys are
        dirty when records newer than their snapshot exist.  After the
        pass every WAL record is covered by some snapshot, so the log
        resets.  Synchronous end to end — under asyncio this cannot
        interleave with a mutation (see the module docstring).
        """
        if self.snapshots is None:
            return 0
        from repro.fast import FastReqSketch

        written = 0
        for key in self.store.resident_keys:
            applied = self._applied_seq.get(key, 0)
            if applied <= self._snap_seq.get(key, -1):
                continue
            self.snapshots.save(key, applied, self.store.peek_payload(key))
            self._snap_seq[key] = applied
            written += 1
            sketch = self.store.peek(key)
            if isinstance(sketch, FastReqSketch):
                self._reseed_from_epoch(key, sketch)
        self.wal.truncate()
        return written

    def close(self, *, snapshot: bool = True) -> None:
        """Release file handles; by default checkpoint first."""
        if snapshot and self.wal is not None:
            self.snapshot_all()
        if self.wal is not None:
            self.wal.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self, key: Optional[str] = None) -> dict:
        if key:
            return self.store.key_stats(key)
        report = {
            "version": __version__,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "ingested_values": self.ingested_values,
            "query_count": self.query_count,
            "merge_count": self.merge_count,
            "durable": self.wal is not None,
            "wal_bytes": self.wal.size_bytes if self.wal is not None else 0,
            "wal_healed_bytes": self.wal.healed_bytes if self.wal is not None else 0,
            "next_seq": self._seq,
        }
        report.update(self.store.stats())
        return report


class QuantileServer:
    """The asyncio TCP front for a :class:`QuantileService`.

    Args:
        service: The service to expose (owned by the caller).
        host, port: Bind address; port ``0`` picks a free port (read it
            back from :attr:`port` after :meth:`start`).
        snapshot_interval: Seconds between periodic ``snapshot_all``
            passes (``None`` disables; the ``SNAPSHOT`` opcode and
            graceful stop still checkpoint).
    """

    def __init__(
        self,
        service: QuantileService,
        *,
        host: str = "127.0.0.1",
        port: int = 7379,
        snapshot_interval: Optional[float] = None,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.snapshot_interval = snapshot_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._snapshot_task: Optional[asyncio.Task] = None
        self.connections = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.snapshot_interval is not None and self.service.wal is not None:
            self._snapshot_task = asyncio.ensure_future(self._periodic_snapshots())

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, *, snapshot: bool = True) -> None:
        """Stop accepting, drop connections, optionally checkpoint.

        ``snapshot=False`` models a crash: durable state is whatever the
        WAL and existing snapshots already hold (the recovery tests lean
        on this).
        """
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            try:
                await self._snapshot_task
            except asyncio.CancelledError:
                pass
            self._snapshot_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.close(snapshot=snapshot)

    async def _periodic_snapshots(self) -> None:
        import sys

        while True:
            await asyncio.sleep(self.snapshot_interval)
            try:
                self.service.snapshot_all()
            except Exception as exc:
                # A transient failure (disk full, permission blip) must not
                # kill the checkpoint loop for the rest of the process —
                # the WAL keeps everything durable; report and retry.
                print(f"periodic snapshot failed (will retry): {exc}", file=sys.stderr)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self.connections += 1
        try:
            while True:
                header = await reader.readexactly(4)
                (length,) = wire._LEN.unpack(header)
                if length > wire.MAX_FRAME:
                    writer.write(
                        wire.encode_frame(
                            wire.error_body(
                                wire.STATUS_BAD_REQUEST,
                                f"frame of {length} bytes exceeds cap {wire.MAX_FRAME}",
                            )
                        )
                    )
                    await writer.drain()
                    break
                body = await reader.readexactly(length)
                writer.write(wire.encode_frame(self._dispatch(body)))
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    def _dispatch(self, body: bytes) -> bytes:
        """Decode one request body, run it, encode the response body.

        Synchronous on purpose: no await between decode and response means
        every request is atomic under the event loop.
        """
        if not body:
            return wire.error_body(wire.STATUS_BAD_REQUEST, "empty request frame")
        op = body[0]
        try:
            if op == wire.OP_INGEST:
                key, offset = wire.unpack_key(body, 1)
                values, _ = wire.unpack_values(body, offset)
                return b"\x00" + wire.pack_n(self.service.ingest(key, values))
            if op == wire.OP_QUERY:
                key, offset = wire.unpack_key(body, 1)
                fractions, _ = wire.unpack_values(body, offset)
                n, eps, quantiles = self.service.query(key, fractions)
                return (
                    b"\x00"
                    + wire.pack_n(n)
                    + np.float64(eps).tobytes()
                    + wire.pack_values(quantiles)
                )
            if op == wire.OP_CDF:
                key, offset = wire.unpack_key(body, 1)
                points, _ = wire.unpack_values(body, offset)
                n, eps, masses = self.service.cdf(key, points)
                return (
                    b"\x00" + wire.pack_n(n) + np.float64(eps).tobytes() + wire.pack_values(masses)
                )
            if op == wire.OP_MERGE:
                key, offset = wire.unpack_key(body, 1)
                payload, _ = wire.unpack_blob(body, offset)
                return b"\x00" + wire.pack_n(self.service.merge(key, payload))
            if op == wire.OP_STATS:
                key, _ = wire.unpack_key(body, 1)
                stats = self.service.stats(key or None)
                return b"\x00" + wire.pack_blob(json.dumps(stats).encode("utf-8"))
            if op == wire.OP_SNAPSHOT:
                return b"\x00" + wire._COUNT.pack(self.service.snapshot_all())
            if op == wire.OP_PING:
                return b"\x00" + wire.pack_blob(__version__.encode("utf-8"))
            return wire.error_body(wire.STATUS_BAD_REQUEST, f"unknown opcode {op:#x}")
        except KeyError as exc:
            return wire.error_body(wire.STATUS_UNKNOWN_KEY, f"unknown key {exc.args[0]!r}")
        except EmptySketchError as exc:
            return wire.error_body(wire.STATUS_ERROR, str(exc))
        except (ReproError, ServiceError) as exc:
            status = (
                wire.STATUS_BAD_REQUEST if isinstance(exc, ServiceError) else wire.STATUS_ERROR
            )
            return wire.error_body(status, str(exc))
        except Exception as exc:
            # Unexpected failures (a full disk killing a WAL append, a numpy
            # edge case) must not tear down the connection with no response;
            # answer with an error and keep serving.  The traceback goes to
            # stderr — the client only sees the exception type and message.
            import sys
            import traceback

            traceback.print_exc(file=sys.stderr)
            return wire.error_body(
                wire.STATUS_ERROR, f"internal error: {type(exc).__name__}: {exc}"
            )


class ServerThread:
    """A :class:`QuantileServer` on a daemon thread with its own event loop.

    The bridge for synchronous callers — tests, benchmarks, notebook
    demos, or embedding the service next to blocking code::

        with ServerThread(QuantileService(None)) as running:
            client = QuantileClient(port=running.port)

    ``stop(snapshot=False)`` models a crash (no goodbye checkpoint), which
    the recovery tests lean on; the context manager exit checkpoints.
    """

    def __init__(
        self,
        service: QuantileService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        snapshot_interval: Optional[float] = None,
        start_timeout: float = 10.0,
    ) -> None:
        self.service = service
        self.server = QuantileServer(
            service, host=host, port=port, snapshot_interval=snapshot_interval
        )
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._stopped = False
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        if not self._started.wait(start_timeout):
            raise ServiceError("server thread did not start in time")
        if self._start_error is not None:
            self.thread.join(timeout=start_timeout)
            raise ServiceError(f"server failed to start: {self._start_error}")

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._start_error = exc
            self._started.set()
            return
        self._started.set()
        self.loop.run_forever()

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, *, snapshot: bool = True) -> None:
        """Stop the server and its loop (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(snapshot=snapshot), self.loop
        )
        future.result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_server(
    data_dir: Optional[str],
    *,
    host: str = "127.0.0.1",
    port: int = 7379,
    k: int = 32,
    hra: bool = False,
    seed: Optional[int] = 0,
    memory_budget: Optional[int] = None,
    hot_key_items: Optional[int] = None,
    hot_shards: int = 4,
    snapshot_interval: Optional[float] = 30.0,
    fsync: bool = False,
) -> int:
    """Blocking entry point for ``repro-quantiles serve``.

    Runs until interrupted; SIGINT and SIGTERM both trigger a graceful
    stop with a final checkpoint.  Returns a process exit code.
    """
    import signal

    service = QuantileService(
        data_dir,
        k=k,
        hra=hra,
        seed=seed,
        memory_budget=memory_budget,
        hot_key_items=hot_key_items,
        hot_shards=hot_shards,
        fsync=fsync,
    )
    server = QuantileServer(
        service, host=host, port=port, snapshot_interval=snapshot_interval
    )

    async def main() -> None:
        await server.start()
        durable = f"data_dir={data_dir}" if data_dir else "in-memory (no durability)"
        print(
            f"repro-quantiles {__version__} serving on {server.host}:{server.port} "
            f"[k={k}, {'HRA' if hra else 'LRA'}, {durable}, "
            f"{len(service.store)} keys recovered]",
            flush=True,
        )
        # asyncio.start_server accepts connections as soon as it exists;
        # this task only needs to sleep until a stop signal arrives.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loop: fall back to KeyboardInterrupt below
        await stop.wait()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback path
        pass
    finally:
        service.close(snapshot=True)
    return 0

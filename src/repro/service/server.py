"""The quantile service: durable keyed sketches behind an asyncio server.

Two layers:

* :class:`QuantileService` — the sans-io core: a
  :class:`~repro.service.SketchStore` composed with the WAL and snapshot
  store of :mod:`repro.service.persistence`.  Every mutation appends to
  the WAL before touching the store; eviction spills through the snapshot
  files, so an evicted key's checkpoint doubles as its durable state.
  Usable directly in-process (tests, embedded deployments, benchmarks
  with ``data_dir=None`` for a pure in-memory service).
* :class:`QuantileServer` — an ``asyncio`` TCP front speaking the
  length-prefixed protocol of :mod:`repro.service.protocol`.  Sketch
  operations are vectorized numpy on tiny summaries — microseconds — so
  a single event loop serves many connections without worker threads.

The ingest hot path is **pipelined and coalesced**: connections are
``asyncio.Protocol`` transports (no stream-reader overhead), every
``data_received`` tick parses *all* complete frames in the connection
buffer as zero-copy views, ``INGEST``/``MULTI_INGEST`` batches for the
same key are funnelled through one staging concat into a **single**
``update_many`` (one WAL record, one amortized-compaction pass — the
schedule the paper's cost analysis assumes), and the per-frame acks are
computed from the cumulative counts.  With a group-commit WAL
(``group_commit=True``), WAL writes and fsyncs run on a background
writer thread and acks are released only when the covering commit
ticket resolves — responses stay in request order via a per-connection
ordered output queue.

Consistency notes (single event loop, no locks needed):

* Frame batches are dispatched synchronously — no await between decode
  and response staging — so each batch is atomic with respect to every
  other connection's.  Within a batch, any non-ingest opcode flushes the
  pending ingest coalesce first, so one connection's requests always
  observe their own program order.
* ``snapshot_all`` is a plain synchronous method — no awaits — so the
  "write every dirty key, then truncate the WAL" sequence cannot
  interleave with an ingest that would be lost by the truncation (it
  barriers the group-commit writer before truncating).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._version import __version__
from repro.errors import (
    DegradedError,
    EmptySketchError,
    InvalidParameterError,
    ReproError,
    ServiceError,
    SnapshotCorruptError,
)
from repro.service import protocol as wire
from repro.service.faultdisk import DEFAULT_IO
from repro.service.log import RateLimiter, configure_cli_logging
from repro.service.log import logger as log
from repro.service.persistence import (
    WAL_INGEST,
    WAL_MERGE,
    WAL_MIGRATE_SET,
    WAL_SEQ_INGEST,
    WAL_SEQ_WINDOW_INGEST,
    WAL_WINDOW_INGEST,
    GroupCommitWal,
    SnapshotStore,
    WriteAheadLog,
    pack_session_header,
    recover,
)
from repro.service.resilience import (
    ADMIT_DUPLICATE,
    ADMIT_SHED,
    OverloadPolicy,
    SessionTable,
)
from repro.service.store import SketchStore, spill_filename
from repro.windowed import SubscriptionHub, WindowStore

__all__ = ["QuantileService", "QuantileServer", "ServerThread", "run_server", "new_event_loop"]

#: Sentinel: "use the default overload policy" (``None`` disables shedding).
_DEFAULT_OVERLOAD = object()


class _Migration:
    """Per-key live-migration state on the SOURCE node of a reshard.

    Created by ``MIGRATE BEGIN``: while it exists (and is not frozen) the
    key is in **forwarding** state — writes still apply locally (and are
    acked durably as usual) but each applied batch is also buffered
    verbatim as a drain entry, so the rebalance coordinator can watch how
    much is still flowing.  ``MIGRATE DRAIN freeze=1`` flips the key to
    **frozen**: writes are shed with ``RETRY_LATER`` (never acked, so
    nothing can be lost) while the coordinator takes the final capture
    and cuts the topology over.  The freeze carries a deadline — if the
    coordinator dies mid-cutover the key thaws automatically and the
    source stays authoritative, so a crashed rebalance never wedges
    ingest.
    """

    __slots__ = ("entries", "frozen", "deadline")

    def __init__(self) -> None:
        #: Encoded drain entries buffered since the last DRAIN.
        self.entries: List[bytes] = []
        self.frozen = False
        self.deadline = 0.0


def new_event_loop(use_uvloop: bool = True) -> asyncio.AbstractEventLoop:
    """A fresh event loop, ``uvloop``-backed when installed.

    ``uvloop`` is never required: when it is missing (or ``use_uvloop``
    is false, or ``REPRO_NO_UVLOOP`` is set) this silently falls back to
    the stock asyncio loop, so deployments opt in simply by installing
    the package and opt out with the CLI flag.
    """
    if use_uvloop and not os.environ.get("REPRO_NO_UVLOOP"):
        try:
            import uvloop

            return uvloop.new_event_loop()
        except Exception:  # pragma: no cover - uvloop not installed here
            pass
    return asyncio.new_event_loop()


class QuantileService:
    """A durable multi-tenant sketch store (no networking).

    Args:
        data_dir: Durability root (``wal.log`` + ``snapshots/``).  ``None``
            runs fully in memory — no WAL, no snapshots, eviction needs a
            ``memory_budget`` of ``None`` or spills are refused.
        k, hra, seed: Sketch parameters for every key (``seed`` defaults
            to ``0`` so WAL replay is bit-exact; pass ``None`` for fresh
            randomness at the cost of exact-replay determinism).
        memory_budget: Retained-item cap across resident sketches; LRU
            keys past it spill to the snapshot files.
        hot_key_items: Optional per-key ingest threshold for promotion to
            a local :class:`~repro.shard.ShardedReqSketch`.
        hot_shards: Shards per promoted key.
        fsync: ``os.fsync`` on every WAL commit and snapshot save, so
            acknowledged writes survive power loss — including across a
            checkpoint, where the snapshots are forced to disk before the
            WAL truncation that makes them load-bearing.
        group_commit: Move WAL appends (and their fsyncs) to a background
            writer with group commit.  Mutations return after the record
            is *queued*; durability of an individual write is signalled by
            its commit ticket (:meth:`commit_ticket` / the server's
            ack gating), and :meth:`wal_barrier` blocks until everything
            queued so far is durable.  Replay semantics are unchanged —
            records reach the file in append order.
        window_resolutions: Bucket widths (seconds) of the windowed
            plane — every key ingested through ``WINDOW_INGEST`` keeps
            one sketch ring per resolution (see :mod:`repro.windowed`).
            Always on (an idle ring costs nothing), so a WAL carrying
            windowed records can always replay.
        window_retention: Live bucket slots per ring (the TTL is
            ``retention * resolution`` seconds of wall clock).
        window_lateness: Out-of-order tolerance in seconds for windowed
            ingest (see :class:`~repro.windowed.WindowRing`).
        io_layer: The disk io layer every persistence object routes its
            bytes through (default: the real-disk pass-through).  Chaos
            tests inject a :class:`~repro.service.faultdisk.FaultyDisk`
            to script ENOSPC/EIO/bit-rot without touching a real device.
        min_free_bytes: Free-space threshold for leaving degraded mode —
            after an ENOSPC poisons the WAL the service stays read-only
            until the data dir's filesystem reports at least this much
            free space again.
    """

    def __init__(
        self,
        data_dir: Optional[str] = None,
        *,
        k: int = 32,
        hra: bool = False,
        seed: Optional[int] = 0,
        memory_budget: Optional[int] = None,
        hot_key_items: Optional[int] = None,
        hot_shards: int = 4,
        fsync: bool = False,
        group_commit: bool = False,
        max_sessions: int = 4096,
        node_id: Optional[str] = None,
        window_resolutions=(60.0,),
        window_retention: int = 64,
        window_lateness: float = 0.0,
        io_layer=None,
        min_free_bytes: int = 8 << 20,
    ) -> None:
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.io = DEFAULT_IO if io_layer is None else io_layer
        self.min_free_bytes = min_free_bytes
        self._fsync = fsync
        #: Degraded read-only mode: set when storage stops accepting
        #: writes (ENOSPC, poisoned WAL).  While set, ingest sheds with
        #: RETRY_LATER and reads keep serving; cleared by
        #: :meth:`try_exit_degraded` once space returns.
        self.degraded_reason: Optional[str] = None
        self.degraded_since: Optional[float] = None
        self.degraded_entries = 0
        #: Snapshot files quarantined (moved aside as corrupt) and keys
        #: forgotten because their only copy was the quarantined file.
        self.quarantined_files = 0
        self.quarantined_keys: List[str] = []
        self._quarantine_log = RateLimiter(5.0)
        #: Cluster identity: surfaced in STATS/HEALTH so ring-aware
        #: clients and `cluster-status` can verify they reached the node
        #: the topology names (``None`` = standalone service).
        self.node_id = node_id
        #: The installed cluster topology (a ClusterMap, or ``None`` for a
        #: standalone service).  When set together with ``node_id``, ingest
        #: for keys this node does not own is refused with a
        #: ``STATUS_WRONG_TOPOLOGY`` redirect carrying the map, so stale
        #: clients re-route themselves after a reshard.
        self.topology = None
        self._topology_json: Optional[str] = None
        #: Keys mid-migration on this node (source side of a reshard).
        self._migrations: Dict[str, _Migration] = {}
        #: Seconds a frozen key stays frozen without a coordinator
        #: heartbeat (a DRAIN) before it thaws itself.
        self.migration_freeze_timeout = 5.0
        self._applied_seq: Dict[str, int] = {}
        self._snap_seq: Dict[str, int] = {}
        self._seq = 1
        self._last_ticket = None
        self.wal_appends = 0
        #: Exactly-once dedup state (kept even for in-memory services, so
        #: retries within one process lifetime never double-count).
        self.sessions = SessionTable(max_sessions)
        if self.data_dir is None:
            if memory_budget is not None:
                raise InvalidParameterError(
                    "a memory_budget needs a data_dir to spill into "
                    "(in-memory services cannot evict without losing data)"
                )
            self.wal = None
            self.snapshots = None
            spill_save = spill_load = None
        else:
            if group_commit:
                self.wal = GroupCommitWal(self.data_dir / "wal.log", fsync=fsync, io=self.io)
            else:
                self.wal = WriteAheadLog(self.data_dir / "wal.log", fsync=fsync, io=self.io)
            self.snapshots = SnapshotStore(self.data_dir / "snapshots", fsync=fsync, io=self.io)

            def spill_save(key: str, payload: bytes) -> None:
                seq = self._applied_seq.get(key, 0)
                self.snapshots.save(key, seq, payload)
                self._snap_seq[key] = seq

            def spill_load(key: str) -> Optional[bytes]:
                try:
                    loaded = self.snapshots.load(key)
                except SnapshotCorruptError as exc:
                    # The key's only copy is rotten: quarantine the file
                    # and forget the key, so the *next* access reads as
                    # UNKNOWN_KEY — the exact state cluster repair heals
                    # byte-identically from a healthy replica.  This
                    # access still fails (the store reports the key as
                    # missing from the spill target).
                    self.quarantine_snapshot(key, exc)
                    return None
                return None if loaded is None else loaded[1]

        self.store = SketchStore(
            k=k,
            hra=hra,
            seed=seed,
            memory_budget=memory_budget,
            spill_save=spill_save,
            spill_load=spill_load,
            hot_key_items=hot_key_items,
            hot_shards=hot_shards,
            on_spill_load=self._reseed_from_epoch,
        )
        #: The windowed plane: per-key time-bucketed sketch rings (its
        #: seeds derive from the store's per-key seeds, in a disjoint
        #: namespace, so plain and windowed determinism coexist).
        self.windows = WindowStore(
            resolutions=window_resolutions,
            retention=window_retention,
            lateness=window_lateness,
            k=k,
            hra=hra,
            seed_fn=self.store.derive_seed,
        )
        self._window_applied_seq: Dict[str, int] = {}
        self._window_snap_seq: Dict[str, int] = {}
        #: Ring snapshots live in their own store (FRW1 bundles under
        #: ``windows/``): a key's plain and windowed checkpoints advance
        #: independently, and neither plane's snapshot can shadow the
        #: other's WAL cover point.
        self.window_snapshots = (
            None
            if self.data_dir is None
            else SnapshotStore(self.data_dir / "windows", fsync=fsync, io=self.io)
        )
        if self.wal is not None:
            if self.wal.healed_bytes:
                log.warning(
                    "healed WAL torn tail: path=%s truncated_bytes=%d — a crash "
                    "mid-append left a partial final record; it was never durable "
                    "(never acknowledged when fsync is on), all earlier records "
                    "replay normally",
                    self.wal.path,
                    self.wal.healed_bytes,
                )
            self.sessions.load(self.data_dir / "sessions.bin")
            # Ring snapshots load BEFORE WAL replay (replay applies only
            # the records newer than each key's windowed cover point) and
            # re-pin their coin streams to the snapshot epoch, mirroring
            # the save side — bit-exact windowed recovery.
            loaded_windows = self.window_snapshots.load_all(
                on_corrupt=self._quarantine_corrupt_file
            )
            for key, (seq, payload) in loaded_windows.items():
                self.windows.restore(key, payload)
                self._window_snap_seq[key] = seq
                self._window_applied_seq[key] = seq
                self.windows.reseed_epoch(key, seq)
            self._seq = recover(
                self.store,
                self.wal,
                self.snapshots,
                self._applied_seq,
                self._snap_seq,
                self.sessions,
                window_apply=self._window_apply_replay,
                window_restore=self._window_restore,
                window_snap_seq=self._window_snap_seq,
                window_applied_seq=self._window_applied_seq,
                on_corrupt=self._quarantine_corrupt_file,
            )
            if self._window_snap_seq:
                # A truncated WAL no longer witnesses the sequences the
                # windowed snapshots were stamped with; never reuse them.
                self._seq = max(self._seq, max(self._window_snap_seq.values()) + 1)
        if self.data_dir is not None and (self.data_dir / "topology.json").exists():
            # Reload the topology this node had installed before the
            # restart, so a recovered node keeps refusing keys it handed
            # off (a stale client must not be able to resurrect them).
            self._load_topology(self.data_dir / "topology.json")
        self.started_at = time.time()
        self.ingested_values = 0
        self.query_count = 0
        self.merge_count = 0
        #: Background-scrub state (counters live here even when no scrub
        #: task runs — ``scrub_once()`` can always be called directly).
        from repro.service.scrub import Scrubber

        self.scrub = None if self.data_dir is None else Scrubber(self)

    # ------------------------------------------------------------------
    # Mutations (WAL first, then the store)
    # ------------------------------------------------------------------

    def _wal_append(self, op: int, key: str, payload: bytes) -> None:
        """Append one record (sequence assignment + ticket bookkeeping)."""
        if self.degraded:
            raise DegradedError(
                f"read-only degraded mode ({self.degraded_reason}): write shed"
            )
        seq = self._seq
        self._seq += 1
        try:
            ticket = self.wal.append(op, seq, key, payload)
        except Exception as exc:
            # The record never became replayable (a failed sync append is
            # healed as a torn tail at next open); hand the sequence back
            # so the log carries no gap, then flip read-only.  Only a
            # storage failure degrades — a validation error (oversized
            # key) is the caller's problem, not the disk's.
            self._seq = seq
            if not isinstance(exc, OSError) and getattr(self.wal, "failed", None) is None:
                raise
            self.enter_degraded(f"WAL append failed: {exc}")
            raise DegradedError(f"WAL append failed, entering degraded mode: {exc}") from exc
        if ticket is not None:  # group-commit log: durability is deferred
            self._last_ticket = ticket
        self.wal_appends += 1
        self._applied_seq[key] = seq

    def commit_ticket(self):
        """The pending commit ticket covering every WAL append so far.

        ``None`` when nothing is awaiting a commit — in-memory services,
        synchronous WALs (durable at append time), or a drained group
        queue.  The server releases ingest/merge acks only after this
        resolves.  A ticket that completed **with an exception** is still
        returned: the covered records never became durable, and mapping
        it to ``None`` would let the server ack writes the WAL lost.
        """
        ticket = self._last_ticket
        if ticket is None:
            return None
        if ticket.done() and ticket.exception() is None:
            return None
        return ticket

    def wal_barrier(self) -> None:
        """Block until every queued WAL record is durable (no-op otherwise)."""
        if isinstance(self.wal, GroupCommitWal):
            self.wal.barrier()

    # ------------------------------------------------------------------
    # Degraded read-only mode (storage faults)
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self.degraded_reason is not None

    @property
    def wal_failed(self) -> bool:
        """True when the WAL is poisoned (a write/commit failed)."""
        return self.wal is not None and getattr(self.wal, "failed", None) is not None

    @property
    def disk_free_bytes(self) -> Optional[int]:
        """Free bytes under the data dir (``None``: in-memory/unknown)."""
        if self.data_dir is None:
            return None
        return self.io.disk_free(self.data_dir)

    def enter_degraded(self, reason: str) -> None:
        """Flip read-only: ingest sheds with RETRY_LATER, reads serve.

        Idempotent — the first storage failure records the reason; later
        failures while already degraded change nothing.
        """
        if self.degraded:
            return
        self.degraded_reason = str(reason)
        self.degraded_since = time.time()
        self.degraded_entries += 1
        log.error(
            "entering degraded read-only mode: %s — ingest sheds with "
            "RETRY_LATER (nothing unacknowledged is lost; sequenced "
            "clients replay), reads keep serving; recovery is automatic "
            "once the disk accepts writes again",
            reason,
        )

    def try_exit_degraded(self) -> bool:
        """Attempt to leave degraded mode; returns True on success.

        The exit sequence keeps "acknowledged == replayable" intact:

        1. Free space must be back (``min_free_bytes`` under the data
           dir) — ENOSPC would just re-poison the fresh log.
        2. The poisoned WAL is closed and reopened.  Opening self-heals
           the failed append's torn tail — poisoning stopped all later
           appends, so the tear is genuinely the last record and was
           never acknowledged.
        3. A full checkpoint makes the in-memory state durable again.
           Group-commit batches that were *applied* but never committed
           (their acks were withheld) are thereby re-covered by
           snapshots, so the store and the fresh log agree byte-exactly.
        4. Only then does the flag clear and ingest resume.

        A failure at any step leaves the service degraded for the next
        probe tick to retry.
        """
        if not self.degraded:
            return True
        if self.wal is None:
            self._clear_degraded()
            return True
        free = self.disk_free_bytes
        if free is not None and free < self.min_free_bytes:
            return False
        try:
            self.wal.close()
            if isinstance(self.wal, GroupCommitWal):
                self.wal = GroupCommitWal(
                    self.data_dir / "wal.log",
                    fsync=self._fsync,
                    max_queue=self.wal.max_queue,
                    io=self.io,
                )
            else:
                self.wal = WriteAheadLog(
                    self.data_dir / "wal.log", fsync=self._fsync, io=self.io
                )
            if self.wal.healed_bytes:
                log.warning(
                    "degraded-mode exit healed the failed append: path=%s "
                    "truncated_bytes=%d (the record was never acknowledged)",
                    self.wal.path,
                    self.wal.healed_bytes,
                )
            self._last_ticket = None
            self.snapshot_all()
        except Exception as exc:
            log.warning(
                "degraded-mode exit attempt failed (%s); staying read-only", exc
            )
            return False
        self._clear_degraded()
        return True

    def _clear_degraded(self) -> None:
        log.warning(
            "leaving degraded mode after %.1fs (%s): storage accepts "
            "writes again, ingest resumes",
            time.time() - (self.degraded_since or time.time()),
            self.degraded_reason,
        )
        self.degraded_reason = None
        self.degraded_since = None

    # ------------------------------------------------------------------
    # Snapshot quarantine (corrupt files)
    # ------------------------------------------------------------------

    def quarantine_dir(self) -> Optional[Path]:
        return None if self.data_dir is None else self.data_dir / "quarantine"

    def _quarantine_move(self, path: Path) -> Optional[Path]:
        """Move a corrupt file under ``data_dir/quarantine/``."""
        qdir = self.quarantine_dir()
        if qdir is None:
            return None
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = qdir / f"{path.name}.{suffix}"
        try:
            path.replace(target)
        except OSError:
            return None
        self.quarantined_files += 1
        return target

    def _quarantine_corrupt_file(self, path, exc) -> None:
        """``on_corrupt`` hook for recovery/scrub: move the file aside.

        Rate-limited warn via the service logger — a directory full of
        rot must not flood the log line-per-file.
        """
        moved = self._quarantine_move(Path(path))
        should_emit, suppressed = self._quarantine_log.ready("quarantine")
        if should_emit:
            log.warning(
                "quarantined corrupt snapshot file: %s -> %s (%s)%s",
                path,
                moved,
                exc,
                f" [+{suppressed} similar suppressed]" if suppressed else "",
            )

    def quarantine_snapshot(self, key: str, exc) -> None:
        """Quarantine ``key``'s snapshot file and forget the key.

        Used when the corrupt file was the key's *only* copy (the key was
        spilled).  Afterwards the key reads as unknown — on the cluster
        plane ``repair()`` sees an ``n == 0`` replica and re-fetches the
        byte-identical payload from the healthiest peer.
        """
        path = self.snapshots.directory / spill_filename(key)
        if path.exists():
            self._quarantine_corrupt_file(path, exc)
        if self.store.forget_spilled(key):
            self._snap_seq.pop(key, None)
            self._applied_seq.pop(key, None)
            self.quarantined_keys.append(key)

    def ingest(self, key: str, values, *, session=None) -> int:
        """Apply one batch to ``key``; returns the key's total ``n``.

        Validation happens *before* the WAL append — a rejected batch
        (NaN, empty) must not poison replay.  ``session`` is an optional
        ``(session_id, max_frame_seq)`` pair: the batch came through the
        exactly-once sequenced path and its WAL record must carry the
        session mark so recovery rebuilds the dedup table (see
        :class:`~repro.service.resilience.SessionTable`).
        """
        self._check_key(key)
        array = np.ascontiguousarray(values, dtype=np.float64).reshape(-1)
        if array.size == 0:
            raise InvalidParameterError("empty ingest batch")
        if np.isnan(array).any():
            raise InvalidParameterError("cannot insert NaN: items must form a total order")
        if self.wal is not None:
            payload = array.astype("<f8", copy=False).tobytes()
            if session is not None:
                self._wal_append(
                    WAL_SEQ_INGEST, key, pack_session_header(*session) + payload
                )
            else:
                self._wal_append(WAL_INGEST, key, payload)
        n = self.store.update_many(key, array)
        self.ingested_values += array.size
        if self._migrations:
            self._migration_buffer(key, wire.DRAIN_INGEST, session, array)
        return n

    def ingest_batches(
        self, key: str, arrays, *, prevalidated: bool = False, session=None
    ) -> int:
        """Coalesced ingest: several frames' batches, ONE record, ONE apply.

        The server's per-tick coalescing funnels every ``INGEST`` frame a
        connection delivered for ``key`` here.  The concatenation becomes
        a single WAL record applied by a single ``update_many`` — live
        path and replay therefore run the *same* call on the *same* bytes,
        which keeps recovery bit-exact, and compaction cost is amortized
        over the whole group exactly as the paper's schedule intends.
        Per-frame acks are reconstructed by the caller from the cumulative
        counts (``n`` grows by exactly each batch's size).
        """
        if len(arrays) == 1:
            # No kwargs in the common case: embedders (and a couple of
            # tests) monkeypatch ``ingest`` with plain two-arg callables.
            if session is None:
                return self.ingest(key, arrays[0])
            return self.ingest(key, arrays[0], session=session)
        self._check_key(key)
        array = self.store.stage_concat(arrays)
        if not prevalidated:
            # The server validates per frame before staging (so errors
            # attribute to the exact frame) and passes prevalidated=True;
            # direct callers get the full check here.
            if array.size == 0:
                raise InvalidParameterError("empty ingest batch")
            if np.isnan(array).any():
                raise InvalidParameterError("cannot insert NaN: items must form a total order")
        elif array.size == 0:
            raise InvalidParameterError("empty ingest batch")
        if self.wal is not None:
            # tobytes() owns the bytes — the WAL writer thread must never
            # see the reusable staging scratch this view points into.
            payload = array.astype("<f8", copy=False).tobytes()
            if session is not None:
                self._wal_append(
                    WAL_SEQ_INGEST, key, pack_session_header(*session) + payload
                )
            else:
                self._wal_append(WAL_INGEST, key, payload)
        n = self.store.update_many(key, array)
        self.ingested_values += array.size
        if self._migrations:
            # pack_drain_entry copies the values immediately, so handing it
            # the reusable staging scratch view is safe.
            self._migration_buffer(key, wire.DRAIN_INGEST, session, array)
        return n

    def current_n(self, key: str) -> int:
        """``key``'s total count right now (``0`` for an unknown key).

        Duplicate sequenced frames are acked with the key's *current* n —
        the frame is already counted, so "n after this frame" is simply
        "n now".  Works for spilled keys without reloading them.
        """
        try:
            return int(self.store.key_stats(key)["n"])
        except (KeyError, ServiceError):
            return 0

    @property
    def wal_queue_depth(self) -> int:
        """Records queued behind the group-commit writer (0 otherwise)."""
        if isinstance(self.wal, GroupCommitWal):
            return self.wal.queue_depth
        return 0

    @staticmethod
    def _check_key(key: str) -> None:
        """Refuse to create the empty key.

        The wire ``STATS`` opcode reads an empty key as "server-wide", so
        an empty-keyed sketch would be ingestible yet unreachable for
        per-key stats; rejecting it at creation keeps every stored key
        addressable by every opcode.
        """
        if not key:
            raise ServiceError(
                "the empty key is reserved (STATS uses it for server-wide stats)"
            )

    def merge(self, key: str, payload: bytes) -> int:
        """Union an ``FRQ1`` donor payload into ``key``; returns its ``n``."""
        self._check_key(key)
        # Decode first: a corrupt payload must fail before it reaches the WAL.
        from repro.fast import FastReqSketch

        donor = FastReqSketch.from_bytes(payload)
        if donor.k != self.store.k or donor.hra != self.store.hra or donor.n_bound is not None:
            # Every merge-incompatibility must be rejected HERE: once a
            # record reaches the WAL it is replayed on every restart, and a
            # record that cannot apply would brick recovery permanently.
            raise ServiceError(
                f"merge payload has k={donor.k}/hra={donor.hra}/"
                f"n_bound={donor.n_bound}; this service runs "
                f"k={self.store.k}/hra={self.store.hra}/n_bound=None"
            )
        if self.wal is not None:
            self._wal_append(WAL_MERGE, key, bytes(payload))
        n = self.store.merge_sketch(key, donor)
        self.merge_count += 1
        return n

    def payload(self, key: str) -> Tuple[int, bytes]:
        """``(n, FRQ1 payload)`` for ``key`` — the FETCH/repair read path.

        Read-only: serializing never mutates the summary, so no WAL
        record is needed.  Raises ``KeyError`` for unknown keys (mapped
        to ``UNKNOWN_KEY`` on the wire).
        """
        self._check_key(key)
        payload = self.store.payload(key)
        return self.current_n(key), payload

    # ------------------------------------------------------------------
    # Cluster topology & live migration (see repro.cluster.reshard)
    # ------------------------------------------------------------------

    def topology_json(self) -> str:
        """The installed topology as JSON (empty string when none)."""
        return self._topology_json or ""

    def install_topology(self, map_json: str) -> int:
        """Install (and persist) a cluster topology; returns its version.

        Installing the same or a newer map is always accepted; an *older*
        version is refused — the cutover protocol installs the new map on
        destinations first, and a laggard re-delivery of the old map must
        not roll a node back to claiming keys it already handed off.
        """
        # Lazy import: the service plane must not pull the cluster plane
        # in at module scope (repro.cluster imports the client, which
        # imports this module).
        from repro.cluster.ring import ClusterMap

        new_map = ClusterMap.from_json(map_json)
        if self.topology is not None and new_map.version < self.topology.version:
            raise ServiceError(
                f"refusing topology downgrade: v{self.topology.version} is "
                f"installed, v{new_map.version} was offered"
            )
        self.topology = new_map
        self._topology_json = new_map.to_json()
        if self.data_dir is not None:
            path = self.data_dir / "topology.json"
            tmp = path.with_name("topology.json.tmp")
            tmp.write_text(self._topology_json + "\n")
            os.replace(tmp, path)
        return new_map.version

    def _load_topology(self, path: Path) -> None:
        from repro.cluster.ring import ClusterMap

        try:
            self.topology = ClusterMap.load(path)
            self._topology_json = self.topology.to_json()
        except Exception as exc:
            # A torn topology file must not keep the node down — without a
            # map the node simply accepts everything, exactly like a node
            # that never saw a topology; the next install rewrites it.
            log.warning("ignoring unreadable topology file %s: %s", path, exc)

    def owns_key(self, key: str) -> bool:
        """Whether this node may serve ``key`` under the installed map.

        Vacuously true for standalone services (no topology or no
        ``node_id``).  A node absent from the installed map — the tail end
        of its own decommission — owns nothing.
        """
        if self.topology is None or self.node_id is None:
            return True
        if self.node_id not in self.topology:
            return False
        return any(
            node.node_id == self.node_id for node in self.topology.replicas(key)
        )

    def _check_migration(self, key: str) -> Optional[_Migration]:
        """``key``'s live migration state, expiring stale freezes."""
        state = self._migrations.get(key)
        if state is None:
            return None
        if state.frozen and time.time() >= state.deadline:
            # The coordinator stopped heartbeating (DRAIN) mid-cutover:
            # auto-abort so the key thaws and the source stays
            # authoritative.  Every write shed while frozen was never
            # acked, so nothing is lost by resuming normal ingest.
            log.warning(
                "migration freeze for key %r expired without a commit; thawing",
                key,
            )
            del self._migrations[key]
            return None
        return state

    def migration_active(self, key: str) -> bool:
        return self._check_migration(key) is not None

    def migration_frozen(self, key: str) -> bool:
        state = self._check_migration(key)
        return state is not None and state.frozen

    def _migration_buffer(self, key, kind, session, values, timestamps=None) -> None:
        state = self._check_migration(key)
        if state is not None and not state.frozen:
            state.entries.append(wire.pack_drain_entry(kind, session, values, timestamps))

    def migrate_begin(self, key: str) -> bytes:
        """Capture ``key``'s full state as an MB1 bundle; start forwarding.

        The capture is atomic with respect to ingest (synchronous under
        the event loop): the bundle holds the key's FRQ1 payload, its
        per-session exactly-once high-water marks, and its FRW1 window
        bundle as of this instant, and every write applied *after* this
        instant is buffered as a drain entry.  Re-issuing BEGIN recaptures
        and resets the buffer (a restarted transfer supersedes the old
        one); an existing freeze is preserved, which is what makes the
        final post-freeze recapture a complete image of the key.
        """
        self._check_key(key)
        has_sketch = key in self.store.keys()
        has_window = key in self.windows.keys()
        if not has_sketch and not has_window:
            raise KeyError(key)
        sketch = self.store.payload(key) if has_sketch else None
        window = self.windows.payload(key) if has_window else None
        marks = self.sessions.marks_for_key(key)
        state = self._migrations.get(key)
        if state is None:
            state = self._migrations[key] = _Migration()
        state.entries = []
        return wire.pack_migration_bundle(self.current_n(key), sketch, marks, window)

    def migrate_drain(self, key: str, *, freeze: bool = False):
        """``(frozen, entries)``: hand over (and clear) the forward buffer.

        ``freeze=True`` flips the key to frozen — subsequent writes are
        shed with ``RETRY_LATER`` until COMMIT/ABORT (or the freeze
        deadline).  Any DRAIN on a frozen key extends the deadline: it is
        the coordinator's liveness heartbeat.
        """
        state = self._check_migration(key)
        if state is None:
            raise ServiceError(
                f"no migration in progress for key {key!r} "
                "(send MIGRATE BEGIN first, or the freeze timed out)"
            )
        entries = state.entries
        state.entries = []
        if freeze:
            state.frozen = True
        if state.frozen:
            state.deadline = time.time() + self.migration_freeze_timeout
        return state.frozen, entries

    def migrate_commit(self, key: str) -> None:
        """End ``key``'s migration (drop buffer + freeze).  Idempotent."""
        self._migrations.pop(key, None)

    def migrate_abort(self, key: str) -> None:
        """Abandon ``key``'s migration; the source stays authoritative."""
        self._migrations.pop(key, None)

    def migrate_apply(self, key: str, bundle: bytes) -> int:
        """Install a pushed MB1 bundle as ``key``'s entire state.

        The destination side of a reshard.  REPLACE semantics — the
        decoded sketch *becomes* the key's summary, the shipped session
        marks fold into the dedup table (max-fold, so a replica that
        already saw newer client frames keeps its higher marks), the
        window bundle replaces the key's rings.  Replace-not-merge makes
        a retried push idempotent: applying the same bundle twice cannot
        double-count.  Durable via one ``WAL_MIGRATE_SET`` record carrying
        the bundle verbatim; every part is validated *before* the append
        so a record that cannot apply never reaches the log (same rule as
        :meth:`merge`).  Returns the key's resulting ``n``.
        """
        self._check_key(key)
        bundle = bytes(bundle)
        try:
            n, sketch, marks, window = wire.unpack_migration_bundle(bundle)
        except Exception as exc:
            raise ServiceError(f"bad migration bundle for key {key!r}: {exc}") from exc
        if sketch is not None:
            from repro.fast import FastReqSketch

            try:
                donor = FastReqSketch.from_bytes(sketch)
            except Exception as exc:
                raise ServiceError(
                    f"migration bundle for key {key!r} carries an undecodable "
                    f"FRQ1 payload: {exc}"
                ) from exc
            if (
                donor.k != self.store.k
                or bool(donor.hra) != self.store.hra
                or donor.n_bound is not None
            ):
                raise ServiceError(
                    f"migration payload has k={donor.k}/hra={donor.hra}/"
                    f"n_bound={donor.n_bound}; this service runs "
                    f"k={self.store.k}/hra={self.store.hra}/n_bound=None"
                )
        if window is not None:
            from repro.windowed.wire import unpack_rings

            try:
                unpack_rings(window, k=self.windows.k)
            except Exception as exc:
                raise ServiceError(
                    f"migration bundle for key {key!r} carries an undecodable "
                    f"FRW1 window bundle: {exc}"
                ) from exc
        if self.wal is not None:
            self._wal_append(WAL_MIGRATE_SET, key, bundle)
            if window is not None:
                self._window_applied_seq[key] = self._applied_seq[key]
        for sid, mark in marks.items():
            self.sessions.observe(sid, key, mark)
        if sketch is not None:
            self.store.replace_payload(key, sketch)
        if window is not None:
            self._window_restore(key, window)
        return self.current_n(key) if sketch is not None else int(n)

    def _window_restore(self, key: str, payload: bytes) -> None:
        """Install a migrated FRW1 bundle (live apply AND WAL replay).

        Epoch-reseeds to epoch 0 on every installer: FRW1 carries no RNG
        state, and each replica (and each replay of the same record)
        installs the identical bundle, so pinning every side to the same
        epoch keeps post-migration windowed compactions bit-identical.
        """
        self.windows.restore(key, payload)
        self.windows.reseed_epoch(key, 0)

    # ------------------------------------------------------------------
    # Windowed plane (see repro.windowed)
    # ------------------------------------------------------------------

    def _wal_window_append(self, op: int, key: str, payload: bytes) -> None:
        """A windowed WAL record: same log, separate applied-seq map."""
        if self.degraded:
            raise DegradedError(
                f"read-only degraded mode ({self.degraded_reason}): write shed"
            )
        seq = self._seq
        self._seq += 1
        try:
            ticket = self.wal.append(op, seq, key, payload)
        except Exception as exc:
            self._seq = seq
            if not isinstance(exc, OSError) and getattr(self.wal, "failed", None) is None:
                raise
            self.enter_degraded(f"WAL append failed: {exc}")
            raise DegradedError(f"WAL append failed, entering degraded mode: {exc}") from exc
        if ticket is not None:
            self._last_ticket = ticket
        self.wal_appends += 1
        self._window_applied_seq[key] = seq

    def window_ingest(self, key: str, timestamps, values, *, session=None):
        """Apply one (timestamps, values) batch to ``key``'s rings.

        Returns ``(accepted_total, events)``: the key's lifetime accepted
        count (the windowed ack — monotone, so duplicate sequenced frames
        ack consistently) and the buckets this batch closed (the server
        turns those into subscription pushes).  Validation happens before
        the WAL append, and the record carries the timestamps — replay
        re-buckets identically because bucketing is a pure function of
        the payload.
        """
        self._check_key(key)
        ts = np.ascontiguousarray(timestamps, dtype=np.float64).reshape(-1)
        vals = np.ascontiguousarray(values, dtype=np.float64).reshape(-1)
        self.windows.validate(ts, vals)
        if self.wal is not None:
            payload = (
                ts.astype("<f8", copy=False).tobytes()
                + vals.astype("<f8", copy=False).tobytes()
            )
            if session is not None:
                self._wal_window_append(
                    WAL_SEQ_WINDOW_INGEST, key, pack_session_header(*session) + payload
                )
            else:
                self._wal_window_append(WAL_WINDOW_INGEST, key, payload)
        accepted, events = self.windows.ingest(key, ts, vals)
        self.ingested_values += int(vals.size)
        if self._migrations:
            self._migration_buffer(key, wire.DRAIN_WINDOW, session, vals, ts)
        return accepted, events

    def window_accepted(self, key: str) -> int:
        """``key``'s lifetime accepted count (duplicate-frame acks)."""
        return self.windows.accepted(key)

    def _window_apply_replay(self, key: str, payload) -> None:
        """Re-apply one windowed WAL payload (timestamps + values halves)."""
        array = np.frombuffer(payload, dtype="<f8")
        if array.size % 2:
            raise ServiceError("windowed WAL payload has an odd float count")
        half = array.size // 2
        self.windows.ingest(key, array[:half], array[half:])

    def window_query(self, key: str, kind, resolution: float, start: float, end: float, points):
        """A horizon read: ``(n, eps, values, retained)`` over ``[start, end)``.

        Merges the overlapping buckets of one ring into a fresh
        deterministic-seeded scratch (one ``merge_many``) and evaluates
        the points against the merge — the windowed twin of
        :meth:`query_points`.
        """
        kind_name = self._kind_name(kind)
        merged = self.windows.horizon(key, start, end, resolution)
        if merged.is_empty:
            raise EmptySketchError(
                f"no windowed data in [{start}, {end}) for key {key!r}"
            )
        values = self.store.evaluate(merged, kind_name, points)
        self.query_count += 1
        return int(merged.n), float(merged.error_bound()), values, int(merged.num_retained)

    # ------------------------------------------------------------------
    # Queries (index-backed; see repro.service.store.SketchStore.query)
    # ------------------------------------------------------------------

    #: Wire kind codes -> the store's kind names (derived, not re-listed).
    _KIND_NAMES = {code: name for name, code in wire.QUERY_KINDS.items()}

    @classmethod
    def _kind_name(cls, kind) -> str:
        name = cls._KIND_NAMES.get(wire.kind_code(kind))
        if name is None:
            raise ServiceError(f"unknown query kind {kind:#x}")
        return name

    def query(self, key: str, fractions):
        """``(n, error_bound, quantiles, num_retained)`` for ``key``."""
        self.query_count += 1
        return self.store.query(key, "quantiles", fractions)

    def cdf(self, key: str, split_points):
        """``(n, error_bound, masses, num_retained)`` — one extra mass entry."""
        self.query_count += 1
        return self.store.query(key, "cdf", split_points)

    def rank(self, key: str, values):
        """``(n, error_bound, ranks, num_retained)`` — ranks as exact f64."""
        self.query_count += 1
        return self.store.query(key, "ranks", values)

    def query_points(self, key: str, kind, points, cache: Optional[dict] = None):
        """One ``MULTI_QUERY`` request: ``(n, eps, values, retained)``.

        ``cache`` maps keys to already-resolved sketches so every request
        in one frame shares a single store lookup (and a single LRU
        touch / spill reload) per key — the per-frame index reuse the
        batched read path is built around.
        """
        kind_name = self._kind_name(kind)
        sketch = cache.get(key) if cache is not None else None
        if sketch is None:
            sketch = self.store.get(key)
            if cache is not None:
                cache[key] = sketch
        self.query_count += 1
        values = self.store.evaluate(sketch, kind_name, points)
        return int(sketch.n), float(sketch.error_bound()), values, int(sketch.num_retained)

    def query_batch(self, key: str, kind, points):
        """A uniform ``MULTI_QUERY`` frame: one vectorized engine call."""
        result = self.store.query_batch(key, self._kind_name(kind), points)
        self.query_count += int(points.shape[0])
        return result

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def _epoch_seed(self, key: str, seq: int) -> Optional[int]:
        """The deterministic RNG seed for ``key``'s post-``seq`` coin stream."""
        base = self.store.derive_seed(key)
        if base is None:
            return None
        return (base ^ (seq * 0x9E3779B97F4A7C15)) & (2**63 - 1)

    def _reseed_from_epoch(self, key: str, sketch) -> None:
        """Pin ``sketch``'s coin stream to its durable history.

        Called after a snapshot is written (live side) and after one is
        loaded (recovery/reload side).  ``FRQ1`` does not carry RNG state,
        so without this a key recovered from a snapshot plus a WAL tail
        would replay its post-snapshot compactions with different coins
        and settle on slightly different (still in-guarantee) answers.
        Re-seeding both sides from ``(key, snapshot seq)`` makes the coin
        stream a deterministic function of the key's durable history, so
        recovery is bit-exact in every case.  Skipped for unseeded stores
        (no determinism was promised) and for promoted hot keys (their
        snapshot is a collapsed union; exact replay is not claimed).
        """
        seed = self._epoch_seed(key, self._snap_seq.get(key, 0))
        if seed is None:
            return
        sketch._rng = np.random.default_rng(seed)

    def snapshot_all(self) -> int:
        """Checkpoint every dirty key, then truncate the WAL.

        Returns the number of snapshot files written.  Spilled keys are
        clean by construction (eviction snapshots them); resident keys are
        dirty when records newer than their snapshot exist.  After the
        pass every WAL record is covered by some snapshot, so the log
        resets.  Synchronous end to end — under asyncio this cannot
        interleave with a mutation (see the module docstring).
        """
        if self.snapshots is None:
            return 0
        from repro.fast import FastReqSketch

        written = 0
        for key in self.store.resident_keys:
            applied = self._applied_seq.get(key, 0)
            if applied <= self._snap_seq.get(key, -1):
                continue
            self.snapshots.save(key, applied, self.store.peek_payload(key))
            self._snap_seq[key] = applied
            written += 1
            sketch = self.store.peek(key)
            if isinstance(sketch, FastReqSketch):
                self._reseed_from_epoch(key, sketch)
        # Windowed rings checkpoint as FRW1 bundles in their own store,
        # then re-pin their coin streams to the snapshot epoch — the same
        # save-side reseed the load side applies, so the post-snapshot
        # WAL tail replays with identical coins.
        if self.window_snapshots is not None:
            for key in self.windows.keys():
                applied = self._window_applied_seq.get(key, 0)
                if applied <= self._window_snap_seq.get(key, -1):
                    continue
                self.window_snapshots.save(key, applied, self.windows.payload(key))
                self._window_snap_seq[key] = applied
                written += 1
                self.windows.reseed_epoch(key, applied)
        # Persist the session high-water marks BEFORE truncating: the WAL
        # records that carried them are about to disappear, and a crash
        # between save and truncate is harmless (replay re-observes the
        # same marks — max-fold is idempotent).
        self.sessions.save(self.data_dir / "sessions.bin", fsync=self.wal.fsync)
        self.wal.truncate()
        return written

    def close(self, *, snapshot: bool = True) -> None:
        """Release file handles; by default checkpoint first."""
        if snapshot and self.wal is not None:
            self.snapshot_all()
        if self.wal is not None:
            self.wal.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self, key: Optional[str] = None) -> dict:
        if key:
            return self.store.key_stats(key)
        report = {
            "version": __version__,
            "node_id": self.node_id,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "ingested_values": self.ingested_values,
            "query_count": self.query_count,
            "merge_count": self.merge_count,
            "durable": self.wal is not None,
            "wal_bytes": self.wal.size_bytes if self.wal is not None else 0,
            "wal_healed_bytes": self.wal.healed_bytes if self.wal is not None else 0,
            "wal_appends": self.wal_appends,
            "next_seq": self._seq,
            "sessions": len(self.sessions),
            "topology_version": None if self.topology is None else self.topology.version,
            "migrating_keys": len(self._migrations),
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "degraded_entries": self.degraded_entries,
            "disk_free_bytes": self.disk_free_bytes,
            "quarantined_files": self.quarantined_files,
            "quarantined_keys": len(self.quarantined_keys),
        }
        if self.scrub is not None:
            report["scrub"] = self.scrub.stats()
        if isinstance(self.wal, GroupCommitWal):
            wal_stats = self.wal.stats()
            report["wal_queue_depth"] = wal_stats.pop("queue_depth")
            report["group_commit"] = wal_stats
        else:
            report["wal_queue_depth"] = 0
        report.update(self.store.stats())
        report["windowed"] = self.windows.stats()
        return report


class _Connection(asyncio.BufferedProtocol):
    """One client connection on the pipelined hot path.

    A :class:`asyncio.BufferedProtocol`: the kernel's ``recv`` lands
    directly in the connection's parse buffer (:meth:`get_buffer` hands
    the transport the writable tail), so inbound bytes are copied exactly
    once — kernel to buffer — and one syscall can deliver far more than
    the stream-reader's fixed chunk.  :meth:`buffer_updated` parses every
    complete frame as a zero-copy :class:`memoryview`, hands the whole
    batch to the server's coalescing dispatcher, then compacts.
    Responses are staged per batch and written in request order; a batch
    whose WAL records are still in the group-commit queue parks behind
    its commit ticket in :attr:`_outq` (earlier pending batches keep
    later ready ones queued, so ordering survives mixed workloads).
    """

    __slots__ = (
        "server",
        "transport",
        "_buf",
        "_rpos",
        "_wpos",
        "_outq",
        "_close_after_flush",
        "session_id",
        "_rejected",
        "_tick_backlog",
    )

    #: Initial receive-buffer size; grows to fit the largest frame seen.
    #: Small on purpose — mostly-idle connections in a many-client
    #: deployment should not pin megabytes each; a pipelining connection
    #: pays a one-time geometric growth instead.
    _INITIAL_BUFFER = 1 << 16
    #: Minimum writable tail handed to the transport per recv.
    _MIN_RECV = 1 << 16
    #: Socket receive-buffer request (large windows without GIL ping-pong).
    _SO_RCVBUF = 1 << 21

    def __init__(self, server: "QuantileServer") -> None:
        self.server = server
        self.transport = None
        self._buf = bytearray(self._INITIAL_BUFFER)
        self._rpos = 0  # parse offset
        self._wpos = 0  # fill offset
        #: Ordered (ticket, payload) pairs awaiting write.
        self._outq: deque = deque()
        self._close_after_flush = False
        #: Exactly-once session granted via HELLO (None until negotiated).
        self.session_id: Optional[str] = None
        self._rejected = False
        #: Unparsed bytes at the start of the current tick — the overload
        #: watermark input (capacity never shrinks, so it is useless here).
        self._tick_backlog = 0

    # -- asyncio.BufferedProtocol hooks --------------------------------

    def connection_made(self, transport) -> None:
        self.transport = transport
        server = self.server
        if server.draining or (
            server.max_connections is not None
            and len(server._transports) >= server.max_connections
        ):
            # Refuse at the door with a retryable error so the client's
            # backoff loop can come back, then close.  The connection is
            # never registered — it does not count against the limit and
            # its bytes are ignored.
            self._rejected = True
            server.rejected_connections += 1
            reason = "draining" if server.draining else "connection limit reached"
            transport.write(
                wire.encode_frame(
                    wire.error_body(wire.STATUS_RETRY_LATER, f"{reason}; retry later")
                )
            )
            transport.close()
            return
        server.connections += 1
        server._transports.add(transport)
        server._conns.add(self)
        sock = transport.get_extra_info("socket")
        if sock is not None:
            try:
                import socket as _socket

                sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_RCVBUF, self._SO_RCVBUF)
            except OSError:  # pragma: no cover - platform quirk, not fatal
                pass

    def connection_lost(self, exc) -> None:
        self.server._transports.discard(self.transport)
        self.server._conns.discard(self)
        self.server.subscriptions.drop_connection(self)
        self._outq.clear()

    def eof_received(self):
        # A half-closing client (write_eof, then read acks) must still
        # receive everything owed — including acks parked behind a
        # pending group-commit ticket.  Keep the transport open and close
        # once the output queue drains.
        self._close_after_flush = True
        self._flush_outq()
        return True

    def pause_writing(self) -> None:
        # The kernel send buffer is full: stop reading new requests so a
        # slow reader cannot balloon our response queue.
        if self.transport is not None:
            self.transport.pause_reading()

    def resume_writing(self) -> None:
        if self.transport is not None:
            self.transport.resume_reading()

    def get_buffer(self, sizehint: int) -> memoryview:
        buf = self._buf
        free = len(buf) - self._wpos
        if free < self._MIN_RECV:
            pending = self._wpos - self._rpos
            if self._rpos:
                # Move the unparsed tail (at most one partial frame) to
                # the front; capacity is preserved, no reallocation.
                buf[:pending] = bytes(memoryview(buf)[self._rpos : self._wpos])
                self._rpos = 0
                self._wpos = pending
                free = len(buf) - pending
            if free < self._MIN_RECV:
                # A frame larger than the buffer is mid-flight: grow to
                # fit its declared length (bounded by MAX_FRAME + header).
                needed = self._MIN_RECV
                if pending >= 4:
                    (length,) = wire._LEN.unpack_from(buf, 0)
                    if length <= wire.MAX_FRAME:
                        needed = max(needed, 4 + length - pending)
                buf.extend(bytes(needed + len(buf)))  # geometric growth
        return memoryview(buf)[self._wpos :]

    def buffer_updated(self, nbytes: int) -> None:
        if self._rejected:
            return
        try:
            self._wpos += nbytes
            self._tick_backlog = self._wpos - self._rpos
            buf = self._buf
            frames: List[memoryview] = []
            view = memoryview(buf)
            pos = self._rpos
            end = self._wpos
            oversized: Optional[int] = None
            while end - pos >= 4:
                (length,) = wire._LEN.unpack_from(buf, pos)
                if length > wire.MAX_FRAME:
                    oversized = length
                    break
                if end - pos - 4 < length:
                    break
                frames.append(view[pos + 4 : pos + 4 + length])
                pos += 4 + length
            if frames:
                # Dispatch is synchronous: every frame's values are copied
                # into sketches/WAL payloads before we return, so the
                # views can be released and the buffer compacted.
                payload, ticket = self.server._process_frames(frames, self)
            else:
                payload, ticket = b"", None
            for frame in frames:
                frame.release()
            view.release()
            if pos == self._wpos:
                self._rpos = self._wpos = 0
            else:
                self._rpos = pos
            if payload:
                self._enqueue(ticket, payload)
            if oversized is not None:
                self._enqueue(
                    None,
                    wire.encode_frame(
                        wire.error_body(
                            wire.STATUS_BAD_REQUEST,
                            f"frame of {oversized} bytes exceeds cap {wire.MAX_FRAME}",
                        )
                    ),
                )
                self._close_after_flush = True
                self._flush_outq()
        except Exception:  # pragma: no cover - never kill the event loop
            log.exception("unhandled error in connection parse loop; closing connection")
            if self.transport is not None:
                self.transport.close()

    # -- ordered, commit-gated response writes -------------------------

    def _enqueue(self, ticket, payload: bytes) -> None:
        if ticket is None and not self._outq:
            if self.transport is not None:
                self.transport.write(payload)
            return
        self._outq.append((ticket, payload))
        if ticket is not None:
            # Resolved on the WAL writer thread; hop back to the loop.
            loop = self.server._loop
            ticket.add_done_callback(
                lambda _fut: loop.call_soon_threadsafe(self._flush_outq)
            )
        self._flush_outq()

    def _flush_outq(self) -> None:
        transport = self.transport
        while self._outq:
            ticket, payload = self._outq[0]
            if ticket is not None:
                if not ticket.done():
                    return
                if ticket.exception() is not None:
                    # The group commit failed (disk full, ...): the staged
                    # acks are lies now.  Drop the connection — the client
                    # sees a transport error and knows the batch outcome
                    # is indeterminate; recovery replays only what commit-
                    # ted.  Never send an OK ack for a lost record.
                    log.error(
                        "WAL group commit failed: %s; dropping connection "
                        "instead of acking",
                        ticket.exception(),
                    )
                    # The WAL is poisoned (every later commit would fail
                    # too): flip the whole server read-only rather than
                    # letting each connection rediscover the corpse.
                    self.server.service.enter_degraded(
                        f"WAL group commit failed: {ticket.exception()}"
                    )
                    self._outq.clear()
                    if transport is not None:
                        transport.abort()
                    return
            self._outq.popleft()
            if transport is not None:
                transport.write(payload)
        if self._close_after_flush and transport is not None:
            transport.close()


class QuantileServer:
    """The asyncio TCP front for a :class:`QuantileService`.

    Args:
        service: The service to expose (owned by the caller).
        host, port: Bind address; port ``0`` picks a free port (read it
            back from :attr:`port` after :meth:`start`).
        snapshot_interval: Seconds between periodic ``snapshot_all``
            passes (``None`` disables; the ``SNAPSHOT`` opcode and
            graceful stop still checkpoint).
        max_connections: Cap on concurrently open connections; arrivals
            past it are refused with ``STATUS_RETRY_LATER`` (``None`` =
            unlimited).
        overload: An :class:`~repro.service.resilience.OverloadPolicy`
            deciding when ingest is shed with ``STATUS_RETRY_LATER``.
            Defaults to ``OverloadPolicy()``; pass ``None`` to disable
            shedding entirely.
        drain_timeout: Default deadline (seconds) for a graceful drain —
            how long :meth:`stop` waits for in-flight acks to flush.
        scrub_interval: Seconds between background integrity scrub
            passes over retained snapshots and the WAL (``None``
            disables; durable services only).
        degraded_probe_interval: Cadence (seconds) of the degraded-mode
            probe, which notices a poisoned WAL and attempts
            ``try_exit_degraded`` once the disk recovers.
    """

    def __init__(
        self,
        service: QuantileService,
        *,
        host: str = "127.0.0.1",
        port: int = 7379,
        snapshot_interval: Optional[float] = None,
        max_connections: Optional[int] = None,
        overload=_DEFAULT_OVERLOAD,
        drain_timeout: float = 10.0,
        scrub_interval: Optional[float] = None,
        degraded_probe_interval: float = 0.5,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.snapshot_interval = snapshot_interval
        self.max_connections = max_connections
        self.overload = OverloadPolicy() if overload is _DEFAULT_OVERLOAD else overload
        self.drain_timeout = drain_timeout
        self.scrub_interval = scrub_interval
        self.degraded_probe_interval = degraded_probe_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._snapshot_task: Optional[asyncio.Task] = None
        self._scrub_task: Optional[asyncio.Task] = None
        self._probe_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._transports: set = set()
        self._conns: set = set()
        self.connections = 0
        #: True once a graceful drain began: no new connections, all
        #: ingest shed, reads still answered until the deadline.
        self.draining = False
        #: Sequenced ingest frames shed with RETRY_LATER (observability).
        self.shed_count = 0
        #: Connections refused at the door (limit reached or draining).
        self.rejected_connections = 0
        self._stopped = False
        self._snapshot_log_limit = RateLimiter(30.0)
        #: Per-opcode frame counts (STATS: observe the pipeline in prod).
        self.op_counts: Dict[str, int] = {}
        #: Live SUBSCRIBE registrations (the server-push surface).
        self.subscriptions = SubscriptionHub()

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await self._loop.create_server(
            lambda: _Connection(self), self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.snapshot_interval is not None and self.service.wal is not None:
            self._snapshot_task = asyncio.ensure_future(self._periodic_snapshots())
        if self.scrub_interval is not None and self.service.scrub is not None:
            self._scrub_task = asyncio.ensure_future(self._periodic_scrub())
        if self.service.wal is not None:
            self._probe_task = asyncio.ensure_future(self._degraded_probe())

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(
        self, *, snapshot: bool = True, drain: bool = False, drain_timeout: Optional[float] = None
    ) -> None:
        """Stop accepting, drop connections, optionally checkpoint.

        ``snapshot=False`` models a crash: durable state is whatever the
        WAL and existing snapshots already hold (the recovery tests lean
        on this).

        ``drain=True`` is the graceful path (SIGTERM): stop accepting,
        shed new ingest with ``STATUS_RETRY_LATER``, wait up to
        ``drain_timeout`` for every connection's staged acks to flush
        (including acks parked behind group-commit tickets), barrier the
        WAL, then close.  Clients with retry policies fail over cleanly —
        every ack they hold is durable, everything shed was never applied.
        """
        if self._stopped:
            return
        self._stopped = True
        self.draining = True
        for attr in ("_snapshot_task", "_scrub_task", "_probe_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            deadline = self._loop.time() + (
                self.drain_timeout if drain_timeout is None else drain_timeout
            )
            while any(conn._outq for conn in self._conns):
                if self._loop.time() >= deadline:
                    log.warning(
                        "drain deadline reached with %d connections still "
                        "flushing; closing them",
                        sum(1 for conn in self._conns if conn._outq),
                    )
                    break
                await asyncio.sleep(0.02)
            try:
                # Off-loop: the barrier blocks on the WAL writer thread.
                await self._loop.run_in_executor(None, self.service.wal_barrier)
            except ServiceError as exc:  # pragma: no cover - poisoned WAL
                log.error("WAL barrier failed during drain: %s", exc)
        for transport in list(self._transports):
            transport.close()
        self._transports.clear()
        self._conns.clear()
        self.service.close(snapshot=snapshot)

    async def _periodic_snapshots(self) -> None:
        while True:
            await asyncio.sleep(self.snapshot_interval)
            if self.service.degraded:
                # The disk already refused writes; hammering it with a
                # full checkpoint just burns the rate-limit budget.  The
                # degraded probe checkpoints on recovery.
                continue
            try:
                self.service.snapshot_all()
            except Exception as exc:
                # A transient failure (disk full, permission blip) must not
                # kill the checkpoint loop for the rest of the process —
                # the WAL keeps everything durable; report (rate-limited:
                # one line per window, not one per attempt) and retry.
                emit, suppressed = self._snapshot_log_limit.ready("periodic-snapshot")
                if emit:
                    log.warning(
                        "periodic snapshot failed (will retry): %s%s",
                        exc,
                        f" ({suppressed} repeats suppressed)" if suppressed else "",
                    )

    async def _periodic_scrub(self) -> None:
        """Run one integrity pass per ``scrub_interval`` seconds.

        ``scrub_once`` mutates service state (quarantine, snapshot
        rewrite), so it runs on the event loop like every other mutation
        — a pass over a few hundred snapshots is milliseconds.
        """
        while True:
            await asyncio.sleep(self.scrub_interval)
            if self.service.degraded:
                continue  # the disk is the problem; scrubbing it isn't
            try:
                self.service.scrub.scrub_once()
            except Exception as exc:  # pragma: no cover - defensive
                log.warning("background scrub pass failed (will retry): %s", exc)

    async def _degraded_probe(self) -> None:
        """Watch for a poisoned WAL; attempt recovery while degraded.

        Two jobs on one cadence: (1) a group-commit failure poisons the
        WAL on the writer thread — if no subsequent write has tripped
        ``enter_degraded`` yet, do it here so HEALTH flips promptly;
        (2) while degraded, call ``try_exit_degraded`` each tick — it
        re-checks free space and rebuilds the WAL, so recovery happens
        without operator action the moment the disk clears.
        """
        while True:
            await asyncio.sleep(self.degraded_probe_interval)
            service = self.service
            try:
                if not service.degraded and service.wal_failed:
                    failure = getattr(service.wal, "failed", None)
                    service.enter_degraded(f"WAL poisoned: {failure}")
                elif service.degraded:
                    service.try_exit_degraded()
            except Exception as exc:  # pragma: no cover - defensive
                log.warning("degraded-mode probe failed (will retry): %s", exc)

    # ------------------------------------------------------------------
    # Batch dispatch: coalescing + commit gating
    # ------------------------------------------------------------------

    def _count_op(self, op: int) -> None:
        name = wire.OP_NAMES.get(op, f"op_{op:#x}")
        self.op_counts[name] = self.op_counts.get(name, 0) + 1

    def _topology_reject(self, key: str) -> Optional[bytes]:
        """A ``WRONG_TOPOLOGY`` redirect body when this node does not own
        ``key`` under the installed map, else ``None``.  The body carries
        the map itself so the client refreshes and re-routes in one round
        trip."""
        service = self.service
        if service.owns_key(key):
            return None
        return wire.wrong_topology_body(
            f"node {service.node_id!r} does not own key {key!r} under "
            f"topology v{service.topology.version}",
            service.topology_json(),
        )

    def _route_reject(self, key: str) -> Optional[bytes]:
        """The write-path routing guard: freeze shed or topology redirect.

        Frozen-for-cutover keys shed with ``RETRY_LATER`` (the write is
        never acked, so the client retries it — against the new owner once
        the topology lands).  Unowned keys redirect with the installed
        map.  ``None`` means the write may proceed.
        """
        service = self.service
        if service._migrations and service.migration_frozen(key):
            return wire.error_body(
                wire.STATUS_RETRY_LATER,
                f"key {key!r} is frozen for a topology cutover; retry later",
            )
        if service.topology is not None:
            return self._topology_reject(key)
        return None

    def _shedding(self, conn) -> bool:
        """Shed ingest this tick?  (Reads always pass; see OverloadPolicy.)"""
        if self.draining:
            return True
        if self.service.degraded:
            # Read-only degraded mode (full/failing disk): every write
            # path sheds with RETRY_LATER before it can touch the WAL.
            return True
        if self.overload is None:
            return False
        return self.overload.should_shed(
            wal_queue_depth=self.service.wal_queue_depth,
            buffer_bytes=conn._tick_backlog,
        )

    def _process_frames(self, frames, conn):
        """Dispatch one tick's worth of frames; returns ``(payload, ticket)``.

        ``payload`` is every response frame, encoded and joined in request
        order; ``ticket`` (or ``None``) is the group-commit ticket the
        write must wait for.  Consecutive ingest batches coalesce per
        ``(key, session)`` into one WAL record + one ``update_many``
        (per-frame acks reconstructed from cumulative counts); any other
        opcode flushes the pending coalesce first so a connection's own
        request order is always observed.

        Sequenced frames (``SEQ_INGEST``/``SEQ_MULTI_INGEST``) pass the
        session's dedup gate first: duplicates (replays of frames whose
        mark is already durable) are acked without being applied, and
        under overload or drain the frame is shed with ``RETRY_LATER``
        *before* any mark advances — see ``SessionTable.admit`` for why
        shedding must also pin a floor.
        """
        service = self.service
        sessions = service.sessions
        slots: List[Optional[bytes]] = [None] * len(frames)
        #: (key, sid_or_None) -> list of (values_view, resolve(...)).
        pending: Dict[tuple, list] = {}
        #: (key, sid) -> highest frame seq staged for that group.
        pending_seq: Dict[tuple, int] = {}
        #: (key, sid) -> mark BEFORE this tick's first admit for the
        #: group; rollback target if the apply fails (see flush_pending).
        pending_prev: Dict[tuple, int] = {}
        #: frame index -> per-group result list (MULTI_INGEST assembly).
        multi: Dict[int, list] = {}
        appends_before = service.wal_appends
        shedding = self._shedding(conn)
        #: Routing guards engage only when a topology is installed or a
        #: migration is live — standalone services skip them entirely.
        routed = service.topology is not None or bool(service._migrations)
        shed_body = None
        if shedding:
            if self.draining:
                reason = "draining"
            elif service.degraded:
                reason = f"degraded ({service.degraded_reason})"
            else:
                reason = "overloaded"
            shed_body = wire.error_body(
                wire.STATUS_RETRY_LATER, f"{reason}; ingest shed, retry later"
            )

        def flush_pending() -> None:
            for group, entries in pending.items():
                key, sid = group
                session = None if sid is None else (sid, pending_seq[group])
                try:
                    n_after = service.ingest_batches(
                        key, [v for v, _ in entries], prevalidated=True, session=session
                    )
                except Exception as exc:
                    if sid is not None:
                        # admit() advanced the marks before apply; a
                        # failed apply (full disk poisoning the WAL)
                        # must roll them back or the client's retry of
                        # these very frames would dedup into a lying
                        # ack.  The pinned floor sheds later pipelined
                        # frames so applied seqs stay gap-free.
                        sessions.revert(
                            sid, key, pending_prev.get(group, 0), pending_seq[group]
                        )
                    body = self._error_response(exc)
                    for _values, resolve in entries:
                        resolve(body)
                else:
                    running = n_after - sum(int(v.size) for v, _ in entries)
                    for values, resolve in entries:
                        running += int(values.size)
                        resolve(running)
            pending.clear()
            pending_seq.clear()
            pending_prev.clear()

        def stage(key: str, sid, values, resolve) -> None:
            pending.setdefault((key, sid), []).append((values, resolve))

        def stage_seq(key: str, sid: str, seq: int, values, resolve, prev: int) -> None:
            group = (key, sid)
            if seq > pending_seq.get(group, 0):
                pending_seq[group] = seq
            # First staging this batch wins: ``prev`` is the mark before
            # that admit, i.e. the last successfully applied seq.
            pending_prev.setdefault(group, prev)
            pending.setdefault(group, []).append((values, resolve))

        for index, frame in enumerate(frames):
            if not len(frame):
                self._count_op(0)
                slots[index] = wire.error_body(wire.STATUS_BAD_REQUEST, "empty request frame")
                continue
            op = frame[0]
            self._count_op(op)
            if op == wire.OP_INGEST:
                if shedding:
                    slots[index] = shed_body
                    self.shed_count += 1
                    continue
                try:
                    key, offset = wire.unpack_key(frame, 1)
                    values, _ = wire.unpack_values(frame, offset)
                    self._validate_batch(values)
                except Exception as exc:
                    slots[index] = self._error_response(exc)
                    continue
                if routed:
                    reject = self._route_reject(key)
                    if reject is not None:
                        slots[index] = reject
                        continue

                def resolve_single(result, index=index):
                    slots[index] = (
                        b"\x00" + wire.pack_n(result) if isinstance(result, int) else result
                    )

                stage(key, None, values, resolve_single)
            elif op == wire.OP_MULTI_INGEST:
                if shedding:
                    slots[index] = shed_body
                    self.shed_count += 1
                    continue
                try:
                    groups = wire.unpack_multi_ingest(frame)
                    for g_index, (_key, values) in enumerate(groups):
                        try:
                            self._validate_batch(values)
                        except Exception as exc:
                            raise ServiceError(f"MULTI_INGEST group {g_index}: {exc}") from exc
                except Exception as exc:
                    slots[index] = self._error_response(exc)
                    continue
                if routed:
                    reject = None
                    for g_key, _values in groups:
                        reject = self._route_reject(g_key)
                        if reject is not None:
                            break
                    if reject is not None:
                        # One unroutable key rejects the whole frame —
                        # nothing was staged yet, so the client can retry
                        # or re-route the entire batch safely.
                        slots[index] = reject
                        continue
                results = multi[index] = [None] * len(groups)
                for g_index, (key, values) in enumerate(groups):

                    def resolve_group(result, results=results, g_index=g_index):
                        results[g_index] = result

                    stage(key, None, values, resolve_group)
            elif op == wire.OP_SEQ_INGEST:
                try:
                    seq, offset = wire.unpack_seq(frame, 1)
                    key, offset = wire.unpack_key(frame, offset)
                    values, _ = wire.unpack_values(frame, offset)
                    self._validate_batch(values)
                    if conn.session_id is None:
                        raise ServiceError(
                            "sequenced ingest requires an exactly-once session "
                            "(send HELLO first)"
                        )
                except Exception as exc:
                    slots[index] = self._error_response(exc)
                    continue
                if routed:
                    reject = self._topology_reject(key)
                    if reject is not None:
                        # Redirect BEFORE admit: the retry will carry the
                        # same seq to the new owner, whose dedup marks
                        # arrived with the migrated state.
                        slots[index] = reject
                        continue
                sid = conn.session_id
                frozen = routed and service.migration_frozen(key)
                prev_mark = sessions.high_water(sid, key)
                verdict = sessions.admit(sid, key, seq, shedding=shedding or frozen)
                if verdict is ADMIT_SHED:
                    self.shed_count += 1
                    slots[index] = shed_body or wire.error_body(
                        wire.STATUS_RETRY_LATER, "ingest shed, retry later"
                    )
                elif verdict is ADMIT_DUPLICATE:
                    # Already counted (the mark is durable): ack with the
                    # key's current n, never re-apply.  This is the
                    # exactly-once half the WAL cannot give alone.
                    slots[index] = b"\x00" + wire.pack_n(service.current_n(key))
                else:

                    def resolve_seq(result, index=index):
                        slots[index] = (
                            b"\x00" + wire.pack_n(result) if isinstance(result, int) else result
                        )

                    stage_seq(key, sid, seq, values, resolve_seq, prev_mark)
            elif op == wire.OP_SEQ_MULTI_INGEST:
                try:
                    seq, offset = wire.unpack_seq(frame, 1)
                    groups = wire.unpack_multi_ingest(frame, offset)
                    for g_index, (_key, values) in enumerate(groups):
                        try:
                            self._validate_batch(values)
                        except Exception as exc:
                            raise ServiceError(
                                f"SEQ_MULTI_INGEST group {g_index}: {exc}"
                            ) from exc
                    if conn.session_id is None:
                        raise ServiceError(
                            "sequenced ingest requires an exactly-once session "
                            "(send HELLO first)"
                        )
                except Exception as exc:
                    slots[index] = self._error_response(exc)
                    continue
                if routed:
                    reject = None
                    for g_key, _values in groups:
                        reject = self._topology_reject(g_key)
                        if reject is not None:
                            break
                    if reject is not None:
                        slots[index] = reject
                        continue
                sid = conn.session_id
                # One frozen key sheds the WHOLE frame, and the flag must
                # be frame-constant BEFORE any admit: ADMIT_APPLY advances
                # the mark immediately, so mixing per-key freeze verdicts
                # in one frame could advance an unfrozen key's mark and
                # then shed the frame — its retry would be wrongly
                # deduplicated (an acked-but-never-counted value).
                frame_shedding = shedding or (
                    routed
                    and any(service.migration_frozen(g_key) for g_key, _v in groups)
                )
                verdicts = {}
                prev_marks = {}
                for key, _values in groups:
                    if key not in verdicts:
                        prev_marks[key] = sessions.high_water(sid, key)
                        verdicts[key] = sessions.admit(sid, key, seq, shedding=frame_shedding)
                if any(v is ADMIT_SHED for v in verdicts.values()):
                    # Shedding is tick-constant and the shed floor is
                    # per-session, so APPLY+SHED cannot mix in one frame
                    # (see SessionTable.admit); retrying the whole frame
                    # is therefore safe and simple.
                    self.shed_count += 1
                    slots[index] = shed_body or wire.error_body(
                        wire.STATUS_RETRY_LATER, "ingest shed, retry later"
                    )
                    continue
                results = multi[index] = [None] * len(groups)
                for g_index, (key, values) in enumerate(groups):
                    if verdicts[key] is ADMIT_DUPLICATE:
                        results[g_index] = service.current_n(key)
                        continue

                    def resolve_seq_group(result, results=results, g_index=g_index):
                        results[g_index] = result

                    stage_seq(key, sid, seq, values, resolve_seq_group, prev_marks[key])
            elif op == wire.OP_WINDOW_INGEST:
                if shedding:
                    slots[index] = shed_body
                    self.shed_count += 1
                    continue
                try:
                    key, ts, values = wire.unpack_window_ingest(frame)
                    service.windows.validate(ts, values)
                except Exception as exc:
                    slots[index] = self._error_response(exc)
                    continue
                if routed:
                    reject = self._route_reject(key)
                    if reject is not None:
                        slots[index] = reject
                        continue
                # Windowed ingest applies immediately (no coalescing —
                # batch boundaries are the lateness unit), so drain any
                # staged plain ingest first to keep program order.
                flush_pending()
                try:
                    accepted, events = service.window_ingest(key, ts, values)
                except Exception as exc:
                    slots[index] = self._error_response(exc)
                    continue
                slots[index] = b"\x00" + wire.pack_n(accepted)
                if events:
                    self._notify_closed(key, events)
            elif op == wire.OP_SEQ_WINDOW_INGEST:
                try:
                    seq, offset = wire.unpack_seq(frame, 1)
                    key, ts, values = wire.unpack_window_ingest(frame, offset)
                    service.windows.validate(ts, values)
                    if conn.session_id is None:
                        raise ServiceError(
                            "sequenced ingest requires an exactly-once session "
                            "(send HELLO first)"
                        )
                except Exception as exc:
                    slots[index] = self._error_response(exc)
                    continue
                if routed:
                    reject = self._topology_reject(key)
                    if reject is not None:
                        slots[index] = reject
                        continue
                sid = conn.session_id
                frozen = routed and service.migration_frozen(key)
                prev_mark = sessions.high_water(sid, key)
                verdict = sessions.admit(sid, key, seq, shedding=shedding or frozen)
                if verdict is ADMIT_SHED:
                    self.shed_count += 1
                    slots[index] = shed_body or wire.error_body(
                        wire.STATUS_RETRY_LATER, "ingest shed, retry later"
                    )
                elif verdict is ADMIT_DUPLICATE:
                    # Ack replays with the key's lifetime accepted count —
                    # the windowed twin of the ``current_n`` duplicate ack.
                    slots[index] = b"\x00" + wire.pack_n(service.window_accepted(key))
                else:
                    flush_pending()
                    try:
                        accepted, events = service.window_ingest(
                            key, ts, values, session=(sid, seq)
                        )
                    except Exception as exc:
                        # Applied immediately (no staging), so the failed
                        # apply reverts its own admit right here.
                        sessions.revert(sid, key, prev_mark, seq)
                        slots[index] = self._error_response(exc)
                        continue
                    slots[index] = b"\x00" + wire.pack_n(accepted)
                    if events:
                        self._notify_closed(key, events)
            elif op == wire.OP_SUBSCRIBE:
                flush_pending()
                slots[index] = self._subscribe(frame, conn)
            elif op == wire.OP_HELLO:
                flush_pending()
                try:
                    flags, sid = wire.unpack_hello(frame)
                except Exception as exc:
                    slots[index] = self._error_response(exc)
                    continue
                granted = flags & wire.FLAG_EXACTLY_ONCE
                if granted:
                    conn.session_id = sid
                    high_water = sessions.hello(sid)
                else:
                    conn.session_id = None
                    high_water = 0
                slots[index] = wire.pack_hello_response(granted, high_water)
            else:
                flush_pending()
                slots[index] = self._dispatch(frame)
        flush_pending()

        # Assemble MULTI_INGEST responses from their per-group results.
        for index, results in multi.items():
            failed = next((r for r in results if not isinstance(r, int)), None)
            if failed is not None:
                slots[index] = failed
            else:
                slots[index] = (
                    b"\x00"
                    + wire._COUNT.pack(len(results))
                    + b"".join(wire.pack_n(n) for n in results)
                )

        out = bytearray()
        for body in slots:
            out += wire._LEN.pack(len(body))
            out += body
        ticket = (
            service.commit_ticket() if service.wal_appends != appends_before else None
        )
        # The bytearray is fresh per tick, so hand it to transport.write
        # as-is — no defensive bytes() copy on the hot path.
        return out, ticket

    @staticmethod
    def _validate_batch(values) -> None:
        """Per-frame validation so errors attribute to the exact frame."""
        if values.size == 0:
            raise InvalidParameterError("empty ingest batch")
        if np.isnan(values).any():
            raise InvalidParameterError("cannot insert NaN: items must form a total order")

    @staticmethod
    def _error_response(exc: Exception) -> bytes:
        """Map an exception to the response body ``_dispatch`` would send."""
        if isinstance(exc, KeyError):
            return wire.error_body(wire.STATUS_UNKNOWN_KEY, f"unknown key {exc.args[0]!r}")
        if isinstance(exc, DegradedError):
            # Degraded mode is a retriable shed, not a client mistake:
            # the write was never applied, so RETRY_LATER (against this
            # node once space returns, or a healthy replica) is honest.
            return wire.error_body(wire.STATUS_RETRY_LATER, str(exc))
        if isinstance(exc, EmptySketchError):
            return wire.error_body(wire.STATUS_ERROR, str(exc))
        if isinstance(exc, ServiceError):
            return wire.error_body(wire.STATUS_BAD_REQUEST, str(exc))
        if isinstance(exc, ReproError):
            return wire.error_body(wire.STATUS_ERROR, str(exc))
        import sys
        import traceback

        traceback.print_exc(file=sys.stderr)
        return wire.error_body(
            wire.STATUS_ERROR, f"internal error: {type(exc).__name__}: {exc}"
        )

    def _subscribe(self, frame, conn) -> bytes:
        """Register ``conn`` for bucket-close pushes; returns the ack body.

        The ack carries the catch-up replay inline (closed buckets at or
        past ``resume_from`` still in retention), so a reconnecting
        subscriber always sees its replay *before* any live push on the
        same connection — the dedup contract clients rely on.
        """
        service = self.service
        try:
            key, resolution, resume_from, fractions = wire.unpack_subscribe(frame)
            service._check_key(key)
            resolved = service.windows.resolve(resolution)
            rings = service.windows.get(key, create=True)
            ring = rings[resolved]
            # Copy the fractions out of the receive buffer: the view dies
            # with this tick, the subscription outlives it.
            fractions = np.array(fractions, dtype=np.float64)
            events = []
            next_index = resume_from
            for bucket in ring.closed_buckets(resume_from):
                events.append(
                    wire.pack_bucket_event(
                        bucket.index,
                        bucket.start,
                        bucket.end,
                        int(bucket.sketch.n),
                        float(bucket.sketch.error_bound()),
                        bucket.sketch.quantiles(fractions),
                    )
                )
                next_index = max(next_index, bucket.index + 1)
            self.subscriptions.add(
                conn, key, resolved, tuple(float(f) for f in fractions), next_index
            )
            return wire.pack_subscribe_response(resolved, next_index, events)
        except Exception as exc:
            return self._error_response(exc)

    def _notify_closed(self, key: str, events) -> None:
        """Push newly closed buckets to this key's subscribers.

        Pushes are fire-and-forget and not commit-gated: a subscriber that
        loses one (crash between WAL append and flush) re-derives it from
        durable state via reconnect catch-up, so gating them on the group
        commit would buy nothing but latency.
        """
        if not self.subscriptions.active_count:
            return

        def encode(sub, event) -> bytes:
            sketch = event.sketch
            return wire.encode_frame(
                b"\x00"
                + wire.pack_bucket_event(
                    event.index,
                    event.start,
                    event.end,
                    int(sketch.n),
                    float(sketch.error_bound()),
                    sketch.quantiles(np.asarray(sub.fractions, dtype=np.float64)),
                )
            )

        def send(conn, payload: bytes) -> None:
            conn._enqueue(None, payload)

        self.subscriptions.notify(key, events, encode, send)

    def _dispatch(self, body: bytes) -> bytes:
        """Decode one request body, run it, encode the response body.

        Synchronous on purpose: no await between decode and response means
        every request is atomic under the event loop.
        """
        if not body:
            return wire.error_body(wire.STATUS_BAD_REQUEST, "empty request frame")
        op = body[0]
        service = self.service
        routed = service.topology is not None or bool(service._migrations)
        try:
            if op == wire.OP_INGEST:
                key, offset = wire.unpack_key(body, 1)
                values, _ = wire.unpack_values(body, offset)
                if routed:
                    reject = self._route_reject(key)
                    if reject is not None:
                        return reject
                return b"\x00" + wire.pack_n(service.ingest(key, values))
            if op == wire.OP_QUERY:
                key, offset = wire.unpack_key(body, 1)
                fractions, _ = wire.unpack_values(body, offset)
                reject = self._topology_reject(key) if routed else None
                if reject is not None:
                    return reject
                return wire.pack_query_result(*service.query(key, fractions))
            if op == wire.OP_CDF:
                key, offset = wire.unpack_key(body, 1)
                points, _ = wire.unpack_values(body, offset)
                reject = self._topology_reject(key) if routed else None
                if reject is not None:
                    return reject
                return wire.pack_query_result(*service.cdf(key, points))
            if op == wire.OP_RANK:
                key, offset = wire.unpack_key(body, 1)
                values, _ = wire.unpack_values(body, offset)
                reject = self._topology_reject(key) if routed else None
                if reject is not None:
                    return reject
                return wire.pack_query_result(*service.rank(key, values))
            if op == wire.OP_MULTI_QUERY:
                return self._multi_query(body)
            if op == wire.OP_WINDOW_QUERY:
                key, kind, resolution, start, end, points = wire.unpack_window_query(body)
                reject = self._topology_reject(key) if routed else None
                if reject is not None:
                    return reject
                return wire.pack_query_result(
                    *service.window_query(key, kind, resolution, start, end, points)
                )
            if op == wire.OP_MERGE:
                key, offset = wire.unpack_key(body, 1)
                payload, _ = wire.unpack_blob(body, offset)
                if routed:
                    if service.migration_active(key):
                        # A merge mid-migration is not buffered as a drain
                        # entry, so its convergence would be invisible to
                        # the coordinator; shed it retryably instead.
                        return wire.error_body(
                            wire.STATUS_RETRY_LATER,
                            f"key {key!r} is migrating; retry the merge later",
                        )
                    reject = self._topology_reject(key)
                    if reject is not None:
                        return reject
                return b"\x00" + wire.pack_n(service.merge(key, payload))
            if op == wire.OP_STATS:
                key, _ = wire.unpack_key(body, 1)
                stats = self.service.stats(key or None)
                if not key:
                    # Server-wide stats also report the network front:
                    # cumulative + currently-open connections and
                    # per-opcode frame counts (how much of the traffic
                    # rides the pipelined/coalesced path).
                    stats["connections"] = self.connections
                    stats["open_connections"] = len(self._transports)
                    stats["op_counts"] = dict(self.op_counts)
                    stats["shed_count"] = self.shed_count
                    stats["rejected_connections"] = self.rejected_connections
                    stats["draining"] = self.draining
                    stats.setdefault("windowed", {})[
                        "active_subscriptions"
                    ] = self.subscriptions.active_count
                return b"\x00" + wire.pack_blob(json.dumps(stats).encode("utf-8"))
            if op == wire.OP_FETCH:
                key, _ = wire.unpack_key(body, 1)
                if not key:
                    return wire.error_body(wire.STATUS_BAD_REQUEST, "FETCH needs a key")
                reject = self._topology_reject(key) if routed else None
                if reject is not None:
                    return reject
                n, payload = service.payload(key)
                return b"\x00" + wire.pack_n(n) + wire.pack_blob(payload)
            if op == wire.OP_TOPOLOGY:
                mode, map_json = wire.unpack_topology(body)
                if mode == wire.TOPOLOGY_SET:
                    service.install_topology(map_json)
                return b"\x00" + wire.pack_blob(
                    service.topology_json().encode("utf-8")
                )
            if op == wire.OP_MIGRATE_PUSH:
                key, bundle = wire.unpack_migrate_push(body)
                # No ownership check: a push legitimately arrives BEFORE
                # the new topology is installed on this destination.
                return b"\x00" + wire.pack_n(service.migrate_apply(key, bundle))
            if op == wire.OP_MIGRATE:
                mode, freeze, key = wire.unpack_migrate(body)
                if mode == wire.MIGRATE_KEYS:
                    keys = list(
                        dict.fromkeys(
                            list(service.store.keys()) + list(service.windows.keys())
                        )
                    )
                    return wire.pack_keys_response(keys)
                if mode == wire.MIGRATE_BEGIN:
                    return b"\x00" + wire.pack_blob(service.migrate_begin(key))
                if mode == wire.MIGRATE_DRAIN:
                    frozen, entries = service.migrate_drain(key, freeze=freeze)
                    return wire.pack_drain_response(frozen, entries)
                if mode == wire.MIGRATE_COMMIT:
                    service.migrate_commit(key)
                    return b"\x00"
                service.migrate_abort(key)
                return b"\x00"
            if op == wire.OP_SNAPSHOT:
                return b"\x00" + wire._COUNT.pack(self.service.snapshot_all())
            if op == wire.OP_PING:
                return b"\x00" + wire.pack_blob(__version__.encode("utf-8"))
            if op == wire.OP_HEALTH:
                return self._health_response()
            return wire.error_body(wire.STATUS_BAD_REQUEST, f"unknown opcode {op:#x}")
        except Exception as exc:
            # One mapping for every path (shared with the coalescing
            # dispatcher): a failure must answer with an error response,
            # never tear down the connection silently.
            return self._error_response(exc)

    def _health_response(self) -> bytes:
        """One ``HEALTH`` answer: readiness byte + JSON detail.

        Load balancers branch on the byte (cheap, stable); operators read
        the blob.  ``OVERLOADED`` reflects the WAL queue only — per-
        connection parse backlog is a per-peer signal, not server health.
        """
        if self.draining:
            state = wire.HEALTH_DRAINING
        elif self.service.degraded:
            # Degraded outranks overloaded: a full disk sheds ALL writes,
            # not just a transient queue spike, and a balancer should
            # route writes elsewhere until this clears.
            state = wire.HEALTH_DEGRADED
        elif self.overload is not None and self.overload.should_shed(
            wal_queue_depth=self.service.wal_queue_depth
        ):
            state = wire.HEALTH_OVERLOADED
        else:
            state = wire.HEALTH_READY
        detail = {
            "state": ("ready", "overloaded", "draining", "degraded")[state],
            "degraded": self.service.degraded,
            "degraded_reason": self.service.degraded_reason,
            "disk_free_bytes": self.service.disk_free_bytes,
            "node_id": self.service.node_id,
            "open_connections": len(self._transports),
            "max_connections": self.max_connections,
            "wal_queue_depth": self.service.wal_queue_depth,
            "shed_count": self.shed_count,
            "rejected_connections": self.rejected_connections,
            "sessions": len(self.service.sessions),
            "windowed_keys": len(self.service.windows.keys()),
            "active_subscriptions": self.subscriptions.active_count,
            "topology_version": (
                None if self.service.topology is None
                else self.service.topology.version
            ),
            "migrating_keys": len(self.service._migrations),
        }
        if self.service.scrub is not None:
            detail["scrub"] = self.service.scrub.stats()
        return (
            b"\x00"
            + bytes([state])
            + wire.pack_blob(json.dumps(detail).encode("utf-8"))
        )

    def _multi_query(self, body) -> bytes:
        """Answer one ``MULTI_QUERY`` frame (vectorized when uniform).

        A uniform frame (single key/kind/count — the dashboard shape) is
        answered with ONE batched engine call over the key's query index
        and one vectorized response build.  Anything else — mixed keys,
        a failing key, an invalid row — takes the per-request loop, whose
        answers are bit-identical and whose errors attribute to the exact
        request via per-record statuses (one missing key never fails the
        rest of the batch).
        """
        service = self.service
        uniform = wire.try_uniform_multi_query(body)
        if uniform is not None:
            key, kind, points = uniform
            if wire.query_response_bound(points.shape[0], points.shape[1]) > wire.MAX_FRAME:
                # A request frame under MAX_FRAME can imply a response
                # over it (an OK record outweighs its request record).
                # Refuse with a small error frame instead of emitting a
                # frame our own protocol layer forbids — the connection
                # stays usable and the client can split the batch.
                return wire.error_body(
                    wire.STATUS_BAD_REQUEST,
                    f"response for {points.shape[0]} requests would exceed "
                    f"MAX_FRAME ({wire.MAX_FRAME}); split the batch",
                )
            try:
                result = service.query_batch(key, kind, points)
            except Exception:
                pass  # re-run per request below so the error names its row
            else:
                return bytes(wire.encode_uniform_query_response(*result))
        requests = wire.unpack_multi_query(body)
        bound = sum(
            wire.query_response_bound(1, int(points.size)) for _k, _kind, points in requests
        )
        if bound > wire.MAX_FRAME:
            return wire.error_body(
                wire.STATUS_BAD_REQUEST,
                f"response for {len(requests)} requests would exceed "
                f"MAX_FRAME ({wire.MAX_FRAME}); split the batch",
            )
        parts = [b"\x00", wire._COUNT.pack(len(requests))]
        cache: Dict[str, object] = {}
        for key, kind, points in requests:
            try:
                result = service.query_points(key, kind, points, cache)
            except Exception as exc:
                error = self._error_response(exc)
                # Truncated so the response bound above holds for any key
                # size (an unknown-key message embeds the key).
                message = bytes(error[1 : 1 + wire.ERROR_MESSAGE_CAP])
                parts.append(bytes([error[0]]) + wire.pack_blob(message))
            else:
                parts.append(wire.pack_query_result(*result))
        return b"".join(parts)


class ServerThread:
    """A :class:`QuantileServer` on a daemon thread with its own event loop.

    The bridge for synchronous callers — tests, benchmarks, notebook
    demos, or embedding the service next to blocking code::

        with ServerThread(QuantileService(None)) as running:
            client = QuantileClient(port=running.port)

    ``stop(snapshot=False)`` models a crash (no goodbye checkpoint), which
    the recovery tests lean on; the context manager exit checkpoints.
    """

    def __init__(
        self,
        service: QuantileService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        snapshot_interval: Optional[float] = None,
        start_timeout: float = 10.0,
        use_uvloop: bool = True,
        max_connections: Optional[int] = None,
        overload=_DEFAULT_OVERLOAD,
        drain_timeout: float = 10.0,
        scrub_interval: Optional[float] = None,
        degraded_probe_interval: float = 0.5,
    ) -> None:
        self.service = service
        self.server = QuantileServer(
            service,
            host=host,
            port=port,
            snapshot_interval=snapshot_interval,
            max_connections=max_connections,
            overload=overload,
            drain_timeout=drain_timeout,
            scrub_interval=scrub_interval,
            degraded_probe_interval=degraded_probe_interval,
        )
        self.loop = new_event_loop(use_uvloop)
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._stopped = False
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        if not self._started.wait(start_timeout):
            raise ServiceError("server thread did not start in time")
        if self._start_error is not None:
            self.thread.join(timeout=start_timeout)
            raise ServiceError(f"server failed to start: {self._start_error}")

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._start_error = exc
            self._started.set()
            return
        self._started.set()
        self.loop.run_forever()

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, *, snapshot: bool = True, drain: bool = False) -> None:
        """Stop the server and its loop (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(snapshot=snapshot, drain=drain), self.loop
        )
        future.result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_server(
    data_dir: Optional[str],
    *,
    host: str = "127.0.0.1",
    port: int = 7379,
    k: int = 32,
    hra: bool = False,
    seed: Optional[int] = 0,
    memory_budget: Optional[int] = None,
    hot_key_items: Optional[int] = None,
    hot_shards: int = 4,
    snapshot_interval: Optional[float] = 30.0,
    fsync: bool = False,
    group_commit: bool = True,
    use_uvloop: bool = True,
    max_connections: Optional[int] = None,
    drain_timeout: float = 10.0,
    node_id: Optional[str] = None,
    window_resolutions=(60.0,),
    window_retention: int = 64,
    window_lateness: float = 0.0,
    scrub_interval: Optional[float] = 300.0,
    min_free_bytes: int = 8 << 20,
    io_layer=None,
) -> int:
    """Blocking entry point for ``repro-quantiles serve``.

    Runs until interrupted.  SIGTERM triggers a graceful **drain**: stop
    accepting, shed new ingest with ``RETRY_LATER``, flush in-flight acks
    (up to ``drain_timeout``), barrier the WAL, checkpoint, exit — the
    orchestrator-rollout path, where clients with retry policies fail
    over without losing an acknowledged value.  SIGINT stops fast (still
    with a final checkpoint).  Returns a process exit code.

    Durable deployments default to ``group_commit=True`` — WAL writes and
    fsyncs happen off the event loop and acks gate on the covering commit,
    so durability costs latency (one group commit) instead of throughput.
    ``use_uvloop`` picks up uvloop when installed (silent fallback).
    """
    import signal

    configure_cli_logging()
    service = QuantileService(
        data_dir,
        k=k,
        hra=hra,
        seed=seed,
        memory_budget=memory_budget,
        hot_key_items=hot_key_items,
        hot_shards=hot_shards,
        fsync=fsync,
        group_commit=group_commit and data_dir is not None,
        node_id=node_id,
        window_resolutions=window_resolutions,
        window_retention=window_retention,
        window_lateness=window_lateness,
        min_free_bytes=min_free_bytes,
        io_layer=io_layer,
    )
    server = QuantileServer(
        service,
        host=host,
        port=port,
        snapshot_interval=snapshot_interval,
        max_connections=max_connections,
        drain_timeout=drain_timeout,
        scrub_interval=scrub_interval if data_dir is not None else None,
    )
    drain_requested = False

    async def main() -> None:
        nonlocal drain_requested
        await server.start()
        # Machine-readable ready line FIRST: supervisors and cluster test
        # harnesses spawning N servers on port 0 parse this to learn the
        # bound address the moment accepts are live (no poll-connect).
        ready = f"READY host={server.host} port={server.port}"
        if node_id is not None:
            ready += f" node_id={node_id}"
        print(ready, flush=True)
        durable = f"data_dir={data_dir}" if data_dir else "in-memory (no durability)"
        print(
            f"repro-quantiles {__version__} serving on {server.host}:{server.port} "
            f"[k={k}, {'HRA' if hra else 'LRA'}, {durable}, "
            f"{len(service.store)} keys recovered]",
            flush=True,
        )
        # asyncio.start_server accepts connections as soon as it exists;
        # this task only needs to sleep until a stop signal arrives.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()

        def request_stop(drain: bool) -> None:
            nonlocal drain_requested
            drain_requested = drain
            stop.set()

        for signum, drain in ((signal.SIGINT, False), (signal.SIGTERM, True)):
            try:
                loop.add_signal_handler(signum, request_stop, drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loop: fall back to KeyboardInterrupt below
        await stop.wait()
        if drain_requested:
            log.info("SIGTERM: draining (timeout %.1fs)", drain_timeout)
        await server.stop(snapshot=True, drain=drain_requested)

    loop = new_event_loop(use_uvloop)
    try:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(main())
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback path
        pass
    finally:
        try:
            loop.run_until_complete(server.stop(snapshot=True))
        except Exception:
            service.close(snapshot=True)
        asyncio.set_event_loop(None)
        loop.close()
    return 0

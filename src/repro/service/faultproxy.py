"""A deterministic fault-injecting TCP proxy for chaos tests.

:class:`FaultProxy` sits between a client and a quantile server on
loopback and mangles the **request** byte stream in reproducible ways:
frames can be delayed, split mid-byte, duplicated, truncated (a partial
frame followed by a hard close — the torn-write shape), severed
before/after delivery, or **blackholed** (dropped silently while the
TCP connection stays up — the network-partition shape, distinct from a
crash precisely because nothing tells the peer).  Outside a partition
the response stream is forwarded untouched: the interesting failure
modes for exactly-once are all on the write path (did the server apply
a frame whose ack the client never saw?), and a mangled response would
only obscure which side lost what.  During a partition both directions
drop whole frames — the pumps are frame-aware, so a healed link never
resumes mid-frame.

The client→server pump is **frame-aware**: it reassembles the protocol's
``u32``-length-prefixed frames and consults a fault schedule per frame,
so a test can say "sever the connection immediately after frame 7 is
fully delivered" and mean exactly that.  Frame indices count across
reconnects (a monotonic per-proxy counter) — a client that reconnects
and replays sees its replayed frames as *new* indices, which is what
lets a scripted schedule inject one fault and then let the retry
through.

Determinism: a :class:`SeededFaults` schedule draws from
``random.Random(seed)`` only — same seed, same byte-level fault
sequence.  Sleeps introduce wall-clock timing but never change *which*
faults fire.

Fault actions (strings or tuples):

* ``"pass"`` — forward the frame unchanged.
* ``("delay", seconds)`` — sleep, then forward.
* ``("split", nbytes)`` — forward ``nbytes``, sleep a beat, forward the
  rest (exercises mid-frame reads on the server's parse loop).
* ``"sever"`` — drop both sides *before* the frame is delivered (the
  frame never reaches the server).
* ``"sever_after"`` — drop the client, then deliver the frame fully
  upstream (the server applies it; the client can never see the ack —
  THE exactly-once scenario).
* ``("truncate", nbytes)`` — deliver only the first ``nbytes`` of the
  frame, then drop both sides (server sees a torn frame mid-byte).
* ``"dup"`` — deliver the frame, drop the **client** side only, deliver
  the frame *again* on the still-open upstream connection, then drop
  it.  The server sees the bytes twice on one connection and (after the
  client reconnects and replays) a third time on the next — it must
  count them once.
* ``"blackhole"`` — swallow this one frame silently; the connection
  stays open and the client discovers the loss only by timeout.
* ``("partition", n)`` — swallow this frame and the next ``n - 1``
  request frames; while the partition is active, response frames are
  swallowed too (no bytes cross in either direction).

A partition can also be driven manually — :meth:`FaultProxy.partition`
blackholes every frame in both directions until :meth:`FaultProxy.heal`
— which is how the cluster chaos tests isolate one node for an exact
span of the test and then watch hinted handoff reconcile it.

Usage::

    with FaultProxy(server_port, schedule=SeededFaults(seed=7)) as proxy:
        client = QuantileClient(port=proxy.port, retry=RetryPolicy(...))
        client.ingest_stream("k", values)
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from typing import Dict, Optional, Union

__all__ = ["FaultProxy", "SeededFaults", "ScriptedFaults", "PASS"]

_LEN = struct.Struct("<I")

PASS = "pass"

Action = Union[str, tuple]


class ScriptedFaults:
    """An explicit ``{frame_index: action}`` schedule (default: pass).

    Frame indices are the proxy's monotonic counter — they keep counting
    across client reconnects, so index 7 is the 8th frame the proxy ever
    saw, whichever connection carried it.
    """

    def __init__(self, actions: Dict[int, Action]) -> None:
        self._actions = dict(actions)

    def action(self, frame_index: int) -> Action:
        return self._actions.get(frame_index, PASS)


class SeededFaults:
    """A seeded random schedule: each frame independently draws a fault.

    Args:
        seed: The RNG seed — the whole point; two runs with the same
            seed inject byte-identical fault sequences.
        delay_rate, split_rate, sever_rate, sever_after_rate,
        truncate_rate, dup_rate, partition_rate: Per-frame probabilities
            (evaluated in that order on one uniform draw).
            ``partition_rate`` defaults to ``0.0`` and sits last in the
            band order, so schedules seeded before it existed are
            byte-identical.
        delay: Seconds for a ``delay`` fault (kept small so chaos suites
            stay fast).
        partition_frames: Request frames swallowed by one ``partition``
            fault.
        first_faultable: Frames before this index always pass — lets the
            HELLO/negotiation exchange through so faults land on the
            interesting traffic.
    """

    def __init__(
        self,
        seed: int,
        *,
        delay_rate: float = 0.05,
        split_rate: float = 0.10,
        sever_rate: float = 0.02,
        sever_after_rate: float = 0.02,
        truncate_rate: float = 0.02,
        dup_rate: float = 0.02,
        partition_rate: float = 0.0,
        delay: float = 0.002,
        partition_frames: int = 3,
        first_faultable: int = 1,
    ) -> None:
        self._rng = random.Random(seed)
        self._delay = delay
        self._partition_frames = partition_frames
        self._first = first_faultable
        self._bands = []
        edge = 0.0
        for rate, name in (
            (delay_rate, "delay"),
            (split_rate, "split"),
            (sever_rate, "sever"),
            (sever_after_rate, "sever_after"),
            (truncate_rate, "truncate"),
            (dup_rate, "dup"),
            (partition_rate, "partition"),
        ):
            edge += rate
            self._bands.append((edge, name))
        if edge > 1.0:
            raise ValueError(f"fault rates sum to {edge} > 1")

    def action(self, frame_index: int) -> Action:
        # One draw per frame regardless of outcome, so the schedule for
        # frame k never depends on which faults actually fired earlier.
        draw = self._rng.random()
        cut = self._rng.random()
        if frame_index < self._first:
            return PASS
        for edge, name in self._bands:
            if draw < edge:
                if name == "delay":
                    return ("delay", self._delay)
                if name == "split":
                    return ("split", 1 + int(cut * 6))
                if name == "truncate":
                    return ("truncate", 1 + int(cut * 6))
                if name == "partition":
                    return ("partition", self._partition_frames)
                return name
        return PASS


class _Pipe(threading.Thread):
    """The server→client response pump.

    Frame-aware so a partition can swallow *whole* response frames: a
    raw byte pump would have to either forward (no partition) or tear a
    frame mid-byte (desyncing the client forever, even after heal).
    Outside a partition every frame is forwarded verbatim.
    """

    def __init__(self, proxy: "FaultProxy", src: socket.socket, dst: socket.socket) -> None:
        super().__init__(daemon=True)
        self.proxy = proxy
        self._src = src
        self._dst = dst

    def _read_exact(self, count: int) -> Optional[bytes]:
        chunks = []
        while count:
            chunk = self._src.recv(count)
            if not chunk:
                return None
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def run(self) -> None:
        try:
            while True:
                header = self._read_exact(_LEN.size)
                if header is None:
                    break
                (length,) = _LEN.unpack(header)
                body = self._read_exact(length)
                if body is None:
                    break
                if self.proxy._drop_response():
                    continue
                self._dst.sendall(header + body)
        except OSError:
            pass
        finally:
            for sock in (self._src, self._dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass


class _Link(threading.Thread):
    """One proxied client connection: the frame-aware request pump."""

    def __init__(self, proxy: "FaultProxy", client: socket.socket) -> None:
        super().__init__(daemon=True)
        self.proxy = proxy
        self.client = client
        self.upstream = socket.create_connection(
            ("127.0.0.1", proxy.upstream_port), timeout=30
        )
        self.upstream.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._responses = _Pipe(proxy, self.upstream, self.client)

    # -- socket helpers ------------------------------------------------

    def _read_exact(self, count: int) -> Optional[bytes]:
        chunks = []
        while count:
            chunk = self.client.recv(count)
            if not chunk:
                return None
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def _close(self, sock: socket.socket) -> None:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _sever_both(self) -> None:
        self._close(self.client)
        self._close(self.upstream)

    # -- the pump ------------------------------------------------------

    def run(self) -> None:
        self._responses.start()
        try:
            self._pump()
        except OSError:
            self._sever_both()

    def _pump(self) -> None:
        while True:
            header = self._read_exact(_LEN.size)
            if header is None:
                self._sever_both()
                return
            (length,) = _LEN.unpack(header)
            body = self._read_exact(length)
            if body is None:
                self._sever_both()
                return
            frame = header + body
            if self.proxy._drop_request():
                # Manually partitioned (or inside a scheduled partition
                # span): the frame vanishes without consuming a schedule
                # slot; the client learns only by timing out.
                continue
            action = self.proxy._next_action()
            if action == PASS:
                self.upstream.sendall(frame)
            elif action == "blackhole":
                self.proxy._count_dropped()
                continue
            elif action == "sever":
                self._sever_both()
                return
            elif action == "sever_after":
                # Cut the client FIRST: the ack can then never be relayed
                # (the response pump hits a dead socket), so the frame is
                # applied upstream while the client is left not knowing —
                # deterministically "applied but never acked".
                self._close(self.client)
                try:
                    self.upstream.sendall(frame)
                    time.sleep(0.01)
                except OSError:
                    pass
                self._close(self.upstream)
                return
            elif action == "dup":
                self.upstream.sendall(frame)
                # Drop only the client: it will reconnect and replay.
                # The duplicate rides the old upstream connection, so
                # request/response pairing on the NEW connection stays
                # clean while the server still sees the bytes twice.
                self._close(self.client)
                try:
                    self.upstream.sendall(frame)
                    time.sleep(0.01)
                except OSError:
                    pass
                self._close(self.upstream)
                return
            elif action[0] == "partition":
                self.proxy._count_dropped()
                self.proxy._begin_partition(int(action[1]) - 1)
                continue
            elif action[0] == "delay":
                time.sleep(action[1])
                self.upstream.sendall(frame)
            elif action[0] == "split":
                cut = max(1, min(int(action[1]), len(frame) - 1))
                self.upstream.sendall(frame[:cut])
                time.sleep(0.001)
                self.upstream.sendall(frame[cut:])
            elif action[0] == "truncate":
                cut = max(1, min(int(action[1]), len(frame) - 1))
                self.upstream.sendall(frame[:cut])
                time.sleep(0.01)
                self._sever_both()
                return
            else:  # pragma: no cover - schedule bug
                raise ValueError(f"unknown fault action {action!r}")


class FaultProxy:
    """The listener: accepts clients forever, one :class:`_Link` each.

    Args:
        upstream_port: The real server's port (loopback).
        schedule: A fault schedule (``action(frame_index)``); defaults
            to all-pass (a transparent proxy).
        port: Listen port (``0`` = ephemeral; read :attr:`port`).
    """

    def __init__(self, upstream_port: int, *, schedule=None, port: int = 0) -> None:
        self.upstream_port = upstream_port
        self.schedule = schedule if schedule is not None else ScriptedFaults({})
        self._frame_index = 0
        self._partitioned = False
        #: Request frames a scheduled ``("partition", n)`` still owes.
        self._partition_left = 0
        #: Frames swallowed by partitions/blackholes (both directions).
        self.frames_dropped = 0
        self._lock = threading.Lock()
        self._links = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", port))
        self._listener.listen(16)
        self.port = self._listener.getsockname()[1]
        self._stopped = False
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    @property
    def frames_seen(self) -> int:
        """Frames the proxy has pulled off client connections so far."""
        with self._lock:
            return self._frame_index

    def _next_action(self) -> Action:
        with self._lock:
            index = self._frame_index
            self._frame_index += 1
        return self.schedule.action(index)

    # -- partition / blackhole state -----------------------------------

    def partition(self) -> None:
        """Blackhole the link both ways until :meth:`heal` — connections
        stay open, frames silently vanish (the network-partition shape)."""
        with self._lock:
            self._partitioned = True

    def heal(self) -> None:
        """End a partition (manual or scheduled); traffic flows again."""
        with self._lock:
            self._partitioned = False
            self._partition_left = 0

    @property
    def partitioned(self) -> bool:
        with self._lock:
            return self._partitioned or self._partition_left > 0

    def _begin_partition(self, more_frames: int) -> None:
        with self._lock:
            self._partition_left = max(self._partition_left, more_frames)

    def _count_dropped(self) -> None:
        with self._lock:
            self.frames_dropped += 1

    def _drop_request(self) -> bool:
        with self._lock:
            if self._partitioned:
                self.frames_dropped += 1
                return True
            if self._partition_left > 0:
                self._partition_left -= 1
                self.frames_dropped += 1
                return True
        return False

    def _drop_response(self) -> bool:
        with self._lock:
            if self._partitioned or self._partition_left > 0:
                self.frames_dropped += 1
                return True
        return False

    def _accept_loop(self) -> None:
        while not self._stopped:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            try:
                link = _Link(self, client)
            except OSError:
                # Upstream refused (server down mid-test): drop the
                # client so its retry loop backs off and tries again.
                try:
                    client.close()
                except OSError:
                    pass
                continue
            self._links.append(link)
            link.start()

    def stop(self) -> None:
        self._stopped = True
        try:
            self._listener.close()
        except OSError:
            pass
        for link in self._links:
            link._sever_both()
        for link in self._links:
            link.join(timeout=5)

    def __enter__(self) -> "FaultProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

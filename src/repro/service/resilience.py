"""Resilience primitives for the quantile service plane.

Three cooperating pieces, shared by the clients and the server:

* :class:`RetryPolicy` / :class:`RetryState` — the client side.  A policy
  describes *how* to retry (per-operation timeout, capped exponential
  backoff with deterministic jitter, a total retry budget); a state is
  one client's live counter against that policy.  Jitter is seeded so a
  chaos test replays the exact same backoff schedule every run.
* :class:`SessionTable` — the server side of exactly-once ingest.  Each
  client session (a random id sent in ``HELLO``) owns per-**key**
  high-water marks over its frame sequence numbers: a sequenced frame
  applies only when its ``seq`` exceeds the mark for that ``(session,
  key)`` pair, otherwise it is acknowledged *without* being applied.
  The marks ride the WAL (``WAL_SEQ_INGEST`` records carry the session
  header) and checkpoint to a sidecar file, so deduplication survives a
  server restart — a replayed frame is never double-counted even when
  the crash happened between apply and ack.

  The marks are per ``(session, key)`` rather than per session on
  purpose: the WAL coalesces each key's frames into its own record, so a
  torn tail can lose key B's record while keeping key A's later one.  A
  session-global mark would then wrongly deduplicate B's retry — an
  acked-but-never-counted value.  Per-key marks make the dedup decision
  exactly as granular as the durability unit.

  Dedup-by-high-water assumes each key's applied sequence numbers are
  gap-free, so overload shedding records a per-session **shed floor**:
  once the server sheds sequence ``s`` it keeps shedding every later
  sequence from that session until ``s`` itself is retried, which keeps
  a shed frame from being wrongly deduplicated after its successors
  were applied (see :meth:`SessionTable.admit`).
* :class:`OverloadPolicy` — when to shed.  Ingest-class frames are
  refused with ``STATUS_RETRY_LATER`` when the group-commit WAL queue or
  a connection's parse buffer crosses its watermark; reads keep flowing
  (they are cheap and never grow durable state), so a saturated service
  degrades to read-only instead of falling over.
"""

from __future__ import annotations

import os
import random
import struct
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional

from repro.errors import InvalidParameterError, RetryBudgetExceededError, ServiceError

__all__ = [
    "RetryPolicy",
    "RetryState",
    "SessionTable",
    "OverloadPolicy",
    "ADMIT_APPLY",
    "ADMIT_DUPLICATE",
    "ADMIT_SHED",
]

#: :meth:`SessionTable.admit` verdicts.
ADMIT_APPLY = "apply"
ADMIT_DUPLICATE = "duplicate"
ADMIT_SHED = "shed"


class RetryPolicy:
    """How a client retries: timeout, capped backoff + jitter, budget.

    Immutable and shareable; per-client counters live in the
    :class:`RetryState` minted by :meth:`start`.

    Args:
        timeout: Per-operation socket timeout in seconds (``None`` blocks
            forever — reconnects are then driven only by hard transport
            errors, never by a stall).
        retries: Reconnect/resend attempts per failed operation before
            giving up on it.
        backoff: First retry delay in seconds; doubles per attempt.
        backoff_max: Hard cap on a single delay.
        jitter: Fraction of each delay randomized away (``0.5`` means the
            actual sleep is uniform in ``[delay/2, delay]``), so a fleet
            of clients retrying the same outage does not reconnect in
            lockstep.
        budget: Total retry events one client may spend across its whole
            lifetime (reconnects and overload backoffs both count).
            Exhausting it raises
            :class:`~repro.errors.RetryBudgetExceededError` — a persistent
            outage becomes one loud failure instead of an infinite loop.
        seed: Seed for the jitter stream (``None`` = nondeterministic).
            Chaos tests pin it so every run replays the same schedule.
    """

    __slots__ = ("timeout", "retries", "backoff", "backoff_max", "jitter", "budget", "seed")

    def __init__(
        self,
        *,
        timeout: Optional[float] = 5.0,
        retries: int = 5,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        jitter: float = 0.5,
        budget: int = 64,
        seed: Optional[int] = None,
    ) -> None:
        if retries < 0:
            raise InvalidParameterError(f"retries must be >= 0, got {retries}")
        if backoff < 0 or backoff_max < 0:
            raise InvalidParameterError("backoff delays must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise InvalidParameterError(f"jitter must be in [0, 1], got {jitter}")
        if budget < 1:
            raise InvalidParameterError(f"budget must be >= 1, got {budget}")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.budget = budget
        self.seed = seed

    def start(self) -> "RetryState":
        """A fresh per-client retry state (its own budget + jitter stream)."""
        return RetryState(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"RetryPolicy(timeout={self.timeout}, retries={self.retries}, "
            f"backoff={self.backoff}, backoff_max={self.backoff_max}, "
            f"jitter={self.jitter}, budget={self.budget}, seed={self.seed})"
        )


class RetryState:
    """One client's live counters against a :class:`RetryPolicy`."""

    __slots__ = ("policy", "spent", "_rng")

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self.spent = 0
        self._rng = random.Random(policy.seed)

    def spend(self, cause: Optional[BaseException] = None) -> None:
        """Charge one retry event against the budget; raise when exhausted."""
        self.spent += 1
        if self.spent > self.policy.budget:
            raise RetryBudgetExceededError(
                f"retry budget of {self.policy.budget} exhausted"
            ) from cause

    def delay(self, attempt: int) -> float:
        """The jittered backoff delay for (0-indexed) ``attempt``."""
        policy = self.policy
        base = min(policy.backoff * (2.0**attempt), policy.backoff_max)
        if policy.jitter and base > 0:
            base -= self._rng.random() * policy.jitter * base
        return base


class _SessionEntry:
    __slots__ = ("marks", "shed_floor")

    def __init__(self) -> None:
        #: key -> highest applied frame sequence number.
        self.marks: Dict[str, int] = {}
        #: Lowest shed (refused-for-overload) sequence not yet retried.
        self.shed_floor: Optional[int] = None


#: Sidecar file framing: magic, then ``u32 session_count`` + per-session
#: ``u16 sid_len, sid, u32 key_count`` + per-key ``u16 key_len, key,
#: u64 mark``, then ``u32 crc32`` over everything after the magic.
_SESS_MAGIC = b"RQS1"
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class SessionTable:
    """Per-``(session, key)`` high-water marks for exactly-once ingest.

    LRU-bounded: ``max_sessions`` live sessions are tracked; the least
    recently active is dropped past that.  A dropped session that comes
    back is treated as new — its old marks are gone, so its *very old*
    retries could double-apply; the cap should therefore sit well above
    the realistic live-client count (the default tracks 4096 sessions,
    and every ``HELLO``/frame touches its session, so only sessions idle
    past thousands of newer ones age out).
    """

    def __init__(self, max_sessions: int = 4096) -> None:
        if max_sessions < 1:
            raise InvalidParameterError(f"max_sessions must be >= 1, got {max_sessions}")
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[str, _SessionEntry]" = OrderedDict()
        #: Sessions evicted over this table's lifetime (observability).
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def _entry(self, sid: str) -> _SessionEntry:
        entry = self._sessions.get(sid)
        if entry is None:
            entry = self._sessions[sid] = _SessionEntry()
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                self.evicted += 1
        else:
            self._sessions.move_to_end(sid)
        return entry

    def hello(self, sid: str) -> int:
        """Register/touch ``sid``; returns its highest mark across keys."""
        entry = self._entry(sid)
        return max(entry.marks.values(), default=0)

    def high_water(self, sid: str, key: str) -> int:
        entry = self._sessions.get(sid)
        return 0 if entry is None else entry.marks.get(key, 0)

    def admit(self, sid: str, key: str, seq: int, *, shedding: bool = False) -> str:
        """Decide one sequenced frame's fate; returns an ``ADMIT_*`` verdict.

        ``ADMIT_APPLY`` advances the mark — the caller MUST apply the
        values (and persist the mark with them).  ``ADMIT_DUPLICATE``
        means the frame was already applied: acknowledge without
        applying.  ``ADMIT_SHED`` refuses the frame for overload.

        The shed floor keeps applied sequences gap-free: after shedding
        ``s``, every ``seq > s`` from the session is shed too (even once
        load drops) until ``s`` itself comes back — otherwise a later
        frame could advance the mark past the shed one and its retry
        would be wrongly deduplicated.
        """
        entry = self._entry(sid)
        mark = entry.marks.get(key, 0)
        if seq <= mark:
            # Already applied.  A replay at-or-under the shed floor means
            # the client rewound; fresh frames may flow again.
            if entry.shed_floor is not None and seq <= entry.shed_floor:
                entry.shed_floor = None
            return ADMIT_DUPLICATE
        if entry.shed_floor is not None and seq > entry.shed_floor:
            return ADMIT_SHED
        if shedding:
            floor = entry.shed_floor
            entry.shed_floor = seq if floor is None else min(floor, seq)
            return ADMIT_SHED
        entry.shed_floor = None
        entry.marks[key] = seq
        return ADMIT_APPLY

    def revert(self, sid: str, key: str, mark: int, failed_seq: int) -> None:
        """Roll the mark back after an admitted frame FAILED to apply.

        :meth:`admit` advances the mark *before* the caller applies the
        values (apply can itself spill/snapshot, which persists the
        mark).  When the apply then fails — a full disk refusing the WAL
        append — the advanced mark would make the client's retry of that
        very frame look like a duplicate: an acknowledgement for values
        that never landed, the one lie exactly-once must never tell.
        The server therefore reverts: ``mark`` is the pre-admit high
        water to restore, ``failed_seq`` the highest sequence whose
        apply failed.  The shed floor is pinned at ``failed_seq`` so any
        *later* already-pipelined frame is shed (gap-free applies, same
        invariant as an overload shed) until the failed frame is
        retried.
        """
        entry = self._sessions.get(sid)
        if entry is None:
            return
        if entry.marks.get(key, 0) > mark:
            if mark > 0:
                entry.marks[key] = mark
            else:
                entry.marks.pop(key, None)
        floor = entry.shed_floor
        entry.shed_floor = failed_seq if floor is None else min(floor, failed_seq)

    def observe(self, sid: str, key: str, seq: int) -> None:
        """Recovery path: fold a durable ``(sid, key, seq)`` into the marks."""
        entry = self._entry(sid)
        if seq > entry.marks.get(key, 0):
            entry.marks[key] = seq

    def marks_for_key(self, key: str) -> Dict[str, int]:
        """Every session's high-water mark for ``key``: ``{sid: mark}``.

        The migration export: shipping these with a key's sketch keeps
        exactly-once dedup intact at the new owner — a client retry that
        lands post-move is recognized as a duplicate there.  Does not
        touch LRU order (an export must not keep dying sessions alive).
        """
        out: Dict[str, int] = {}
        for sid, entry in self._sessions.items():
            mark = entry.marks.get(key)
            if mark:
                out[sid] = mark
        return out

    # -- checkpoint persistence ----------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize every mark (shed floors are transient; not included)."""
        parts = [_U32.pack(len(self._sessions))]
        for sid, entry in self._sessions.items():
            raw_sid = sid.encode("utf-8")
            parts.append(_U16.pack(len(raw_sid)))
            parts.append(raw_sid)
            parts.append(_U32.pack(len(entry.marks)))
            for key, mark in entry.marks.items():
                raw_key = key.encode("utf-8")
                parts.append(_U16.pack(len(raw_key)))
                parts.append(raw_key)
                parts.append(_U64.pack(mark))
        body = b"".join(parts)
        return _SESS_MAGIC + body + _U32.pack(zlib.crc32(body))

    def load_bytes(self, data: bytes) -> None:
        """Fold a serialized table into this one (checkpoint recovery)."""
        if len(data) < len(_SESS_MAGIC) + _U32.size or data[:4] != _SESS_MAGIC:
            raise ServiceError("corrupt session table: bad magic")
        body = data[4 : -_U32.size]
        (crc,) = _U32.unpack_from(data, len(data) - _U32.size)
        if zlib.crc32(body) != crc:
            raise ServiceError("corrupt session table: CRC mismatch")
        try:
            offset = 0
            (count,) = _U32.unpack_from(body, offset)
            offset += _U32.size
            for _ in range(count):
                (sid_len,) = _U16.unpack_from(body, offset)
                offset += _U16.size
                sid = body[offset : offset + sid_len].decode("utf-8")
                offset += sid_len
                (nkeys,) = _U32.unpack_from(body, offset)
                offset += _U32.size
                for _ in range(nkeys):
                    (key_len,) = _U16.unpack_from(body, offset)
                    offset += _U16.size
                    key = body[offset : offset + key_len].decode("utf-8")
                    offset += key_len
                    (mark,) = _U64.unpack_from(body, offset)
                    offset += _U64.size
                    self.observe(sid, key, mark)
        except (struct.error, UnicodeDecodeError) as exc:
            raise ServiceError(f"corrupt session table: {exc}") from exc

    def save(self, path, *, fsync: bool = False) -> None:
        """Atomically write the table to ``path`` (temp file + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            handle.write(self.to_bytes())
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        tmp.replace(path)

    def load(self, path) -> bool:
        """Fold ``path`` into the table; ``False`` when the file is absent."""
        path = Path(path)
        if not path.exists():
            return False
        self.load_bytes(path.read_bytes())
        return True


class OverloadPolicy:
    """When the server sheds ingest: WAL queue + parse-buffer watermarks.

    Writes are shed before reads — ingest is what grows the WAL queue and
    the durable state, while reads are answered from in-memory summaries
    in microseconds — so an overloaded service degrades to read-only.

    Args:
        max_wal_queue: Shed ingest once this many records sit in the
            group-commit queue (well under the WAL's own blocking
            backpressure limit, so shedding engages before the event
            loop ever stalls on the disk).
        max_buffer_bytes: Shed ingest arriving on a connection whose
            parse buffer has grown past this watermark (one client
            pipelining far ahead of the server's drain rate).
    """

    __slots__ = ("max_wal_queue", "max_buffer_bytes")

    def __init__(
        self,
        *,
        max_wal_queue: int = 8192,
        max_buffer_bytes: int = 32 * 1024 * 1024,
    ) -> None:
        if max_wal_queue < 1:
            raise InvalidParameterError(f"max_wal_queue must be >= 1, got {max_wal_queue}")
        if max_buffer_bytes < 1:
            raise InvalidParameterError(
                f"max_buffer_bytes must be >= 1, got {max_buffer_bytes}"
            )
        self.max_wal_queue = max_wal_queue
        self.max_buffer_bytes = max_buffer_bytes

    def should_shed(self, *, wal_queue_depth: int, buffer_bytes: int = 0) -> bool:
        return wal_queue_depth >= self.max_wal_queue or buffer_bytes >= self.max_buffer_bytes
